"""Campaign executors: one code path, serial or sharded.

:meth:`repro.nftape.campaign.Campaign.run` drives an executor's
``execute()`` generator and consumes ``(index, result)`` pairs **in
experiment order** — the executor decides *how* the experiments run:

* :class:`SerialExecutor` — in-process, one at a time.  Runs live
  ``Experiment`` objects for legacy campaigns, or spec jobs through the
  same :func:`~repro.runtime.worker.execute_job` path the workers use.
* :class:`PooledExecutor` — a ``multiprocessing`` worker pool running
  spec jobs N-at-a-time, each in a fresh process on a fresh test bed
  with its deterministically derived seed.  Results are **order-merged**:
  however the shards race, the pairs come out sorted by experiment
  index, so the resulting table is bit-identical to a serial run.

Robustness (pooled): every experiment gets a wall-clock timeout; a
worker that crashes or times out is replaced by a fresh worker re-running
the same seed, up to ``max_retries`` times; completions stream into a
JSONL :class:`~repro.runtime.journal.CampaignJournal` so an interrupted
campaign resumes without re-running finished experiments.

Wall-clock note: this module (and :mod:`repro.runtime.worker`) carries
the scoped SIM001 allowance alongside :mod:`repro.telemetry` — the
engine times and kills *host* worker processes, and no wall-clock value
can reach simulated time (workers rebuild their simulators from the
derived seed alone).
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import CampaignError
from repro.nftape.results import ExperimentResult
from repro.runtime.artifacts import merge_artifacts
from repro.runtime.events import EVENTS, emit
from repro.runtime.journal import CampaignJournal, result_from_dict
from repro.runtime.spec import CampaignSpec, spec_summary
from repro.runtime.worker import (
    ExperimentJob,
    execute_job,
    job_for,
    run_job_in_child,
)

__all__ = [
    "SerialExecutor",
    "PooledExecutor",
    "DEFAULT_TIMEOUT_S",
    "SPEC_FILE_NAME",
    "default_start_method",
]

#: File name of the campaign-shape summary written into the artifacts
#: root (see :func:`repro.runtime.spec.spec_summary`).
SPEC_FILE_NAME = "spec.json"

#: Default per-experiment wall-clock timeout (generous: scaled paper
#: experiments run in seconds; a stuck shard should not stall a shift).
DEFAULT_TIMEOUT_S = 900.0

#: Minimum wall seconds between the pooled executor's heartbeat events
#: (only emitted while an event bus is installed — see
#: :mod:`repro.runtime.events`).
HEARTBEAT_INTERVAL_S = 1.0

#: Result fields accumulated into the periodic ``snapshot`` events
#: (counter deltas since the previous snapshot).
SNAPSHOT_FIELDS = (
    "messages_sent",
    "messages_received",
    "injections",
    "send_failures",
    "checksum_drops",
)


def default_start_method() -> str:
    """``fork`` where the platform offers it (fast), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class _ExecutorBase:
    """Journal/resume/artifact plumbing shared by both executors."""

    def __init__(
        self,
        journal_path: Optional[Union[str, Path]] = None,
        resume: bool = False,
        artifacts_dir: Optional[Union[str, Path]] = None,
        label: Optional[str] = None,
        events_label: Optional[str] = None,
    ) -> None:
        self.journal_path = None if journal_path is None else Path(journal_path)
        self.resume = resume
        self.artifacts_dir = (
            None if artifacts_dir is None else Path(artifacts_dir)
        )
        self.label = label
        #: Campaign key the lifecycle events are published under; when
        #: unset it falls back to ``label`` / the spec name.  The server
        #: sets it to the campaign id so event streams stay unique while
        #: artifact labels (and hence insight digests) match offline runs.
        self.events_label = events_label
        #: Experiment indices actually executed this run (for tests/UX).
        self.executed: List[int] = []
        #: Indices restored from the journal instead of re-run.
        self.skipped: List[int] = []
        #: Retries performed, keyed by experiment index.
        self.retries: Dict[int, int] = {}
        #: Summary dict of the artifact merge (once performed).
        self.merge_summary: Optional[Dict[str, Any]] = None
        self._events_campaign: Optional[str] = None
        self._snapshot_totals: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # event emission (disabled-is-free: one slot read when no bus)
    # ------------------------------------------------------------------

    def _events_key(self, campaign: Any,
                    spec: Optional[CampaignSpec]) -> str:
        """The campaign key lifecycle events are published under."""
        if self.events_label is not None:
            return self.events_label
        if self.label is not None:
            return self.label
        if spec is not None:
            return spec.name
        return getattr(campaign, "name", "campaign")

    def _emit(self, kind: str, **payload: Any) -> None:
        if not EVENTS.active or self._events_campaign is None:
            return
        emit(self._events_campaign, kind, **payload)

    def _emit_finished(self, index: int, name: str,
                       result: ExperimentResult) -> None:
        """``experiment_finished`` plus the counter-delta ``snapshot``."""
        if not EVENTS.active or self._events_campaign is None:
            return
        emit(
            self._events_campaign, "experiment_finished",
            index=index, name=name,
            messages_sent=result.messages_sent,
            messages_received=result.messages_received,
            injections=result.injections,
        )
        deltas: Dict[str, int] = {}
        for field in SNAPSHOT_FIELDS:
            value = int(getattr(result, field, 0) or 0)
            deltas[field] = value
            self._snapshot_totals[field] = (
                self._snapshot_totals.get(field, 0) + value
            )
        done = self._snapshot_totals.get("experiments", 0) + 1
        self._snapshot_totals["experiments"] = done
        emit(
            self._events_campaign, "snapshot",
            experiments_done=done,
            deltas=deltas,
            totals=dict(self._snapshot_totals),
        )

    # ------------------------------------------------------------------

    def _open_journal(
        self, spec: Optional[CampaignSpec]
    ) -> Tuple[Optional[CampaignJournal], Dict[int, ExperimentResult]]:
        """Create/validate the journal; load completed results on resume."""
        if self.journal_path is None:
            if self.resume:
                raise CampaignError(
                    "resume requested but no journal path configured"
                )
            return None, {}
        if spec is None:
            raise CampaignError(
                "journalling requires a spec-based campaign "
                "(build it with Campaign.from_spec)"
            )
        journal = CampaignJournal(self.journal_path,
                                  events_label=self._events_campaign)
        completed: Dict[int, ExperimentResult] = {}
        if self.resume:
            completed = journal.completed(spec) if journal.path.exists() \
                else {}
        journal.begin(spec, resume=self.resume)
        return journal, completed

    def _write_spec(self, spec: Optional[CampaignSpec]) -> None:
        """Drop ``spec.json`` into the artifacts root (offline analyzers
        — ``repro.insight`` — read the campaign's shape from it)."""
        if self.artifacts_dir is None or spec is None:
            return
        self.artifacts_dir.mkdir(parents=True, exist_ok=True)
        (self.artifacts_dir / SPEC_FILE_NAME).write_text(
            json.dumps(spec_summary(spec), indent=2, sort_keys=True) + "\n"
        )

    def _merge(self, spec: CampaignSpec) -> None:
        if self.artifacts_dir is None:
            return
        entries = [
            (index, experiment.name)
            for index, experiment in enumerate(spec.experiments)
        ]
        self.merge_summary = merge_artifacts(
            self.artifacts_dir, entries, label=self.label or spec.name
        )
        self._emit(
            "shard_merged",
            telemetry_shards=self.merge_summary.get("telemetry_shards", 0),
            capture_shards=self.merge_summary.get("capture_shards", 0),
            missing_shards=list(self.merge_summary.get("missing_shards", [])),
        )


class SerialExecutor(_ExecutorBase):
    """Run every experiment in-process, in order.

    ``Campaign.run()`` with no executor argument uses this with default
    options — behaviourally identical to the pre-engine serial loop.
    Spec-based campaigns additionally get journalling, resume, and
    per-experiment artifact shards (merged on completion) through the
    exact same code path the pooled workers run.
    """

    def execute(self, campaign: Any,
                progress: Optional[Any] = None
                ) -> Iterator[Tuple[int, ExperimentResult]]:
        """Yield ``(index, result)`` pairs in experiment order."""
        spec: Optional[CampaignSpec] = getattr(campaign, "spec", None)
        self._events_campaign = self._events_key(campaign, spec)
        journal, completed = self._open_journal(spec)
        self._write_spec(spec)
        total = len(campaign.experiments) if spec is None else len(spec)
        self._emit("campaign_started", executor="serial", experiments=total,
                   restored=len(completed))
        for index in range(total):
            if index in completed:
                self.skipped.append(index)
                if progress is not None:
                    progress(f"[{index + 1}/{total}] restored "
                             f"{completed[index].name} from journal")
                self._emit("experiment_restored", index=index,
                           name=completed[index].name)
                yield index, completed[index]
                continue
            if spec is not None:
                job = job_for(
                    spec, index,
                    artifacts_root=(
                        None if self.artifacts_dir is None
                        else str(self.artifacts_dir)
                    ),
                    label=self.label,
                )
                if progress is not None:
                    progress(f"[{index + 1}/{total}] running {job.name}")
                self._emit("experiment_started", index=index, name=job.name,
                           seed=job.seed, attempt=0)
                result = execute_job(job, in_process=True)
                if journal is not None:
                    journal.record(index, job.name, job.seed, result)
            else:
                experiment = campaign.experiments[index]
                if progress is not None:
                    progress(
                        f"[{index + 1}/{total}] running {experiment.name}"
                    )
                self._emit("experiment_started", index=index,
                           name=experiment.name, attempt=0)
                result = experiment.run()
            self.executed.append(index)
            self._emit_finished(index, result.name, result)
            yield index, result
        if spec is not None:
            self._merge(spec)
        self._emit("campaign_finished", experiments=total,
                   executed=len(self.executed), restored=len(self.skipped))


class _Slot:
    """One live worker process and its result pipe."""

    __slots__ = ("job", "process", "conn", "deadline")

    def __init__(self, job: ExperimentJob, process: Any, conn: Any,
                 deadline: Optional[float]) -> None:
        self.job = job
        self.process = process
        self.conn = conn
        self.deadline = deadline


class PooledExecutor(_ExecutorBase):
    """Shard a spec-based campaign across a worker-process pool.

    Parameters
    ----------
    workers:
        Maximum experiments in flight at once.
    timeout_s:
        Per-experiment wall-clock budget; ``None`` disables the timeout.
    max_retries:
        How many fresh-worker re-runs (same derived seed) a crashed or
        timed-out experiment gets before the campaign fails.
    start_method:
        ``multiprocessing`` start method; default ``fork`` when
        available, else ``spawn``.
    """

    def __init__(
        self,
        workers: int = 2,
        timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
        max_retries: int = 1,
        start_method: Optional[str] = None,
        journal_path: Optional[Union[str, Path]] = None,
        resume: bool = False,
        artifacts_dir: Optional[Union[str, Path]] = None,
        label: Optional[str] = None,
        events_label: Optional[str] = None,
    ) -> None:
        super().__init__(journal_path=journal_path, resume=resume,
                         artifacts_dir=artifacts_dir, label=label,
                         events_label=events_label)
        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.start_method = start_method or default_start_method()

    # ------------------------------------------------------------------

    def execute(self, campaign: Any,
                progress: Optional[Any] = None
                ) -> Iterator[Tuple[int, ExperimentResult]]:
        """Yield ``(index, result)`` in experiment order (order-merge)."""
        spec: Optional[CampaignSpec] = getattr(campaign, "spec", None)
        if spec is None:
            raise CampaignError(
                "PooledExecutor needs a declarative campaign: build it "
                "with Campaign.from_spec(CampaignSpec(...)) so experiments "
                "can be shipped to worker processes"
            )
        self._events_campaign = self._events_key(campaign, spec)
        journal, ready = self._open_journal(spec)
        self._write_spec(spec)
        self.skipped = sorted(ready)
        total = len(spec)
        self._emit("campaign_started", executor="pooled",
                   experiments=total, workers=self.workers,
                   restored=len(ready))
        for index in self.skipped:
            self._emit("experiment_restored", index=index,
                       name=ready[index].name)
        context = multiprocessing.get_context(self.start_method)
        pending: List[int] = [i for i in range(total) if i not in ready]
        attempts: Dict[int, int] = {index: 0 for index in pending}
        running: Dict[int, _Slot] = {}
        next_yield = 0

        def _spawn(index: int) -> None:
            job = job_for(
                spec, index,
                attempt=attempts[index],
                artifacts_root=(
                    None if self.artifacts_dir is None
                    else str(self.artifacts_dir)
                ),
                label=self.label,
            )
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=run_job_in_child, args=(child_conn, job),
                daemon=True,
                name=f"repro-exp-{index:03d}-a{attempts[index]}",
            )
            process.start()
            child_conn.close()
            deadline = (
                None if self.timeout_s is None
                else time.monotonic() + self.timeout_s
            )
            running[index] = _Slot(job, process, parent_conn, deadline)
            self._emit("experiment_started", index=index, name=job.name,
                       seed=job.seed, attempt=attempts[index])

        def _reap(index: int, reason: str, timed_out: bool = False) -> None:
            """Kill a slot and either re-queue its job or fail."""
            slot = running.pop(index)
            if slot.process.is_alive():
                slot.process.terminate()
            slot.process.join(timeout=5)
            slot.conn.close()
            attempts[index] += 1
            if timed_out:
                self._emit("experiment_timeout", index=index,
                           name=slot.job.name, timeout_s=self.timeout_s,
                           attempt=attempts[index] - 1)
            if attempts[index] > self.max_retries:
                self._shutdown(running)
                self._emit("experiment_failed", index=index,
                           name=slot.job.name, reason=reason,
                           attempts=attempts[index])
                self._emit("campaign_failed", experiments=total,
                           failed_index=index, reason=reason)
                raise CampaignError(
                    f"experiment {index} ({slot.job.name!r}) failed after "
                    f"{attempts[index]} attempt(s): {reason}"
                )
            self.retries[index] = self.retries.get(index, 0) + 1
            self._emit("experiment_retried", index=index,
                       name=slot.job.name, reason=reason,
                       attempt=attempts[index])
            if progress is not None:
                progress(
                    f"retrying {slot.job.name} ({reason}, attempt "
                    f"{attempts[index] + 1}/{self.max_retries + 1})"
                )
            pending.insert(0, index)

        next_heartbeat = time.monotonic() + HEARTBEAT_INTERVAL_S
        try:
            while pending or running:
                while pending and len(running) < self.workers:
                    _spawn(pending.pop(0))
                wait_timeout: Optional[float] = None
                if self.timeout_s is not None and running:
                    now = time.monotonic()
                    wait_timeout = max(
                        0.05,
                        min(slot.deadline for slot in running.values())
                        - now,
                    )
                if EVENTS.active and wait_timeout is None:
                    # Bound the wait so heartbeats keep flowing even
                    # with no per-experiment deadline configured.
                    wait_timeout = HEARTBEAT_INTERVAL_S
                ready_conns = multiprocessing.connection.wait(
                    [slot.conn for slot in running.values()],
                    timeout=wait_timeout,
                )
                now = time.monotonic()
                if EVENTS.active and now >= next_heartbeat:
                    next_heartbeat = now + HEARTBEAT_INTERVAL_S
                    self._emit(
                        "heartbeat",
                        running=sorted(running),
                        pending=len(pending),
                        completed=len(self.executed) + len(self.skipped),
                        experiments=total,
                    )
                for index in list(running):
                    slot = running[index]
                    # A slot counts as ready if wait() flagged it OR a
                    # message is already buffered: a worker may finish
                    # and exit between wait() returning (woken by some
                    # *other* slot) and this liveness sweep — its result
                    # must be read, not mistaken for a crash.
                    if slot.conn in ready_conns or slot.conn.poll():
                        try:
                            status, payload = slot.conn.recv()
                        except EOFError:
                            _reap(index, "worker crashed "
                                         f"(exit {slot.process.exitcode})")
                            continue
                        slot.process.join()
                        slot.conn.close()
                        running.pop(index)
                        if status != "ok":
                            self._shutdown(running)
                            self._emit(
                                "experiment_failed", index=index,
                                name=payload.get("name"),
                                reason=f"{payload.get('type')}: "
                                       f"{payload.get('message')}",
                                attempts=attempts[index] + 1,
                            )
                            self._emit(
                                "campaign_failed", experiments=total,
                                failed_index=index,
                                reason=payload.get("type"),
                            )
                            raise CampaignError(
                                f"experiment {index} "
                                f"({payload.get('name')!r}) raised "
                                f"{payload.get('type')}: "
                                f"{payload.get('message')}\n"
                                f"{payload.get('traceback', '')}"
                            )
                        ready[index] = result_from_dict(payload["result"])
                        self.executed.append(index)
                        self._emit_finished(
                            index, payload["name"], ready[index]
                        )
                        if journal is not None:
                            journal.record(
                                index, payload["name"], payload["seed"],
                                ready[index], attempt=payload["attempt"],
                            )
                        if progress is not None:
                            progress(
                                f"[{len(ready)}/{total}] finished "
                                f"{payload['name']}"
                            )
                    elif slot.deadline is not None and now >= slot.deadline:
                        _reap(
                            index,
                            f"timed out after {self.timeout_s:.0f}s wall",
                            timed_out=True,
                        )
                    elif not slot.process.is_alive():
                        _reap(index, "worker crashed "
                                     f"(exit {slot.process.exitcode})")
                while next_yield in ready:
                    yield next_yield, ready.pop(next_yield)
                    next_yield += 1
            while next_yield in ready:
                yield next_yield, ready.pop(next_yield)
                next_yield += 1
        finally:
            self._shutdown(running)
        self.executed.sort()
        self._merge(spec)
        self._emit("campaign_finished", experiments=total,
                   executed=len(self.executed), restored=len(self.skipped),
                   retried=sum(self.retries.values()))

    @staticmethod
    def _shutdown(running: Dict[int, _Slot]) -> None:
        """Terminate any still-live workers (error/interrupt path)."""
        for slot in running.values():
            if slot.process.is_alive():
                slot.process.terminate()
            slot.process.join(timeout=5)
            slot.conn.close()
        running.clear()
