"""The distributed campaign fabric: pull-queue workers + result store.

:class:`PooledExecutor` pushes jobs at a pool it owns; the fabric
inverts the arrow.  A campaign is published as a **work queue** —
``queue.jsonl`` under the fabric directory, one line per experiment —
and long-lived worker processes *pull* ``(campaign_digest, index)``
leases from it, run the unchanged
:func:`~repro.runtime.worker.execute_job` path, and push results into
the shared sqlite :class:`~repro.runtime.store.ResultStore`.  Today the
workers are processes spawned on this host; because every coordination
primitive is a file (queue, lease, tombstone) plus a WAL sqlite
database, a worker on another host mounting the same directory speaks
the exact same protocol — that is the upgrade path, not a rewrite.

Failure model (every mode is chaos-tested in ``tests/chaos/``):

========================  =============================================
failure                   recovery
========================  =============================================
worker killed mid-lease   coordinator sees the dead holder, forfeits
                          the lease immediately, re-issues with the
                          same derived seed, respawns a worker
worker hangs past         lease deadline passes; forfeit + re-issue;
the lease deadline        the late result (if it ever lands) loses the
                          winner race and changes nothing
torn sqlite write         store quarantines the corrupt file at open;
                          a resumed run re-executes what was lost
duplicate lease delivery  both attempts run; the store's one-winner
                          transaction and the shard promotion rename
                          keep exactly one of each
queue file truncated      workers park (a torn queue parses as "no
                          work"); the coordinator detects and
                          atomically rewrites the queue from the spec
========================  =============================================

Every recovery preserves the repository's core invariant: results are
**byte-identical at any worker count**, because seeds derive from
``(base_seed, index, name)`` and merges are index-ordered — re-running
an experiment can only reproduce it.

Artifact merging is *incremental*: the coordinator folds each completed
shard while later experiments are still running
(:class:`~repro.runtime.artifacts.ShardMerger`), so the merge overlaps
execution instead of serializing behind it; ``executor.timings``
reports the overlap and ``benchmarks/bench_parallel_campaign.py``
records it.

Wall-clock note: this module carries the :mod:`repro.runtime` SIM001
allowance — lease deadlines and poll timers are *host* time and never
reach simulated time (workers rebuild simulators from derived seeds).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import CampaignError
from repro.nftape.results import ExperimentResult
from repro.runtime.artifacts import ShardMerger
from repro.runtime.executors import _ExecutorBase, default_start_method
from repro.runtime.spec import CampaignSpec
from repro.runtime.store import ResultStore, spec_digest
from repro.runtime.worker import (
    claim_lease,
    execute_job,
    forfeit_count,
    forfeit_lease,
    job_for,
    read_lease,
    release_lease,
)

__all__ = [
    "QUEUE_FILE_NAME",
    "STORE_FILE_NAME",
    "FABRIC_SUBDIR",
    "DEFAULT_LEASE_TIMEOUT_S",
    "write_queue",
    "read_queue",
    "run_fabric_worker",
    "FabricExecutor",
]

#: The work queue file under the fabric directory.
QUEUE_FILE_NAME = "queue.jsonl"
#: The shared result store under the artifacts root.
STORE_FILE_NAME = "results.sqlite"
#: Fabric coordination state (queue + leases) under the artifacts root.
FABRIC_SUBDIR = "fabric"
#: Queue file-format version.
QUEUE_VERSION = 1
#: Default lease deadline: generous for real experiments; chaos tests
#: shrink it to force re-issue quickly.
DEFAULT_LEASE_TIMEOUT_S = 300.0


# ---------------------------------------------------------------------------
# the work queue file
# ---------------------------------------------------------------------------


def write_queue(fabric_dir: Union[str, Path], digest: str,
                spec: CampaignSpec) -> Path:
    """Atomically (re)write the campaign's work queue.

    Written to a temp name and ``os.replace``-d into place, so a reader
    never observes a partial queue — and a *damaged* queue (truncated,
    edited, torn by a crash) is repaired by simply calling this again:
    the queue is a pure function of the spec.
    """
    fabric_dir = Path(fabric_dir)
    fabric_dir.mkdir(parents=True, exist_ok=True)
    target = fabric_dir / QUEUE_FILE_NAME
    lines = [json.dumps({
        "type": "fabric-queue",
        "version": QUEUE_VERSION,
        "digest": digest,
        "name": spec.name,
        "experiments": len(spec),
    }, sort_keys=True)]
    for index, experiment in enumerate(spec.experiments):
        lines.append(json.dumps({
            "type": "item",
            "index": index,
            "name": experiment.name,
            "seed": spec.seed_for(index),
        }, sort_keys=True))
    scratch = target.with_name(target.name + ".tmp")
    scratch.write_text("\n".join(lines) + "\n", encoding="utf-8")
    os.replace(scratch, target)
    return target


def read_queue(
    fabric_dir: Union[str, Path], digest: Optional[str] = None
) -> Optional[List[Tuple[int, str, int]]]:
    """Parse the queue into ``(index, name, seed)`` items.

    Returns ``None`` whenever the queue is unusable — missing, torn,
    truncated, header mismatch — because a worker must *park*, not
    guess, until the coordinator repairs the file.
    """
    path = Path(fabric_dir) / QUEUE_FILE_NAME
    try:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return None
    if not raw_lines:
        return None
    try:
        header = json.loads(raw_lines[0])
        if header.get("type") != "fabric-queue" \
                or header.get("version") != QUEUE_VERSION:
            return None
        if digest is not None and header.get("digest") != digest:
            return None
        items: List[Tuple[int, str, int]] = []
        for raw in raw_lines[1:]:
            doc = json.loads(raw)
            if doc.get("type") != "item":
                return None
            items.append((int(doc["index"]), str(doc["name"]),
                          int(doc["seed"])))
    except (ValueError, KeyError, json.JSONDecodeError):
        return None
    if len(items) != header.get("experiments") \
            or [i for i, _, _ in items] != list(range(len(items))):
        return None
    return items


# ---------------------------------------------------------------------------
# the worker loop (child-process entry point)
# ---------------------------------------------------------------------------


def _failed_marker(leases_dir: Union[str, Path], index: int) -> Path:
    return Path(leases_dir) / f"exp-{index:03d}.failed"


def run_fabric_worker(
    worker_id: str,
    spec: CampaignSpec,
    fabric_dir: str,
    store_path: str,
    artifacts_root: Optional[str],
    label: Optional[str],
    lease_timeout_s: float,
    poll_s: float = 0.02,
    rogue_index: Optional[int] = None,
) -> None:
    """Pull leases and run experiments until the campaign is complete.

    The child-process entry point of every fabric worker.  Loop: read
    the queue, skip completed indices, claim the first available lease
    (an atomic ``O_CREAT|O_EXCL`` create), run the job through the one
    shared :func:`execute_job` path, record the result, release the
    lease.  A deterministic experiment *error* (as opposed to a crash)
    is reported through a ``.failed`` marker file the coordinator turns
    into a campaign failure.

    ``rogue_index`` is the duplicate-lease-delivery chaos hook: the
    worker executes that one experiment *without* claiming its lease —
    exactly what a network partition delivering one lease twice looks
    like — then exits.  The store's one-winner transaction absorbs it.
    """
    digest = spec_digest(spec)
    leases_dir = Path(fabric_dir) / "leases"
    store = ResultStore(store_path)
    try:
        while True:
            items = read_queue(fabric_dir, digest)
            if items is None:
                time.sleep(poll_s)  # queue torn; coordinator repairs
                continue
            done = store.completed_indices(digest)
            if rogue_index is None and len(done) >= len(items):
                return
            claimed: Optional[Tuple[int, str, int, int]] = None
            for index, name, seed in items:
                if index in done:
                    continue
                if rogue_index is not None:
                    if index != rogue_index:
                        continue
                    claimed = (index, name, seed,
                               forfeit_count(leases_dir, index))
                    break
                lease = claim_lease(leases_dir, index, worker_id,
                                    lease_timeout_s)
                if lease is not None:
                    claimed = (index, name, seed, lease.attempt)
                    break
            if claimed is None:
                if rogue_index is not None:
                    return  # duplicate target already completed
                time.sleep(poll_s)
                continue
            index, name, seed, attempt = claimed
            job = job_for(spec, index, attempt=attempt,
                          artifacts_root=artifacts_root, label=label)
            try:
                result = execute_job(job)
            except BaseException as exc:  # deterministic: don't retry
                import traceback

                marker = _failed_marker(leases_dir, index)
                marker.write_text(json.dumps({
                    "index": index,
                    "name": name,
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                }, sort_keys=True), encoding="utf-8")
                if rogue_index is not None:
                    return
                continue  # lease kept: blocks pointless re-claims
            store.record(digest, index, name, seed, result,
                         attempt=attempt)
            if rogue_index is not None:
                return
            release_lease(leases_dir, index)
    finally:
        store.close()


# ---------------------------------------------------------------------------
# the coordinator
# ---------------------------------------------------------------------------


class FabricExecutor(_ExecutorBase):
    """Distributed-fabric executor behind the standard ``execute()``.

    Drop-in beside :class:`SerialExecutor` / :class:`PooledExecutor`:
    ``Campaign.run(executor=FabricExecutor(workers=4, ...))`` yields
    ``(index, result)`` pairs in experiment order, byte-identical to a
    serial run.  Differences from the pooled executor:

    * results persist in a sqlite :class:`ResultStore` (queryable while
      running; ``resume=True`` restarts from it, no journal replay);
    * workers *pull* work via filesystem leases — a crashed or hung
      worker forfeits its lease and the experiment is re-issued (up to
      ``max_reissues`` times) with the same derived seed;
    * artifact shards merge incrementally, overlapped with execution
      (``timings`` reports the overlap).

    Parameters mirror :class:`PooledExecutor` where they overlap;
    ``lease_timeout_s`` replaces ``timeout_s`` (a deadline on holding a
    lease, not on the experiment as such) and ``max_reissues`` replaces
    ``max_retries``.  With no ``artifacts_dir``, coordination state
    lives in a private temp directory (and ``resume`` is unavailable).
    """

    def __init__(
        self,
        workers: int = 2,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        max_reissues: int = 2,
        store_path: Optional[Union[str, Path]] = None,
        fabric_dir: Optional[Union[str, Path]] = None,
        start_method: Optional[str] = None,
        poll_s: float = 0.02,
        resume: bool = False,
        artifacts_dir: Optional[Union[str, Path]] = None,
        label: Optional[str] = None,
        events_label: Optional[str] = None,
        chaos_duplicate_delivery: Optional[int] = None,
    ) -> None:
        super().__init__(journal_path=None, resume=False,
                         artifacts_dir=artifacts_dir, label=label,
                         events_label=events_label)
        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.lease_timeout_s = lease_timeout_s
        self.max_reissues = max_reissues
        self.start_method = start_method or default_start_method()
        self.poll_s = poll_s
        self.resume = resume
        self.store_path = None if store_path is None else Path(store_path)
        self.fabric_dir = None if fabric_dir is None else Path(fabric_dir)
        self.chaos_duplicate_delivery = chaos_duplicate_delivery
        #: Lease re-issues performed, keyed by experiment index.
        self.reissues: Dict[int, int] = {}
        #: Queue-file repairs performed (truncation recovery).
        self.queue_repairs = 0
        #: Wall-clock accounting for the benchmark: total execute wall,
        #: merge busy time, and how much of the merge overlapped
        #: still-running experiments.
        self.timings: Dict[str, float] = {}

    # ------------------------------------------------------------------

    def _resolve_homes(self) -> Optional[str]:
        """Fill in store/fabric paths; returns a temp root to clean."""
        scratch = None
        if self.store_path is None or self.fabric_dir is None:
            if self.artifacts_dir is not None:
                base = Path(self.artifacts_dir)
                base.mkdir(parents=True, exist_ok=True)
            else:
                if self.resume and self.store_path is None:
                    raise CampaignError(
                        "fabric resume needs a persistent home: pass "
                        "artifacts_dir (or an explicit store_path)"
                    )
                scratch = tempfile.mkdtemp(prefix="repro-fabric-")
                base = Path(scratch)
            if self.store_path is None:
                self.store_path = base / STORE_FILE_NAME
            if self.fabric_dir is None:
                self.fabric_dir = base / FABRIC_SUBDIR
        return scratch

    def execute(self, campaign: Any,
                progress: Optional[Any] = None
                ) -> Iterator[Tuple[int, ExperimentResult]]:
        """Yield ``(index, result)`` in experiment order (order-merge)."""
        spec: Optional[CampaignSpec] = getattr(campaign, "spec", None)
        if spec is None:
            raise CampaignError(
                "FabricExecutor needs a declarative campaign: build it "
                "with Campaign.from_spec(CampaignSpec(...)) so work items "
                "can be published to the fabric queue"
            )
        self._events_campaign = self._events_key(campaign, spec)
        scratch = self._resolve_homes()
        started_wall = time.monotonic()
        store = ResultStore(self.store_path)
        context = multiprocessing.get_context(self.start_method)
        processes: List[Any] = []
        try:
            digest = store.begin(spec, resume=self.resume)
            ready: Dict[int, ExperimentResult] = (
                store.completed(digest) if self.resume else {}
            )
            total = len(spec)
            self.skipped = sorted(ready)
            self._write_spec(spec)
            leases_dir = Path(self.fabric_dir) / "leases"
            if leases_dir.exists():
                shutil.rmtree(leases_dir)  # no workers are live yet
            leases_dir.mkdir(parents=True, exist_ok=True)
            write_queue(self.fabric_dir, digest, spec)

            self._emit("campaign_started", executor="fabric",
                       experiments=total, workers=self.workers,
                       restored=len(ready), digest=digest)
            for index in self.skipped:
                self._emit("experiment_restored", index=index,
                           name=ready[index].name)

            def _spawn(worker_index: int,
                       rogue_index: Optional[int] = None) -> Any:
                process = context.Process(
                    target=run_fabric_worker,
                    args=(
                        f"w{worker_index}", spec, str(self.fabric_dir),
                        str(self.store_path),
                        None if self.artifacts_dir is None
                        else str(self.artifacts_dir),
                        self.label or spec.name,
                        self.lease_timeout_s,
                    ),
                    kwargs={"rogue_index": rogue_index},
                    daemon=True,
                    name=(f"repro-fabric-w{worker_index}"
                          if rogue_index is None
                          else f"repro-fabric-rogue{worker_index}"),
                )
                process.start()
                return process

            processes = [_spawn(i) for i in range(self.workers)]
            if self.chaos_duplicate_delivery is not None:
                processes.append(_spawn(
                    self.workers,
                    rogue_index=self.chaos_duplicate_delivery,
                ))
            worker_pids = {p.pid for p in processes}

            started: set = set(self.skipped)
            merger = (
                None if self.artifacts_dir is None
                else ShardMerger(self.artifacts_dir,
                                 self.label or spec.name)
            )
            next_merge = 0
            merge_busy = 0.0
            merge_overlap = 0.0
            next_yield = 0
            respawns = 0
            respawn_budget = self.workers * (self.max_reissues + 2)

            def _fail(index: int, name: str, reason: str) -> None:
                self._emit("experiment_failed", index=index, name=name,
                           reason=reason,
                           attempts=forfeit_count(leases_dir, index) + 1)
                self._emit("campaign_failed", experiments=total,
                           failed_index=index, reason=reason)
                raise CampaignError(
                    f"experiment {index} ({name!r}) failed on the "
                    f"fabric: {reason}"
                )

            while len(ready) < total:
                # 1. collect newly completed experiments from the store
                winners = store.completed(digest)
                for index in sorted(winners):
                    if index in ready:
                        continue
                    result = winners[index]
                    if index not in started:
                        started.add(index)
                        attempts = store.attempts(digest, index)
                        attempt = next(
                            (a["attempt"] for a in attempts
                             if a["winner"]), 0)
                        self._emit("experiment_started", index=index,
                                   name=result.name,
                                   seed=spec.seed_for(index),
                                   attempt=attempt)
                    ready[index] = result
                    self.executed.append(index)
                    self._emit_finished(index, result.name, result)
                    if progress is not None:
                        progress(f"[{len(ready)}/{total}] finished "
                                 f"{result.name}")

                # 2. lease scan: first-observation events + expiry
                for lease_file in sorted(leases_dir.glob("*.lease")):
                    lease = read_lease(lease_file)
                    if lease is None:
                        continue  # torn mid-write; next poll sees it
                    if lease.index in ready:
                        release_lease(leases_dir, lease.index)
                        continue
                    name = spec.experiments[lease.index].name
                    if lease.index not in started:
                        started.add(lease.index)
                        self._emit("experiment_started",
                                   index=lease.index, name=name,
                                   seed=spec.seed_for(lease.index),
                                   attempt=lease.attempt)
                    holder_dead = (
                        lease.pid in worker_pids
                        and not any(p.pid == lease.pid and p.is_alive()
                                    for p in processes)
                    )
                    if holder_dead or time.time() >= lease.deadline_unix:
                        next_attempt = forfeit_lease(leases_dir,
                                                     lease.index)
                        reason = ("worker died holding the lease"
                                  if holder_dead else
                                  f"lease expired after "
                                  f"{self.lease_timeout_s:g}s")
                        if next_attempt > self.max_reissues:
                            _fail(lease.index, name, reason)
                        self.reissues[lease.index] = (
                            self.reissues.get(lease.index, 0) + 1
                        )
                        self.retries[lease.index] = (
                            self.retries.get(lease.index, 0) + 1
                        )
                        self._emit("fabric_lease_reissued",
                                   index=lease.index, name=name,
                                   attempt=lease.attempt,
                                   next_attempt=next_attempt,
                                   reason=reason)
                        if progress is not None:
                            progress(f"re-issuing {name} ({reason}, "
                                     f"attempt {next_attempt + 1})")

                # 3. deterministic failures reported by workers
                for marker in sorted(leases_dir.glob("*.failed")):
                    try:
                        info = json.loads(
                            marker.read_text(encoding="utf-8"))
                    except (OSError, json.JSONDecodeError):
                        continue  # torn mid-write; next poll
                    _fail(int(info.get("index", -1)),
                          str(info.get("name")),
                          f"{info.get('type')}: {info.get('message')}")

                # 4. queue integrity (truncation / corruption repair)
                if read_queue(self.fabric_dir, digest) is None:
                    write_queue(self.fabric_dir, digest, spec)
                    self.queue_repairs += 1

                # 5. worker liveness: replace the fallen
                for slot, process in enumerate(processes):
                    if process.is_alive() or len(ready) >= total:
                        continue
                    if respawns >= respawn_budget:
                        continue  # expiry path will fail the campaign
                    process.join(timeout=0)
                    replacement = _spawn(self.workers + respawns)
                    processes[slot] = replacement
                    worker_pids.add(replacement.pid)
                    respawns += 1

                # 6. incremental merge: fold the completed prefix now,
                # while later experiments are still running
                if merger is not None:
                    while next_merge < total and next_merge in ready:
                        fold_start = time.monotonic()
                        merger.add(next_merge,
                                   spec.experiments[next_merge].name)
                        fold_wall = time.monotonic() - fold_start
                        merge_busy += fold_wall
                        if len(ready) < total:
                            merge_overlap += fold_wall
                        next_merge += 1

                # 7. stream the ordered prefix to the campaign
                while next_yield in ready:
                    yield next_yield, ready[next_yield]
                    next_yield += 1

                if len(ready) < total:
                    time.sleep(self.poll_s)

            while next_yield in ready:
                yield next_yield, ready[next_yield]
                next_yield += 1

            if merger is not None:
                while next_merge < total:
                    fold_start = time.monotonic()
                    merger.add(next_merge,
                               spec.experiments[next_merge].name)
                    merge_busy += time.monotonic() - fold_start
                    next_merge += 1
                finalize_start = time.monotonic()
                self.merge_summary = merger.finalize()
                merge_busy += time.monotonic() - finalize_start
                self._emit(
                    "shard_merged",
                    telemetry_shards=self.merge_summary.get(
                        "telemetry_shards", 0),
                    capture_shards=self.merge_summary.get(
                        "capture_shards", 0),
                    missing_shards=list(self.merge_summary.get(
                        "missing_shards", [])),
                )
            self.executed.sort()
            self.timings = {
                "execute_wall_s": time.monotonic() - started_wall,
                "merge_busy_s": merge_busy,
                "merge_overlap_s": merge_overlap,
            }
            self._emit("campaign_finished", experiments=total,
                       executed=len(self.executed),
                       restored=len(self.skipped),
                       retried=sum(self.retries.values()),
                       reissued=sum(self.reissues.values()))
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5)
            store.close()
            if scratch is not None:
                shutil.rmtree(scratch, ignore_errors=True)
