"""JSONL checkpoint journal and result (de)serialization.

Every completed experiment is appended to a journal file as one JSON
line, so a campaign interrupted by a crash, a timeout storm, or Ctrl-C
can be resumed with ``--resume``: already-completed experiments are
loaded from the journal and **not re-run**, and the merged
:class:`~repro.nftape.results.ResultTable` is still bit-identical to an
uninterrupted run (results are reconstructed from the journal, and the
merge is ordered by experiment index, not completion time).

File layout (one JSON object per line)::

    {"type": "campaign", "version": 1, "name": …, "base_seed": …,
     "experiments": N}
    {"type": "result", "index": 0, "name": …, "seed": …, "attempt": 0,
     "result": {…}}
    …

Lines are appended in *completion* order (which varies with worker
count); resume and merge only ever key on ``index``.  A torn final line
(the process died mid-write) is detected and ignored on load.

The ``result`` payload is the JSON-safe subset of
:class:`~repro.nftape.results.ExperimentResult` —
:data:`RESULT_FIELDS` plus the host/switch counter maps.  ``extras``
(live test beds, workload objects) deliberately does not survive the
journal or the worker boundary.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import CampaignError
from repro.nftape.results import ExperimentResult
from repro.runtime.events import EVENTS as _EVENTS
from repro.runtime.events import emit as _emit

__all__ = [
    "JOURNAL_VERSION",
    "RESULT_FIELDS",
    "result_to_dict",
    "result_from_dict",
    "CampaignJournal",
]

#: Journal file-format version (bump on incompatible layout changes).
JOURNAL_VERSION = 1

#: Scalar :class:`ExperimentResult` fields that cross the worker /
#: journal boundary (plus ``params``/``notes`` and the counter maps).
RESULT_FIELDS = (
    "name",
    "duration_ps",
    "messages_sent",
    "messages_received",
    "injections",
    "active_misdeliveries",
    "corrupted_deliveries",
    "send_failures",
    "checksum_drops",
)


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """The JSON-safe projection of a result (drops ``extras``)."""
    payload: Dict[str, Any] = {
        name: getattr(result, name) for name in RESULT_FIELDS
    }
    payload["params"] = dict(result.params)
    payload["notes"] = list(result.notes)
    payload["host_stats"] = {
        host: dict(stats) for host, stats in result.host_stats.items()
    }
    payload["switch_stats"] = {
        switch: dict(stats) for switch, stats in result.switch_stats.items()
    }
    return payload


def result_from_dict(payload: Dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    result = ExperimentResult(
        name=payload["name"],
        params=dict(payload.get("params", {})),
    )
    for name in RESULT_FIELDS[1:]:
        setattr(result, name, payload.get(name, 0))
    result.notes = list(payload.get("notes", []))
    result.host_stats = {
        host: dict(stats)
        for host, stats in payload.get("host_stats", {}).items()
    }
    result.switch_stats = {
        switch: dict(stats)
        for switch, stats in payload.get("switch_stats", {}).items()
    }
    return result


class CampaignJournal:
    """Append-only JSONL checkpoint for one campaign run.

    Writes are **line-atomic from a reader's point of view**: each
    record is serialized to one string, written with a single
    ``write()`` call, and flushed before the file is closed — so a
    concurrent status reader (the live server's status endpoint, a
    ``completed()`` poll from another process) only ever observes whole
    lines plus, at worst, one torn tail the parser already tolerates.
    ``events_label`` additionally publishes a ``journal_record`` event
    per append when an event bus is installed (see
    :mod:`repro.runtime.events`).
    """

    def __init__(self, path: Union[str, Path],
                 events_label: Optional[str] = None) -> None:
        self.path = Path(path)
        self.events_label = events_label

    # ------------------------------------------------------------------
    # header
    # ------------------------------------------------------------------

    @staticmethod
    def header_for(spec: Any) -> Dict[str, Any]:
        """The identity line a journal must carry to be resumable."""
        return {
            "type": "campaign",
            "version": JOURNAL_VERSION,
            "name": spec.name,
            "base_seed": spec.base_seed,
            "experiments": len(spec.experiments),
        }

    def begin(self, spec: Any, resume: bool = False) -> None:
        """Create (or, when resuming, validate) the journal file.

        A fresh run truncates any stale journal; a resumed run keeps the
        existing file and appends to it.
        """
        header = self.header_for(spec)
        if resume and self.path.exists():
            self._validate_header(spec)
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as stream:
            stream.write(json.dumps(header, sort_keys=True) + "\n")

    def _validate_header(self, spec: Any) -> None:
        entries = self._read_lines()
        if not entries or entries[0].get("type") != "campaign":
            raise CampaignError(
                f"journal {self.path} has no campaign header; "
                "cannot resume (delete it to start fresh)"
            )
        header = entries[0]
        expected = self.header_for(spec)
        for key in ("version", "name", "base_seed", "experiments"):
            if header.get(key) != expected[key]:
                raise CampaignError(
                    f"journal {self.path} was written by a different "
                    f"campaign ({key}={header.get(key)!r}, expected "
                    f"{expected[key]!r}); refusing to resume"
                )

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------

    def record(self, index: int, name: str, seed: int,
               result: ExperimentResult, attempt: int = 0) -> None:
        """Append one completed experiment (one write, flushed per line)."""
        entry = {
            "type": "result",
            "index": index,
            "name": name,
            "seed": seed,
            "attempt": attempt,
            "result": result_to_dict(result),
        }
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self.path.open("a", encoding="utf-8") as stream:
            stream.write(line)
            stream.flush()
        if self.events_label is not None and _EVENTS.active:
            _emit(self.events_label, "journal_record",
                  index=index, name=name, attempt=attempt)

    def completed(self, spec: Optional[Any] = None
                  ) -> Dict[int, ExperimentResult]:
        """Results already in the journal, keyed by experiment index.

        With ``spec`` given the header is validated first; a missing
        file simply yields an empty map (nothing completed yet).
        """
        if not self.path.exists():
            return {}
        if spec is not None:
            self._validate_header(spec)
        results: Dict[int, ExperimentResult] = {}
        for entry in self._read_lines():
            if entry.get("type") != "result":
                continue
            results[int(entry["index"])] = result_from_dict(entry["result"])
        return results

    def _read_lines(self) -> list:
        """Parsed journal lines; a torn trailing line is dropped."""
        entries = []
        raw_lines = self.path.read_text(encoding="utf-8").splitlines()
        for number, raw in enumerate(raw_lines):
            raw = raw.strip()
            if not raw:
                continue
            try:
                entries.append(json.loads(raw))
            except json.JSONDecodeError:
                if number == len(raw_lines) - 1:
                    break  # torn final line: the writer died mid-append
                raise CampaignError(
                    f"journal {self.path} is corrupt at line {number + 1}"
                )
        return entries
