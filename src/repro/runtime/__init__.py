"""Sharded parallel campaign execution engine.

The paper's evaluation is a campaign of thousands of serially re-armed,
*mutually independent* experiments (§4.2–§4.3): each starts from a
fresh known good state, so nothing but the result table couples them.
This package exploits that independence the way the related
high-throughput systems do — replicate the engine, merge the results —
while keeping the reproduction's core guarantee: **bit-identical
results regardless of worker count or completion order**.

The pieces:

* :mod:`~repro.runtime.spec` — frozen, picklable
  :class:`ExperimentSpec` / :class:`PlanSpec` / :class:`CampaignSpec`
  dataclasses (experiments as data, materialized inside whichever
  process runs them);
* :mod:`~repro.runtime.seeding` — the blake2b per-experiment seed
  derivation rule;
* :mod:`~repro.runtime.executors` — :class:`SerialExecutor` and
  :class:`PooledExecutor` behind one ``Campaign.run(executor=…)`` code
  path, with per-experiment wall-clock timeouts and bounded
  crash-retry;
* :mod:`~repro.runtime.journal` — the JSONL checkpoint enabling
  ``--resume``;
* :mod:`~repro.runtime.artifacts` — per-experiment telemetry/capture
  shards and their deterministic merge;
* :mod:`~repro.runtime.worker` — the single per-experiment code path
  shared by the serial executor and the pooled workers, plus the
  fabric's filesystem lease protocol;
* :mod:`~repro.runtime.fabric` — :class:`FabricExecutor`: pull-queue
  workers leasing experiments from a shared work queue, with crash /
  hang / duplicate-delivery recovery (chaos-tested);
* :mod:`~repro.runtime.store` — the fabric's queryable sqlite
  :class:`ResultStore` (schema-versioned, WAL, one winner per
  experiment, incremental aggregates) backing ``--resume``.

See docs/runtime.md for the full contract.
"""

from repro.runtime.artifacts import merge_artifacts, shard_dir
from repro.runtime.events import (
    EVENT_KINDS,
    EventBus,
    EventBusSession,
    Subscription,
    events_active,
)
from repro.runtime.executors import (
    DEFAULT_TIMEOUT_S,
    PooledExecutor,
    SerialExecutor,
    default_start_method,
)
from repro.runtime.fabric import FabricExecutor
from repro.runtime.journal import (
    CampaignJournal,
    result_from_dict,
    result_to_dict,
)
from repro.runtime.seeding import derive_seed
from repro.runtime.spec import CampaignSpec, ExperimentSpec, PlanSpec
from repro.runtime.spec_codec import spec_from_json, spec_to_json
from repro.runtime.store import ResultStore, spec_digest
from repro.runtime.worker import ExperimentJob, execute_job, job_for

__all__ = [
    "CampaignSpec",
    "ExperimentSpec",
    "PlanSpec",
    "EventBus",
    "EventBusSession",
    "Subscription",
    "EVENT_KINDS",
    "events_active",
    "spec_from_json",
    "spec_to_json",
    "SerialExecutor",
    "PooledExecutor",
    "FabricExecutor",
    "ResultStore",
    "spec_digest",
    "CampaignJournal",
    "ExperimentJob",
    "derive_seed",
    "execute_job",
    "job_for",
    "merge_artifacts",
    "shard_dir",
    "result_to_dict",
    "result_from_dict",
    "default_start_method",
    "DEFAULT_TIMEOUT_S",
]
