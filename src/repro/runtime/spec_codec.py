"""Lossless JSON codec for campaign specs — the wire format of the
monitoring service.

:func:`repro.runtime.spec.spec_summary` is deliberately *not* enough to
re-run a campaign; this module is.  ``spec_to_json`` serializes a
:class:`~repro.runtime.spec.CampaignSpec` (plans, injector registers,
workload, test-bed options) into plain JSON, and ``spec_from_json``
reconstructs an **equal** spec — ``spec_from_json(spec_to_json(s)) ==
s`` holds for every representable spec, which is what makes a campaign
submitted over ``POST /campaigns`` byte-identical to the same spec run
offline through :mod:`repro.api`.

The codec is strict on decode: unknown keys, malformed enum values, or
non-JSON-representable kwargs raise
:class:`~repro.errors.ConfigurationError` with a path-qualified message
(the server surfaces it as the HTTP 400 body), never a bare
``KeyError``.  One non-scalar kwarg is special-cased because the CLI
campaign uses it: ``device_kwargs["monitor_config"]`` round-trips as a
``{"enabled", "pre_symbols", "post_symbols"}`` object.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from repro.core.monitor import MonitorConfig
from repro.errors import ConfigurationError
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.myrinet.network import FabricSpec
from repro.nftape.experiment import TestbedOptions
from repro.nftape.workload import WorkloadConfig
from repro.runtime.spec import CampaignSpec, ExperimentSpec, PlanSpec

__all__ = ["SPEC_CODEC_VERSION", "spec_to_json", "spec_from_json"]

#: Wire-format version (bump on incompatible layout changes).
SPEC_CODEC_VERSION = 1

_SCALARS = (bool, int, float, str, type(None))


def _check_kwargs(mapping: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Validate a kwargs dict as JSON-scalar-only (codec-representable)."""
    out: Dict[str, Any] = {}
    for key, value in mapping.items():
        if not isinstance(value, _SCALARS):
            raise ConfigurationError(
                f"{path}[{key!r}] is not JSON-representable "
                f"({type(value).__name__}); the spec codec carries "
                "scalar kwargs only"
            )
        out[str(key)] = value
    return out


# ---------------------------------------------------------------------------
# encode
# ---------------------------------------------------------------------------


def _encode_injector(config: InjectorConfig) -> Dict[str, Any]:
    doc = dataclasses.asdict(config)
    doc["match_mode"] = config.match_mode.value
    doc["corrupt_mode"] = config.corrupt_mode.value
    return doc


def _encode_plan(plan: PlanSpec) -> Dict[str, Any]:
    return {
        "kind": plan.kind,
        "direction": plan.direction,
        "config": (
            None if plan.config is None
            else _encode_injector(plan.config)
        ),
        "use_serial": plan.use_serial,
        "rearm_interval_ps": plan.rearm_interval_ps,
        "on_ps": plan.on_ps,
        "off_ps": plan.off_ps,
        "interval_ps": plan.interval_ps,
        "mean_interval_ps": plan.mean_interval_ps,
        "seed": plan.seed,
        "flip_control_bit_probability": plan.flip_control_bit_probability,
    }


def _encode_workload(workload: WorkloadConfig) -> Dict[str, Any]:
    return {
        "payload_size": workload.payload_size,
        "send_interval_ps": workload.send_interval_ps,
        "flood_ping": workload.flood_ping,
        "forbidden_bytes": sorted(workload.forbidden_bytes),
        "stack_kwargs": _check_kwargs(
            workload.stack_kwargs, "workload.stack_kwargs"
        ),
        "burst_max": workload.burst_max,
        "burst_alpha": workload.burst_alpha,
    }


def _encode_fabric(fabric: FabricSpec) -> Dict[str, Any]:
    return {
        "hosts": list(fabric.hosts),
        "switches": [list(entry) for entry in fabric.switches],
        "host_links": [list(entry) for entry in fabric.host_links],
        "trunks": [list(entry) for entry in fabric.trunks],
    }


def _encode_device_kwargs(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in kwargs.items():
        if key == "monitor_config" and isinstance(value, MonitorConfig):
            out[key] = {
                "enabled": value.enabled,
                "pre_symbols": value.pre_symbols,
                "post_symbols": value.post_symbols,
            }
        elif isinstance(value, _SCALARS):
            out[str(key)] = value
        else:
            raise ConfigurationError(
                f"testbed.device_kwargs[{key!r}] is not "
                f"JSON-representable ({type(value).__name__})"
            )
    return out


def _encode_testbed(testbed: TestbedOptions) -> Dict[str, Any]:
    return {
        "seed": testbed.seed,
        "instrumented_host": testbed.instrumented_host,
        "with_device": testbed.with_device,
        "char_period_ps": testbed.char_period_ps,
        "map_interval_ps": testbed.map_interval_ps,
        "mcp_reply_timeout_ps": testbed.mcp_reply_timeout_ps,
        "mcp_initial_delay_ps": testbed.mcp_initial_delay_ps,
        "settle_ps": testbed.settle_ps,
        "pipeline_depth": testbed.pipeline_depth,
        "pipeline": testbed.pipeline,
        "device_kwargs": _encode_device_kwargs(testbed.device_kwargs),
        "host_kwargs": _check_kwargs(
            testbed.host_kwargs, "testbed.host_kwargs"
        ),
        "switch_kwargs": _check_kwargs(
            testbed.switch_kwargs, "testbed.switch_kwargs"
        ),
        "long_timeout_periods": testbed.long_timeout_periods,
        "topology": (
            None if testbed.topology is None
            else _encode_fabric(testbed.topology)
        ),
    }


def _encode_experiment(experiment: ExperimentSpec) -> Dict[str, Any]:
    return {
        "name": experiment.name,
        "duration_ps": experiment.duration_ps,
        "drain_ps": experiment.drain_ps,
        "plan": (
            None if experiment.plan is None
            else _encode_plan(experiment.plan)
        ),
        "workload": (
            None if experiment.workload is None
            else _encode_workload(experiment.workload)
        ),
        "testbed": (
            None if experiment.testbed is None
            else _encode_testbed(experiment.testbed)
        ),
        "params": _check_kwargs(experiment.params, "experiment.params"),
        "extra_plans": [
            _encode_plan(plan) for plan in experiment.extra_plans
        ],
    }


def spec_to_json(spec: CampaignSpec) -> Dict[str, Any]:
    """The complete JSON document describing ``spec`` (re-runnable)."""
    return {
        "codec": "repro.runtime.spec_codec",
        "version": SPEC_CODEC_VERSION,
        "name": spec.name,
        "base_seed": spec.base_seed,
        "experiments": [
            _encode_experiment(experiment)
            for experiment in spec.experiments
        ],
    }


# ---------------------------------------------------------------------------
# decode
# ---------------------------------------------------------------------------


def _require_mapping(doc: Any, path: str) -> Dict[str, Any]:
    if not isinstance(doc, dict):
        raise ConfigurationError(
            f"{path} must be a JSON object, got {type(doc).__name__}"
        )
    return doc


def _take_int(doc: Dict[str, Any], key: str, path: str,
              default: Optional[int] = None,
              required: bool = False) -> Any:
    if key not in doc:
        if required:
            raise ConfigurationError(f"{path}.{key} is required")
        return default
    value = doc[key]
    if value is None and not required:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"{path}.{key} must be an integer, got {type(value).__name__}"
        )
    return value


def _decode_injector(doc: Any, path: str) -> InjectorConfig:
    doc = _require_mapping(doc, path)
    kwargs: Dict[str, Any] = {}
    try:
        if "match_mode" in doc:
            kwargs["match_mode"] = MatchMode(doc["match_mode"])
        if "corrupt_mode" in doc:
            kwargs["corrupt_mode"] = CorruptMode(doc["corrupt_mode"])
    except ValueError as exc:
        raise ConfigurationError(f"{path}: {exc}") from None
    for field in ("compare_data", "compare_mask", "compare_ctl",
                  "compare_ctl_mask", "corrupt_data", "corrupt_mask",
                  "corrupt_ctl", "corrupt_ctl_mask"):
        value = _take_int(doc, field, path)
        if value is not None:
            kwargs[field] = value
    if "crc_fixup" in doc:
        kwargs["crc_fixup"] = bool(doc["crc_fixup"])
    known = set(kwargs) | {"match_mode", "corrupt_mode", "crc_fixup"}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise ConfigurationError(f"{path}: unknown field(s) {unknown}")
    return InjectorConfig(**kwargs)


def _decode_plan(doc: Any, path: str) -> PlanSpec:
    doc = _require_mapping(doc, path)
    unknown = sorted(
        set(doc) - {"kind", "direction", "config", "use_serial",
                    "rearm_interval_ps", "on_ps", "off_ps", "interval_ps",
                    "mean_interval_ps", "seed",
                    "flip_control_bit_probability"}
    )
    if unknown:
        raise ConfigurationError(f"{path}: unknown field(s) {unknown}")
    if "kind" not in doc or "direction" not in doc:
        raise ConfigurationError(
            f"{path}.kind and {path}.direction are required"
        )
    kwargs: Dict[str, Any] = {}
    if "use_serial" in doc:
        kwargs["use_serial"] = bool(doc["use_serial"])
    kwargs["rearm_interval_ps"] = _take_int(doc, "rearm_interval_ps", path)
    for field in ("on_ps", "off_ps", "interval_ps", "mean_interval_ps",
                  "seed"):
        value = _take_int(doc, field, path)
        if value is not None:
            kwargs[field] = value
    if "flip_control_bit_probability" in doc:
        value = doc["flip_control_bit_probability"]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"{path}.flip_control_bit_probability must be a number, "
                f"got {type(value).__name__}"
            )
        kwargs["flip_control_bit_probability"] = float(value)
    # An *absent* config keeps the historical default-injector decode;
    # an explicit null means "no config" (the seu kind).
    config = doc.get("config", {})
    return PlanSpec(
        str(doc["kind"]), str(doc["direction"]),
        (None if config is None
         else _decode_injector(config, f"{path}.config")),
        **kwargs,
    )


def _decode_workload(doc: Any, path: str) -> WorkloadConfig:
    doc = _require_mapping(doc, path)
    unknown = sorted(
        set(doc) - {"payload_size", "send_interval_ps", "flood_ping",
                    "forbidden_bytes", "stack_kwargs", "burst_max",
                    "burst_alpha"}
    )
    if unknown:
        raise ConfigurationError(f"{path}: unknown field(s) {unknown}")
    kwargs: Dict[str, Any] = {}
    for field in ("payload_size", "send_interval_ps", "burst_max"):
        value = _take_int(doc, field, path)
        if value is not None:
            kwargs[field] = value
    if "burst_alpha" in doc:
        value = doc["burst_alpha"]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"{path}.burst_alpha must be a number, "
                f"got {type(value).__name__}"
            )
        kwargs["burst_alpha"] = float(value)
    if "flood_ping" in doc:
        kwargs["flood_ping"] = bool(doc["flood_ping"])
    if "forbidden_bytes" in doc:
        raw = doc["forbidden_bytes"]
        if not isinstance(raw, list):
            raise ConfigurationError(
                f"{path}.forbidden_bytes must be a list of ints"
            )
        kwargs["forbidden_bytes"] = {int(b) for b in raw}
    if "stack_kwargs" in doc:
        kwargs["stack_kwargs"] = dict(
            _require_mapping(doc["stack_kwargs"], f"{path}.stack_kwargs")
        )
    return WorkloadConfig(**kwargs)


def _decode_testbed(doc: Any, path: str) -> TestbedOptions:
    doc = _require_mapping(doc, path)
    unknown = sorted(
        set(doc) - {"seed", "instrumented_host", "with_device",
                    "char_period_ps", "map_interval_ps",
                    "mcp_reply_timeout_ps", "mcp_initial_delay_ps",
                    "settle_ps", "pipeline_depth", "pipeline",
                    "device_kwargs", "host_kwargs", "switch_kwargs",
                    "long_timeout_periods", "topology"}
    )
    if unknown:
        raise ConfigurationError(f"{path}: unknown field(s) {unknown}")
    kwargs: Dict[str, Any] = {}
    for field in ("seed", "char_period_ps", "map_interval_ps",
                  "mcp_reply_timeout_ps", "mcp_initial_delay_ps",
                  "settle_ps", "pipeline_depth"):
        value = _take_int(doc, field, path)
        if value is not None:
            kwargs[field] = value
    if "instrumented_host" in doc:
        kwargs["instrumented_host"] = str(doc["instrumented_host"])
    if "with_device" in doc:
        kwargs["with_device"] = bool(doc["with_device"])
    if "pipeline" in doc and doc["pipeline"] is not None:
        kwargs["pipeline"] = str(doc["pipeline"])
    if "long_timeout_periods" in doc:
        kwargs["long_timeout_periods"] = _take_int(
            doc, "long_timeout_periods", path
        )
    if "device_kwargs" in doc:
        device_kwargs = dict(
            _require_mapping(doc["device_kwargs"], f"{path}.device_kwargs")
        )
        monitor = device_kwargs.get("monitor_config")
        if monitor is not None:
            monitor = _require_mapping(
                monitor, f"{path}.device_kwargs.monitor_config"
            )
            device_kwargs["monitor_config"] = MonitorConfig(
                enabled=bool(monitor.get("enabled", False)),
                pre_symbols=int(monitor.get("pre_symbols", 32)),
                post_symbols=int(monitor.get("post_symbols", 32)),
            )
        kwargs["device_kwargs"] = device_kwargs
    for field in ("host_kwargs", "switch_kwargs"):
        if field in doc:
            kwargs[field] = dict(
                _require_mapping(doc[field], f"{path}.{field}")
            )
    if doc.get("topology") is not None:
        kwargs["topology"] = _decode_fabric(
            doc["topology"], f"{path}.topology"
        )
    return TestbedOptions(**kwargs)


def _decode_fabric(doc: Any, path: str) -> FabricSpec:
    doc = _require_mapping(doc, path)
    unknown = sorted(
        set(doc) - {"hosts", "switches", "host_links", "trunks"}
    )
    if unknown:
        raise ConfigurationError(f"{path}: unknown field(s) {unknown}")

    def _rows(key: str, width: int, required: bool) -> list:
        raw = doc.get(key, None if required else [])
        if raw is None and required:
            raise ConfigurationError(f"{path}.{key} is required")
        if not isinstance(raw, list) or any(
            not isinstance(row, list) or len(row) != width
            for row in raw
        ):
            raise ConfigurationError(
                f"{path}.{key} must be a list of {width}-element lists"
            )
        return raw

    hosts = doc.get("hosts")
    if not isinstance(hosts, list) or any(
        not isinstance(h, str) for h in hosts
    ):
        raise ConfigurationError(
            f"{path}.hosts must be a list of host names"
        )
    fabric = FabricSpec(
        hosts=tuple(hosts),
        switches=tuple(
            (str(name), int(ports))
            for name, ports in _rows("switches", 2, required=True)
        ),
        host_links=tuple(
            (str(host), str(switch), int(port))
            for host, switch, port in _rows("host_links", 3, required=True)
        ),
        trunks=tuple(
            (str(a), int(pa), str(b), int(pb))
            for a, pa, b, pb in _rows("trunks", 4, required=False)
        ),
    )
    try:
        fabric.validate()
    except ConfigurationError as exc:
        raise ConfigurationError(f"{path}: {exc}") from None
    return fabric


def _decode_experiment(doc: Any, path: str) -> ExperimentSpec:
    doc = _require_mapping(doc, path)
    unknown = sorted(
        set(doc) - {"name", "duration_ps", "drain_ps", "plan", "workload",
                    "testbed", "params", "extra_plans"}
    )
    if unknown:
        raise ConfigurationError(f"{path}: unknown field(s) {unknown}")
    if "name" not in doc:
        raise ConfigurationError(f"{path}.name is required")
    duration_ps = _take_int(doc, "duration_ps", path, required=True)
    kwargs: Dict[str, Any] = {}
    drain_ps = _take_int(doc, "drain_ps", path)
    if drain_ps is not None:
        kwargs["drain_ps"] = drain_ps
    if doc.get("plan") is not None:
        kwargs["plan"] = _decode_plan(doc["plan"], f"{path}.plan")
    if doc.get("workload") is not None:
        kwargs["workload"] = _decode_workload(
            doc["workload"], f"{path}.workload"
        )
    if doc.get("testbed") is not None:
        kwargs["testbed"] = _decode_testbed(
            doc["testbed"], f"{path}.testbed"
        )
    if "params" in doc:
        kwargs["params"] = dict(
            _require_mapping(doc["params"], f"{path}.params")
        )
    if doc.get("extra_plans"):
        extra = doc["extra_plans"]
        if not isinstance(extra, list):
            raise ConfigurationError(
                f"{path}.extra_plans must be a list"
            )
        kwargs["extra_plans"] = tuple(
            _decode_plan(entry, f"{path}.extra_plans[{index}]")
            for index, entry in enumerate(extra)
        )
    return ExperimentSpec(str(doc["name"]), duration_ps, **kwargs)


def spec_from_json(doc: Any) -> CampaignSpec:
    """Reconstruct the :class:`CampaignSpec` a :func:`spec_to_json`
    document describes (strict: malformed input raises
    :class:`ConfigurationError`, never ``KeyError``)."""
    doc = _require_mapping(doc, "spec")
    version = doc.get("version", SPEC_CODEC_VERSION)
    if version != SPEC_CODEC_VERSION:
        raise ConfigurationError(
            f"spec codec version {version!r} is not supported "
            f"(this build speaks {SPEC_CODEC_VERSION})"
        )
    if "name" not in doc:
        raise ConfigurationError("spec.name is required")
    experiments = doc.get("experiments", [])
    if not isinstance(experiments, list):
        raise ConfigurationError("spec.experiments must be a list")
    specs = [
        _decode_experiment(entry, f"spec.experiments[{index}]")
        for index, entry in enumerate(experiments)
    ]
    base_seed = _take_int(doc, "base_seed", "spec", default=0)
    return CampaignSpec.build(
        str(doc["name"]), specs, base_seed=int(base_seed or 0)
    )
