"""Per-experiment artifact layout and the deterministic shard merge.

A sharded campaign run with ``--artifacts-dir out/`` produces::

    out/
      journal.jsonl                       # checkpoint journal
      experiments/
        exp-000-STOP-IDLE/
          telemetry/metrics.json|spans.jsonl|trace.json
          capture/capture.rcap
        exp-001-…/…
      telemetry/                          # merged views (this module)
        metrics.json  spans.jsonl  trace.json
      capture/
        capture.rcap

Each worker runs its experiment under private telemetry/capture
sessions writing into that experiment's shard directory; after the
order-merge of results the parent folds the shards into campaign-level
artifacts.  The merge is deterministic — shards are visited in
experiment-index order, never completion order — with these rules:

* ``metrics.json`` — counters and histogram buckets are **summed**
  across shards; gauges take the **maximum** (peak semantics), with
  high/low watermarks and sample counts folded accordingly.
* ``spans.jsonl`` — concatenated in experiment order; every record
  gains a ``"shard": <experiment index>`` provenance field (span ids
  restart per shard, so shard+span_id is the unique key).
* ``trace.json`` — regenerated from the concatenated span records so
  the whole campaign loads as one Perfetto timeline.
* ``capture.rcap`` — re-encoded into one file: experiment markers,
  capture windows, and lifecycle events get their per-shard experiment
  index rewritten to the campaign-global index, and each marker gains a
  ``"shard"`` field naming its source directory.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.capture.format import CaptureWriter, read_capture
from repro.capture.session import CAPTURE_FILE_NAME
from repro.telemetry.exporters import (
    parse_spans_jsonl,
    spans_to_jsonl,
    to_chrome_trace,
)
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "EXPERIMENTS_SUBDIR",
    "TELEMETRY_SUBDIR",
    "CAPTURE_SUBDIR",
    "slugify",
    "shard_dir",
    "merge_artifacts",
    "ShardMerger",
]

#: Directory (under the artifacts root) holding one shard per experiment.
EXPERIMENTS_SUBDIR = "experiments"
#: Telemetry subdirectory name, used both per shard and for the merge.
TELEMETRY_SUBDIR = "telemetry"
#: Capture subdirectory name, used both per shard and for the merge.
CAPTURE_SUBDIR = "capture"

_SLUG_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def slugify(name: str, max_length: int = 48) -> str:
    """A filesystem-safe slug of an experiment name."""
    slug = _SLUG_RE.sub("-", name).strip("-") or "experiment"
    return slug[:max_length]


def shard_dir(root: Union[str, Path], index: int, name: str) -> Path:
    """The shard directory of experiment ``index`` under ``root``."""
    return (
        Path(root) / EXPERIMENTS_SUBDIR / f"exp-{index:03d}-{slugify(name)}"
    )


# ---------------------------------------------------------------------------
# metrics merge
# ---------------------------------------------------------------------------


def _merge_metrics_docs(documents: Sequence[Dict[str, Any]],
                        label: str) -> Dict[str, Any]:
    """Fold shard ``metrics.json`` documents into one (see module doc)."""
    registry = MetricsRegistry()
    wall_s = 0.0
    for document in documents:
        wall_s += float(document.get("wall_s") or 0.0)
        for entry in document.get("metrics", {}).get("series", []):
            name = entry["name"]
            labels = entry.get("labels", {})
            kind = entry.get("kind")
            if kind == "counter":
                registry.counter(name, **labels).inc(entry["value"])
            elif kind == "gauge":
                gauge = registry.gauge(name, **labels)
                gauge.value = max(gauge.value, entry["value"]) \
                    if gauge.samples else entry["value"]
                for bound in ("high",):
                    new = entry.get(bound)
                    if new is not None:
                        old = gauge.high
                        gauge.high = new if old is None else max(old, new)
                low = entry.get("low")
                if low is not None:
                    gauge.low = low if gauge.low is None \
                        else min(gauge.low, low)
                gauge.samples += entry.get("samples", 0)
            elif kind == "histogram":
                histogram = registry.histogram(
                    name, buckets=entry["buckets"], **labels
                )
                if len(histogram.counts) == len(entry["counts"]):
                    histogram.counts = [
                        a + b
                        for a, b in zip(histogram.counts, entry["counts"])
                    ]
                histogram.total += entry["sum"]
                histogram.count += entry["count"]
    registry.gauge("campaign.shards_merged").set(len(documents))
    return {
        "generated_by": "repro.runtime",
        "version": 1,
        "label": label,
        "wall_s": wall_s,
        "shards": len(documents),
        "metrics": registry.to_dict(),
    }


# ---------------------------------------------------------------------------
# whole-campaign merge
# ---------------------------------------------------------------------------


class ShardMerger:
    """Incremental, index-ordered shard fold (one :meth:`add` each).

    The fabric executor folds shards *while experiments are still
    running* — each completed prefix experiment is :meth:`add`-ed as
    soon as its shard lands, and :meth:`finalize` writes the merged
    artifacts.  Because shards must be added in ascending experiment
    index (callers enforce the prefix discipline), the fold visits
    exactly the order :func:`merge_artifacts` uses, so the final bytes
    are identical whether the merge overlapped execution or not.
    """

    def __init__(self, root: Union[str, Path],
                 label: str = "campaign") -> None:
        self.root = Path(root)
        self.label = label
        self.summary: Dict[str, Any] = {
            "telemetry_shards": 0, "capture_shards": 0, "missing_shards": []
        }
        self._metrics_docs: List[Dict[str, Any]] = []
        self._span_records: List[Any] = []
        self._capture_sources: List[Tuple[int, str, Path]] = []

    def add(self, index: int, name: str) -> None:
        """Fold experiment ``index``'s shard (call in ascending index)."""
        shard = shard_dir(self.root, index, name)
        telemetry = shard / TELEMETRY_SUBDIR
        metrics_path = telemetry / "metrics.json"
        if metrics_path.exists():
            self.summary["telemetry_shards"] += 1
            self._metrics_docs.append(json.loads(metrics_path.read_text()))
            spans_path = telemetry / "spans.jsonl"
            if spans_path.exists():
                for record in parse_spans_jsonl(spans_path.read_text()):
                    record.shard = index
                    self._span_records.append(record)
        else:
            self.summary["missing_shards"].append(index)
        capture_path = shard / CAPTURE_SUBDIR / CAPTURE_FILE_NAME
        if capture_path.exists():
            self.summary["capture_shards"] += 1
            self._capture_sources.append((index, name, capture_path))

    def finalize(self) -> Dict[str, Any]:
        """Write the merged campaign artifacts; returns the summary."""
        if self._metrics_docs:
            out = self.root / TELEMETRY_SUBDIR
            out.mkdir(parents=True, exist_ok=True)
            (out / "metrics.json").write_text(
                json.dumps(
                    _merge_metrics_docs(self._metrics_docs, self.label),
                    indent=2, sort_keys=True) + "\n"
            )
            (out / "spans.jsonl").write_text(
                spans_to_jsonl(self._span_records))
            (out / "trace.json").write_text(
                json.dumps(to_chrome_trace(self._span_records,
                                           label=self.label)) + "\n"
            )
            self.summary["telemetry_dir"] = str(out)

        if self._capture_sources:
            out = self.root / CAPTURE_SUBDIR
            out.mkdir(parents=True, exist_ok=True)
            path = _merge_captures(out / CAPTURE_FILE_NAME,
                                   self._capture_sources, self.label)
            self.summary["capture_path"] = str(path)

        return self.summary


def merge_artifacts(
    root: Union[str, Path],
    entries: Sequence[Tuple[int, str]],
    label: str = "campaign",
) -> Dict[str, Any]:
    """Fold every shard under ``root`` into campaign-level artifacts.

    ``entries`` is the ordered ``(index, name)`` list of the campaign's
    experiments; shards that never produced an artifact (e.g. an
    experiment restored from the resume journal on a later run) are
    skipped, and the skip is reported in the returned summary.
    """
    merger = ShardMerger(root, label)
    for index, name in sorted(entries):
        merger.add(index, name)
    return merger.finalize()


def _merge_captures(
    target: Path,
    sources: Sequence[Tuple[int, str, Path]],
    label: str,
) -> Path:
    """Re-encode shard ``.rcap`` files into one campaign capture file."""
    shards_meta: List[Dict[str, Any]] = []
    datasets = []
    for global_index, name, path in sources:
        data = read_capture(path)
        datasets.append((global_index, name, data))
        shards_meta.append({
            "index": global_index,
            "name": name,
            "source": str(path.parent.parent.name),
            "events": len(data.events),
            "captures": len(data.captures),
        })
    meta = {
        "label": label,
        "sim_epoch_ps": 0,
        "merged_by": "repro.runtime",
        "shards": shards_meta,
        "experiments": len(datasets),
        "events_retained": sum(len(d.events) for _, _, d in datasets),
        "events_dropped": sum(
            d.meta.get("events_dropped", 0) for _, _, d in datasets
        ),
        "corr_ids_assigned": sum(
            d.meta.get("corr_ids_assigned", 0) for _, _, d in datasets
        ),
    }
    with CaptureWriter(target, meta=meta) as writer:
        for global_index, name, data in datasets:
            # Per-shard experiment indices restart at 0; remap them to
            # the campaign-global index (one experiment per shard, but
            # the loop tolerates shards carrying several).
            local_indices = sorted(
                {marker.get("index", 0) for marker in data.experiments}
            ) or [0]
            remap = {
                local: global_index + offset
                for offset, local in enumerate(local_indices)
            }
            for marker in data.experiments:
                marker = dict(marker)
                marker["index"] = remap.get(marker.get("index", 0),
                                            global_index)
                marker["shard"] = shard_dir(".", global_index, name).name
                writer.write_experiment(marker)
            for window in data.captures:
                writer.write_window(dataclasses.replace(
                    window,
                    experiment_index=remap.get(window.experiment_index,
                                               global_index),
                ))
            for event in data.events:
                writer.write_event(dataclasses.replace(
                    event,
                    experiment_index=remap.get(event.experiment_index,
                                               global_index),
                ))
    return target


def telemetry_dir(shard: Union[str, Path]) -> Path:
    """A shard's telemetry output directory."""
    return Path(shard) / TELEMETRY_SUBDIR


def capture_dir(shard: Union[str, Path]) -> Path:
    """A shard's capture output directory."""
    return Path(shard) / CAPTURE_SUBDIR


def merged_metrics_path(root: Union[str, Path]) -> Path:
    """Where the merged ``metrics.json`` lands under an artifacts root."""
    return Path(root) / TELEMETRY_SUBDIR / "metrics.json"


def merged_capture_path(root: Union[str, Path]) -> Path:
    """Where the merged ``capture.rcap`` lands under an artifacts root."""
    return Path(root) / CAPTURE_SUBDIR / CAPTURE_FILE_NAME
