"""Deterministic per-experiment seed derivation.

The sharded campaign engine's core determinism guarantee is that a
campaign produces **bit-identical results regardless of worker count or
completion order**.  The only per-experiment state the engine hands a
worker is a seed, so the guarantee reduces to one rule:

    ``seed_i = blake2b("{base_seed}:{index}:{name}") & (2**63 - 1)``

i.e. the per-experiment seed is a pure function of the campaign's base
seed, the experiment's position in the campaign, and the experiment's
name — never of the worker that happens to run it, the wall clock, or
the order in which other experiments finish.  The same rule (and the
same 63-bit truncation) that :meth:`repro.sim.rng.DeterministicRng.fork`
uses for substreams, lifted one level up to whole experiments.

``repro.nftape.paper`` applies the identical rule when deriving
per-experiment seeds from a table/section builder's ``seed`` argument,
so a paper campaign sharded over N workers replays the single-process
run exactly.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed", "SEED_MASK"]

#: Derived seeds are truncated to 63 bits — the same mask
#: :meth:`repro.sim.rng.DeterministicRng.fork` applies, so seeds stay
#: non-negative and platform-independent.
SEED_MASK = 0x7FFF_FFFF_FFFF_FFFF


def derive_seed(base_seed: int, index: int, name: str) -> int:
    """The campaign engine's per-experiment seed (see module docstring).

    >>> derive_seed(0, 0, "STOP->IDLE") == derive_seed(0, 0, "STOP->IDLE")
    True
    >>> derive_seed(0, 0, "a") != derive_seed(0, 1, "a")
    True
    """
    digest = hashlib.blake2b(
        f"{int(base_seed)}:{int(index)}:{name}".encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big") & SEED_MASK
