"""The fabric's queryable result store: sqlite, WAL, winner-dedup.

Where the JSONL journal is a *private checkpoint* of one executor
process, the :class:`ResultStore` is the campaign fabric's *shared,
queryable* record: every worker process pushes completed experiments
into one sqlite database (WAL mode, so concurrent writers on one host
serialize safely and readers never block), and partially complete
sweeps stay queryable — ``python -m repro store query`` — while the
campaign is still running.

Schema (``SCHEMA_VERSION`` in ``meta``; same idiom as
:class:`repro.insight.store.InsightStore`):

* ``campaigns`` — one row per campaign, keyed by the **spec digest**
  (blake2b over the canonical :func:`~repro.runtime.spec_codec.
  spec_to_json` document), so two textually different but semantically
  identical submissions share their results;
* ``results`` — one row per ``(spec_digest, idx, attempt)``.  The
  **first completed attempt wins**: the winner is promoted under the
  insert transaction and a partial unique index makes a second winner
  for the same experiment impossible — duplicate lease delivery, lease
  re-issue races, and at-least-once execution all collapse to exactly
  one winning row (losing attempts are kept for the audit trail);
* ``aggregates`` — incrementally folded counter totals, updated in the
  same transaction that promotes a winner, so the view equals a
  from-scratch fold over the winner rows at every instant (property
  tested);
* ``campaign_progress`` — a SQL view joining the three.

Crash robustness: a torn write (power cut, ``kill -9`` mid-commit,
copy-under-write snapshots) is detected at open; the damaged file is
quarantined to ``<path>.corrupt-N`` and a fresh store created, so a
resumed campaign simply re-runs what the quarantined rows had covered —
re-derived seeds make the re-run byte-identical.

Determinism: no wall-clock timestamps are stored, every query carries
an explicit ``ORDER BY``, and result payloads reuse the journal's
JSON projection (:func:`~repro.runtime.journal.result_to_dict`).
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Union

from repro.errors import CampaignError, ConfigurationError
from repro.nftape.results import ExperimentResult
from repro.runtime.journal import result_from_dict, result_to_dict
from repro.runtime.spec import CampaignSpec
from repro.runtime.spec_codec import spec_to_json

__all__ = [
    "STORE_SCHEMA_VERSION",
    "AGGREGATE_FIELDS",
    "spec_digest",
    "ResultStore",
]

#: Result-store schema generation; bump on incompatible table changes.
STORE_SCHEMA_VERSION = 1

#: Counter fields folded into the incremental ``aggregates`` table
#: (the scalar :class:`ExperimentResult` counters, summed over winners).
AGGREGATE_FIELDS = (
    "messages_sent",
    "messages_received",
    "injections",
    "active_misdeliveries",
    "corrupted_deliveries",
    "send_failures",
    "checksum_drops",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    spec_digest TEXT PRIMARY KEY,
    name        TEXT NOT NULL,
    base_seed   INTEGER NOT NULL,
    experiments INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    spec_digest  TEXT NOT NULL,
    idx          INTEGER NOT NULL,
    attempt      INTEGER NOT NULL,
    name         TEXT NOT NULL,
    seed         INTEGER NOT NULL,
    winner       INTEGER NOT NULL DEFAULT 0,
    payload_json TEXT NOT NULL,
    PRIMARY KEY (spec_digest, idx, attempt)
);
CREATE UNIQUE INDEX IF NOT EXISTS results_one_winner
    ON results (spec_digest, idx) WHERE winner = 1;
CREATE TABLE IF NOT EXISTS aggregates (
    spec_digest          TEXT PRIMARY KEY,
    experiments_done     INTEGER NOT NULL DEFAULT 0,
    messages_sent        INTEGER NOT NULL DEFAULT 0,
    messages_received    INTEGER NOT NULL DEFAULT 0,
    injections           INTEGER NOT NULL DEFAULT 0,
    active_misdeliveries INTEGER NOT NULL DEFAULT 0,
    corrupted_deliveries INTEGER NOT NULL DEFAULT 0,
    send_failures        INTEGER NOT NULL DEFAULT 0,
    checksum_drops       INTEGER NOT NULL DEFAULT 0
);
CREATE VIEW IF NOT EXISTS campaign_progress AS
    SELECT c.spec_digest       AS spec_digest,
           c.name              AS name,
           c.experiments       AS experiments,
           COALESCE(a.experiments_done, 0) AS experiments_done,
           COALESCE(a.injections, 0)       AS injections,
           COALESCE(a.messages_sent, 0)    AS messages_sent,
           COALESCE(a.messages_received, 0) AS messages_received
    FROM campaigns c LEFT JOIN aggregates a USING (spec_digest);
"""


def spec_digest(spec: CampaignSpec) -> str:
    """The campaign's identity in the store: blake2b-128 over the
    canonical codec JSON (worker-count and host independent)."""
    canonical = json.dumps(spec_to_json(spec), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=16
    ).hexdigest()


class ResultStore:
    """Shared sqlite result store for fabric campaigns (see module doc).

    Open one instance per process; connections are WAL-mode with a
    generous busy timeout, so coordinator and workers on one host can
    read and write concurrently.  ``":memory:"`` works for tests (no
    cross-process sharing, obviously).
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.path = str(path)
        #: True when a corrupt database was quarantined at open.
        self.recovered = False
        self._conn = self._open()

    def _open(self) -> sqlite3.Connection:
        try:
            return self._connect()
        except sqlite3.DatabaseError:
            self._quarantine()
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            conn.execute("PRAGMA busy_timeout = 30000")
            if self.path != ":memory:":
                conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
            conn.executescript(_SCHEMA)
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(STORE_SCHEMA_VERSION)),
                )
                conn.commit()
            elif int(row[0]) != STORE_SCHEMA_VERSION:
                conn.close()
                raise ConfigurationError(
                    f"result store {self.path} has schema v{row[0]}; "
                    f"this build reads v{STORE_SCHEMA_VERSION}"
                )
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def _quarantine(self) -> None:
        """Move a torn/corrupt database (and WAL sidecars) aside."""
        base = Path(self.path)
        generation = 0
        while True:
            target = base.with_name(f"{base.name}.corrupt-{generation}")
            if not target.exists():
                break
            generation += 1
        if base.exists():
            base.rename(target)
        for suffix in ("-wal", "-shm"):
            sidecar = Path(self.path + suffix)
            if sidecar.exists():
                sidecar.rename(
                    target.with_name(target.name + suffix)
                )
        self.recovered = True

    # ------------------------------------------------------------------

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Close the underlying sqlite connection."""
        self._conn.close()

    # ------------------------------------------------------------------
    # campaign lifecycle
    # ------------------------------------------------------------------

    def begin(self, spec: CampaignSpec, resume: bool = False) -> str:
        """Register ``spec``; returns its digest.

        A fresh (non-resume) begin **clears** any previous rows of the
        same digest, so re-running a campaign from scratch never mixes
        old and new results; a resume keeps them (that is the point).
        """
        digest = spec_digest(spec)
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO campaigns "
                "(spec_digest, name, base_seed, experiments) "
                "VALUES (?, ?, ?, ?)",
                (digest, spec.name, spec.base_seed, len(spec)),
            )
            if not resume:
                self._conn.execute(
                    "DELETE FROM results WHERE spec_digest = ?", (digest,)
                )
                self._conn.execute(
                    "DELETE FROM aggregates WHERE spec_digest = ?",
                    (digest,),
                )
        return digest

    def record(
        self,
        digest: str,
        index: int,
        name: str,
        seed: int,
        result: ExperimentResult,
        attempt: int = 0,
    ) -> bool:
        """Insert one completed attempt; returns True if it **won**.

        One transaction inserts the attempt row, promotes it to winner
        iff the experiment has no winner yet, and folds the counters
        into ``aggregates`` — so duplicate deliveries and lease-reissue
        races leave exactly one winner and exactly-once aggregation.
        """
        payload = json.dumps(result_to_dict(result), sort_keys=True)
        with self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO results "
                "(spec_digest, idx, attempt, name, seed, winner, "
                " payload_json) VALUES (?, ?, ?, ?, ?, 0, ?)",
                (digest, index, attempt, name, seed, payload),
            )
            has_winner = self._conn.execute(
                "SELECT 1 FROM results WHERE spec_digest = ? AND idx = ? "
                "AND winner = 1",
                (digest, index),
            ).fetchone()
            if has_winner is not None:
                return False
            promoted = self._conn.execute(
                "UPDATE results SET winner = 1, payload_json = ? "
                "WHERE spec_digest = ? AND idx = ? AND attempt = ?",
                (payload, digest, index, attempt),
            ).rowcount
            if not promoted:  # pragma: no cover - defensive
                return False
            columns = ", ".join(AGGREGATE_FIELDS)
            updates = ", ".join(
                f"{field} = {field} + excluded.{field}"
                for field in AGGREGATE_FIELDS
            )
            self._conn.execute(
                f"INSERT INTO aggregates (spec_digest, experiments_done, "
                f"{columns}) VALUES (?, 1, "
                f"{', '.join('?' for _ in AGGREGATE_FIELDS)}) "
                f"ON CONFLICT (spec_digest) DO UPDATE SET "
                f"experiments_done = experiments_done + 1, {updates}",
                (digest, *(
                    int(getattr(result, field, 0) or 0)
                    for field in AGGREGATE_FIELDS
                )),
            )
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def completed(self, digest: str) -> Dict[int, ExperimentResult]:
        """Winning results keyed by experiment index (resume source)."""
        rows = self._conn.execute(
            "SELECT idx, payload_json FROM results "
            "WHERE spec_digest = ? AND winner = 1 ORDER BY idx",
            (digest,),
        ).fetchall()
        return {
            int(idx): result_from_dict(json.loads(payload))
            for idx, payload in rows
        }

    def completed_indices(self, digest: str) -> Set[int]:
        """Just the winner indices (cheap poll for workers)."""
        rows = self._conn.execute(
            "SELECT idx FROM results WHERE spec_digest = ? AND winner = 1",
            (digest,),
        ).fetchall()
        return {int(row[0]) for row in rows}

    def aggregate(self, digest: str) -> Dict[str, int]:
        """The incrementally maintained counter totals."""
        row = self._conn.execute(
            "SELECT experiments_done, "
            + ", ".join(AGGREGATE_FIELDS)
            + " FROM aggregates WHERE spec_digest = ?",
            (digest,),
        ).fetchone()
        fields = ("experiments_done",) + AGGREGATE_FIELDS
        if row is None:
            return {field: 0 for field in fields}
        return {field: int(value) for field, value in zip(fields, row)}

    def fold_aggregate(self, digest: str) -> Dict[str, int]:
        """A from-scratch fold over the winner rows.

        The property the incremental table must uphold:
        ``aggregate(d) == fold_aggregate(d)`` after any interleaving of
        inserts, duplicate deliveries, and lease re-issues.
        """
        totals = {field: 0 for field in
                  ("experiments_done",) + AGGREGATE_FIELDS}
        for result in self.completed(digest).values():
            totals["experiments_done"] += 1
            for field in AGGREGATE_FIELDS:
                totals[field] += int(getattr(result, field, 0) or 0)
        return totals

    def campaigns(self) -> List[Dict[str, Any]]:
        """Every known campaign with its progress (the query view)."""
        rows = self._conn.execute(
            "SELECT spec_digest, name, experiments, experiments_done, "
            "injections, messages_sent, messages_received "
            "FROM campaign_progress ORDER BY name, spec_digest"
        ).fetchall()
        keys = ("spec_digest", "name", "experiments", "experiments_done",
                "injections", "messages_sent", "messages_received")
        return [dict(zip(keys, row)) for row in rows]

    def resolve(self, ref: str) -> Optional[str]:
        """A digest from a digest prefix or an exact campaign name."""
        rows = self._conn.execute(
            "SELECT spec_digest FROM campaigns "
            "WHERE spec_digest LIKE ? OR name = ? "
            "ORDER BY spec_digest",
            (ref + "%", ref),
        ).fetchall()
        if len(rows) > 1:
            raise CampaignError(
                f"ambiguous campaign reference {ref!r} "
                f"({len(rows)} matches)"
            )
        return rows[0][0] if rows else None

    def export_rows(self, digest: str) -> Iterator[Dict[str, Any]]:
        """Winner rows in index order, JSON-safe (``store export``)."""
        rows = self._conn.execute(
            "SELECT idx, attempt, name, seed, payload_json FROM results "
            "WHERE spec_digest = ? AND winner = 1 ORDER BY idx",
            (digest,),
        ).fetchall()
        for idx, attempt, name, seed, payload in rows:
            yield {
                "index": int(idx),
                "attempt": int(attempt),
                "name": name,
                "seed": int(seed),
                "result": json.loads(payload),
            }

    def attempts(self, digest: str, index: int) -> List[Dict[str, Any]]:
        """Every recorded attempt of one experiment (audit trail)."""
        rows = self._conn.execute(
            "SELECT attempt, winner FROM results "
            "WHERE spec_digest = ? AND idx = ? ORDER BY attempt",
            (digest, index),
        ).fetchall()
        return [
            {"attempt": int(attempt), "winner": bool(winner)}
            for attempt, winner in rows
        ]
