"""Live campaign event bus: bounded, drop-counting, thread-safe.

The paper's premise is *live* monitoring — the adaptive monitor watches
the link in real time, not after the fact.  This module is the software
analogue for the campaign engine itself: executors (and the journal)
publish typed lifecycle events onto a process-wide :class:`EventBus`
that subscribers — the ``repro.cli campaign --follow`` printer, the
:mod:`repro.server` streaming endpoints — consume concurrently while
the campaign runs.

The bus lives under the same contract as telemetry and capture, and the
same golden-digest gates prove it:

* **disabled is free** — every emission site guards on a single slotted
  attribute read (:data:`EVENTS`.``active``); with no bus installed the
  instrumented code takes one predictable branch and does nothing else;
* **enabled only observes** — publishing appends to bounded ring
  buffers and never blocks: a slow or absent subscriber costs the
  executor nothing beyond a dropped-event count.  No subscriber can
  stall, reorder, or perturb the campaign.

Event shape (one JSON object per event, NDJSON-friendly)::

    {"seq": 3, "campaign": "cli control-symbol campaign",
     "kind": "experiment_finished", "index": 1, "name": "GAP->IDLE", ...}

``seq`` is a **monotone per-campaign sequence number** assigned under
the bus lock at publish time — subscribers detect their own losses by
gaps, and the server's replay endpoint orders on it.

Lifecycle kinds (see :data:`EVENT_KINDS`): ``campaign_started``,
``experiment_started`` / ``experiment_finished`` /
``experiment_restored`` / ``experiment_retried`` /
``experiment_timeout`` / ``experiment_failed``,
``fabric_lease_reissued`` (a fabric lease expired and the experiment
was re-queued with the same derived seed — *not* a second
``experiment_started``), ``snapshot`` (periodic
counter *deltas* since the previous snapshot), ``journal_record``,
``shard_merged``, ``campaign_finished``, ``campaign_failed``, and
``heartbeat``.

Wall-clock note: this module carries the :mod:`repro.runtime` SIM001
allowance — events timestamp *host* observation time for subscribers
and never feed simulated time.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = [
    "EVENT_KINDS",
    "Event",
    "EventBus",
    "Subscription",
    "EventBusSession",
    "EVENTS",
    "events_active",
    "emit",
]

#: Every event kind the engine publishes (subscribers may filter on it;
#: unknown kinds are forward-compatible — consumers must tolerate them).
EVENT_KINDS = (
    "campaign_queued",
    "campaign_started",
    "experiment_started",
    "experiment_finished",
    "experiment_restored",
    "experiment_retried",
    "experiment_timeout",
    "experiment_failed",
    "fabric_lease_reissued",
    "snapshot",
    "journal_record",
    "shard_merged",
    "insight_ready",
    "campaign_finished",
    "campaign_failed",
    "heartbeat",
)

#: Kinds that terminate a campaign's event stream (the server's
#: streaming endpoint closes a follow once one of these has been sent).
TERMINAL_KINDS = ("campaign_finished", "campaign_failed")

#: Default per-campaign history ring size (replay window).
DEFAULT_HISTORY = 4096
#: Default per-subscription queue size.
DEFAULT_SUBSCRIPTION_DEPTH = 1024


class Event:
    """One published lifecycle event (immutable by convention)."""

    __slots__ = ("seq", "campaign", "kind", "payload")

    def __init__(self, seq: int, campaign: str, kind: str,
                 payload: Dict[str, Any]) -> None:
        self.seq = seq
        self.campaign = campaign
        self.kind = kind
        self.payload = payload

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-safe projection (payload keys flattened in)."""
        doc: Dict[str, Any] = {
            "seq": self.seq,
            "campaign": self.campaign,
            "kind": self.kind,
        }
        doc.update(self.payload)
        return doc

    def to_json(self) -> str:
        """One NDJSON line (no trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(seq={self.seq}, campaign={self.campaign!r}, " \
               f"kind={self.kind!r})"


class Subscription:
    """One subscriber's bounded event queue.

    Obtained from :meth:`EventBus.subscribe`.  The queue is a ring: when
    a subscriber falls more than ``depth`` events behind, the *oldest*
    queued events are evicted and counted in :attr:`dropped` — the
    publisher never blocks and never sees the slow consumer.
    """

    def __init__(self, bus: "EventBus", campaign: Optional[str],
                 depth: int) -> None:
        self._bus = bus
        self.campaign = campaign
        self._queue: Deque[Event] = deque(maxlen=max(1, depth))
        self._cond = threading.Condition()
        self.closed = False
        #: Events evicted from this subscription's ring (consumer lag).
        self.dropped = 0

    # -- publisher side (called under the bus lock) --------------------

    def _offer(self, event: Event) -> None:
        if self.closed:
            return
        if self.campaign is not None and event.campaign != self.campaign:
            return
        with self._cond:
            if len(self._queue) == self._queue.maxlen:
                self._queue.popleft()
                self.dropped += 1
            self._queue.append(event)
            self._cond.notify_all()

    # -- consumer side --------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Event]:
        """Pop the next event, blocking up to ``timeout`` seconds.

        Returns ``None`` on timeout or once the subscription is closed
        and drained.
        """
        with self._cond:
            if not self._queue:
                if self.closed:
                    return None
                self._cond.wait(timeout)
            if self._queue:
                return self._queue.popleft()
            return None

    def drain(self) -> List[Event]:
        """Pop everything currently queued without blocking."""
        with self._cond:
            events = list(self._queue)
            self._queue.clear()
        return events

    def close(self) -> None:
        """Detach from the bus; wakes any blocked :meth:`get`."""
        self._bus._unsubscribe(self)
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def __iter__(self) -> Iterator[Event]:
        """Drain-until-closed iteration (blocking)."""
        while True:
            event = self.get(timeout=0.2)
            if event is not None:
                yield event
            elif self.closed and not self._queue:
                return

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class EventBus:
    """Process-wide fan-out of campaign lifecycle events.

    Thread-safe: executors publish from worker/runner threads while
    subscribers drain from the asyncio server loop or the CLI printer.
    All buffers are bounded; overflow is counted, never blocking.
    """

    def __init__(self, history: int = DEFAULT_HISTORY) -> None:
        self._lock = threading.Lock()
        self._history_depth = max(1, history)
        self._seq: Dict[str, int] = {}
        self._history: Dict[str, Deque[Event]] = {}
        self._history_dropped: Dict[str, int] = {}
        self._subscribers: List[Subscription] = []
        #: Total events ever published.
        self.published = 0

    # ------------------------------------------------------------------
    # publish
    # ------------------------------------------------------------------

    def publish(self, campaign: str, kind: str, **payload: Any) -> Event:
        """Assign the next per-campaign seq and fan the event out.

        Never blocks: every sink is a bounded ring.  Returns the
        published event (tests and callers may inspect the seq).
        """
        with self._lock:
            seq = self._seq.get(campaign, 0)
            self._seq[campaign] = seq + 1
            event = Event(seq, campaign, kind, payload)
            ring = self._history.get(campaign)
            if ring is None:
                ring = deque(maxlen=self._history_depth)
                self._history[campaign] = ring
            if len(ring) == ring.maxlen:
                ring.popleft()
                self._history_dropped[campaign] = (
                    self._history_dropped.get(campaign, 0) + 1
                )
            ring.append(event)
            self.published += 1
            subscribers = list(self._subscribers)
        for subscription in subscribers:
            subscription._offer(event)
        return event

    # ------------------------------------------------------------------
    # subscribe / replay
    # ------------------------------------------------------------------

    def subscribe(
        self,
        campaign: Optional[str] = None,
        depth: int = DEFAULT_SUBSCRIPTION_DEPTH,
        replay: bool = False,
    ) -> Subscription:
        """Attach a bounded subscription (optionally one campaign only).

        With ``replay=True`` the campaign's retained history is queued
        first, so a late subscriber sees the stream from the oldest
        retained event (monotone ``seq`` lets it detect the gap to 0).
        """
        subscription = Subscription(self, campaign, depth)
        with self._lock:
            backlog: List[Event] = []
            if replay:
                if campaign is not None:
                    backlog = list(self._history.get(campaign, ()))
                else:
                    for ring in self._history.values():
                        backlog.extend(ring)
                    backlog.sort(key=lambda e: (e.campaign, e.seq))
            self._subscribers.append(subscription)
        for event in backlog:
            subscription._offer(event)
        return subscription

    def _unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass  # simlint: disable=ERR001 -- double-close is idempotent

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def history(self, campaign: str) -> List[Event]:
        """The retained events of one campaign, oldest first."""
        with self._lock:
            return list(self._history.get(campaign, ()))

    def campaigns(self) -> List[str]:
        """Campaign labels that have published at least one event."""
        with self._lock:
            return sorted(self._seq)

    def last_seq(self, campaign: str) -> int:
        """Events published so far for ``campaign`` (next seq)."""
        with self._lock:
            return self._seq.get(campaign, 0)

    @property
    def dropped(self) -> int:
        """Total events lost anywhere: history eviction + slow readers."""
        with self._lock:
            history_dropped = sum(self._history_dropped.values())
            subscriber_dropped = sum(
                s.dropped for s in self._subscribers
            )
        return history_dropped + subscriber_dropped


class _EventsState:
    """The process-wide emission switch (same idiom as telemetry STATE).

    ``__slots__`` keeps the ``active`` check a straight slot load — the
    only cost the executors pay when no bus is installed.
    """

    __slots__ = ("active", "bus")

    def __init__(self) -> None:
        self.active: bool = False
        self.bus: Optional[EventBus] = None

    def activate(self, bus: EventBus) -> None:
        self.bus = bus
        self.active = True

    def deactivate(self) -> None:
        self.active = False
        self.bus = None


#: The singleton every emission site reads.
EVENTS = _EventsState()


def events_active() -> bool:
    """True while an event bus is installed."""
    return EVENTS.active


def emit(campaign: str, kind: str, **payload: Any) -> Optional[Event]:
    """Publish onto the ambient bus, if one is installed (else free)."""
    if not EVENTS.active:
        return None
    bus = EVENTS.bus
    if bus is None:  # pragma: no cover - defensive
        return None
    return bus.publish(campaign, kind, **payload)


class EventBusSession:
    """Install a bus for a ``with`` block (nests like TelemetrySession).

    ::

        bus = EventBus()
        with EventBusSession(bus):
            with bus.subscribe() as sub:
                campaign.run(...)          # executors publish live
                for event in sub.drain():
                    print(event.to_json())
    """

    def __init__(self, bus: Optional[EventBus] = None,
                 history: int = DEFAULT_HISTORY) -> None:
        self.bus = bus if bus is not None else EventBus(history=history)
        self._previous: Optional[tuple] = None

    def __enter__(self) -> "EventBusSession":
        self._previous = (EVENTS.active, EVENTS.bus)
        EVENTS.activate(self.bus)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._previous is not None:
            active, bus = self._previous
            if active and bus is not None:
                EVENTS.activate(bus)
            else:
                EVENTS.deactivate()
            self._previous = None
        else:  # pragma: no cover - defensive
            EVENTS.deactivate()
        return False
