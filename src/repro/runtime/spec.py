"""Declarative, picklable experiment descriptions.

The paper's campaigns are thousands of independent experiments, each
re-armed from a known good state (§4.2).  To fan them across worker
processes the description of an experiment has to travel — so instead of
live :class:`~repro.nftape.experiment.Experiment` objects (which close
over simulators, devices, and callbacks), campaigns are built from
**frozen spec dataclasses** that hold *data only*:

* :class:`PlanSpec` — which injector configuration to upload and how the
  trigger is paced (fault / duty-cycle / inject-now);
* :class:`ExperimentSpec` — name, duration, workload, test-bed options,
  plan, drain time, free-form params;
* :class:`CampaignSpec` — an ordered tuple of experiment specs plus the
  campaign's base seed.

Every spec pickles cleanly and materializes into today's live objects
(``spec.materialize()``) inside whichever process runs it.  Seeds are
**not** stored per experiment: :meth:`CampaignSpec.seed_for` derives
them with the :func:`repro.runtime.seeding.derive_seed` rule, which is
what makes results independent of worker count and completion order.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hw.registers import InjectorConfig
from repro.nftape.experiment import Experiment, TestbedOptions
from repro.nftape.plan import (
    CompositePlan,
    DutyCyclePlan,
    FaultPlan,
    InjectNowPlan,
)
from repro.nftape.random_faults import RandomBitFlipPlan
from repro.nftape.workload import WorkloadConfig
from repro.runtime.seeding import derive_seed
from repro.sim.timebase import MS

__all__ = [
    "PlanSpec",
    "ExperimentSpec",
    "CampaignSpec",
    "PLAN_KINDS",
    "spec_summary",
]

#: The plan shapes :class:`PlanSpec` can describe, mapped to the live
#: plan classes they materialize into.
PLAN_KINDS = {
    "fault": FaultPlan,
    "duty_cycle": DutyCyclePlan,
    "inject_now": InjectNowPlan,
    "seu": RandomBitFlipPlan,
}


@dataclass(frozen=True, eq=True)
class PlanSpec:
    """A fault plan as data: kind + injector config + pacing knobs.

    ``kind`` selects the live class (see :data:`PLAN_KINDS`); the pacing
    fields that do not apply to the selected kind are simply ignored by
    :meth:`materialize`.
    """

    kind: str
    direction: str
    #: Required for every kind except ``seu``, whose plan synthesizes
    #: its own per-flip configurations.
    config: Optional[InjectorConfig] = None
    use_serial: bool = True
    #: ``fault``: once-mode re-arm period (``None`` = no re-arming).
    rearm_interval_ps: Optional[int] = None
    #: ``duty_cycle``: armed / disarmed window lengths.
    on_ps: int = 1 * MS
    off_ps: int = 3 * MS
    #: ``inject_now``: forced-injection pulse period.
    interval_ps: int = 1 * MS
    #: ``seu``: mean gap between exponentially-paced bit flips, the rng
    #: seed, and the chance a flip lands on the control bit.
    mean_interval_ps: int = 2 * MS
    seed: int = 0
    flip_control_bit_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in PLAN_KINDS:
            raise ConfigurationError(
                f"unknown plan kind {self.kind!r}; "
                f"expected one of {sorted(PLAN_KINDS)}"
            )
        if not self.direction or any(d not in "RL" for d in self.direction):
            raise ConfigurationError(
                f"plan direction must be 'R', 'L', or 'RL', "
                f"got {self.direction!r}"
            )
        if self.config is None and self.kind != "seu":
            raise ConfigurationError(
                f"plan kind {self.kind!r} needs an injector config"
            )

    def materialize(self) -> Any:
        """Build the live plan object this spec describes."""
        if self.kind == "seu":
            return RandomBitFlipPlan(
                direction=self.direction,
                mean_interval_ps=self.mean_interval_ps,
                use_serial=self.use_serial,
                seed=self.seed,
                flip_control_bit_probability=(
                    self.flip_control_bit_probability
                ),
            )
        if self.kind == "fault":
            return FaultPlan(
                self.direction, self.config,
                rearm_interval_ps=self.rearm_interval_ps,
                use_serial=self.use_serial,
            )
        if self.kind == "duty_cycle":
            return DutyCyclePlan(
                self.direction, self.config,
                on_ps=self.on_ps, off_ps=self.off_ps,
                use_serial=self.use_serial,
            )
        return InjectNowPlan(
            self.direction, self.config,
            interval_ps=self.interval_ps,
            use_serial=self.use_serial,
        )


@dataclass(frozen=True, eq=True)
class ExperimentSpec:
    """One experiment as data — everything but the seed.

    The seed is deliberately absent: it is derived by the campaign
    engine (:meth:`CampaignSpec.seed_for`) or passed explicitly to
    :meth:`materialize`, so the same spec can be replayed at any
    position of any campaign.  ``testbed.seed`` acts as the default
    when no seed is supplied.
    """

    name: str
    duration_ps: int
    plan: Optional[PlanSpec] = None
    workload: Optional[WorkloadConfig] = None
    testbed: Optional[TestbedOptions] = None
    drain_ps: int = 5 * MS
    params: Dict[str, Any] = field(default_factory=dict)
    #: Additional plans run *simultaneously* with ``plan`` (compound
    #: failures).  Materializes into a :class:`CompositePlan`; each plan
    #: must drive a distinct injector direction.
    extra_plans: Tuple[PlanSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "extra_plans", tuple(self.extra_plans))
        if self.extra_plans and self.plan is None:
            raise ConfigurationError(
                "extra_plans without a primary plan; promote the first "
                "extra plan to `plan`"
            )

    def all_plans(self) -> Tuple[PlanSpec, ...]:
        """Primary plan plus extras, in install order."""
        if self.plan is None:
            return ()
        return (self.plan,) + self.extra_plans

    def materialize(self, seed: Optional[int] = None) -> Experiment:
        """Build a live :class:`Experiment`, optionally forcing a seed.

        The returned experiment owns private copies of the mutable
        option containers, so a worker mutating its test bed can never
        leak state back into the (shared, reused) spec.
        """
        testbed = self.testbed or TestbedOptions()
        options = dataclasses.replace(
            testbed,
            seed=testbed.seed if seed is None else seed,
            device_kwargs=dict(testbed.device_kwargs),
            host_kwargs=dict(testbed.host_kwargs),
            switch_kwargs=dict(testbed.switch_kwargs),
        )
        workload = self.workload or WorkloadConfig()
        workload = dataclasses.replace(
            workload,
            forbidden_bytes=set(workload.forbidden_bytes),
            stack_kwargs=dict(workload.stack_kwargs),
        )
        plan: Optional[Any] = None
        if self.plan is not None:
            plan = self.plan.materialize()
            if self.extra_plans:
                plan = CompositePlan(
                    (plan,)
                    + tuple(p.materialize() for p in self.extra_plans)
                )
        return Experiment(
            self.name,
            duration_ps=self.duration_ps,
            plan=plan,
            workload_config=workload,
            testbed_options=options,
            drain_ps=self.drain_ps,
            params=dict(self.params),
        )


@dataclass(frozen=True, eq=True)
class CampaignSpec:
    """An ordered, picklable campaign: experiment specs + base seed."""

    name: str
    experiments: Tuple[ExperimentSpec, ...] = ()
    base_seed: int = 0

    def __post_init__(self) -> None:
        # Accept any iterable; store a tuple (frozen dataclass idiom).
        object.__setattr__(self, "experiments", tuple(self.experiments))

    def __len__(self) -> int:
        return len(self.experiments)

    def with_experiments(self, *specs: ExperimentSpec) -> "CampaignSpec":
        """A new spec with ``specs`` appended (chainable)."""
        return dataclasses.replace(
            self, experiments=self.experiments + tuple(specs)
        )

    def seed_for(self, index: int) -> int:
        """The derived seed of experiment ``index`` (see seeding rule)."""
        return derive_seed(
            self.base_seed, index, self.experiments[index].name
        )

    def materialize(self, index: int) -> Experiment:
        """Build experiment ``index`` with its derived seed."""
        return self.experiments[index].materialize(seed=self.seed_for(index))

    @staticmethod
    def build(name: str, specs: Iterable[ExperimentSpec],
              base_seed: int = 0) -> "CampaignSpec":
        """Convenience constructor from any iterable of specs."""
        return CampaignSpec(name, tuple(specs), base_seed=base_seed)


def _json_safe(value: Any) -> Any:
    """Recursively coerce a value into JSON-representable data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return str(value)


def spec_summary(spec: CampaignSpec) -> Dict[str, Any]:
    """A JSON-safe description of a campaign, for ``spec.json``.

    The artifact engine drops this next to ``journal.jsonl`` so offline
    consumers — ``repro.insight`` foremost — can recover the campaign's
    shape (experiment names, derived seeds, plan direction, topology
    options) without unpickling live spec objects.  It is a *summary*:
    enough to interpret the artifacts, not enough to re-run them.
    """
    experiments = []
    for index, experiment in enumerate(spec.experiments):
        entry: Dict[str, Any] = {
            "index": index,
            "name": experiment.name,
            "seed": spec.seed_for(index),
            "duration_ps": experiment.duration_ps,
            "drain_ps": experiment.drain_ps,
            "params": _json_safe(experiment.params),
        }
        def _plan_entry(plan: PlanSpec) -> Dict[str, Any]:
            return {
                "kind": plan.kind,
                "direction": plan.direction,
                "use_serial": plan.use_serial,
                "rearm_interval_ps": plan.rearm_interval_ps,
                "on_ps": plan.on_ps,
                "off_ps": plan.off_ps,
                "interval_ps": plan.interval_ps,
                "mean_interval_ps": plan.mean_interval_ps,
                "seed": plan.seed,
                "flip_control_bit_probability": (
                    plan.flip_control_bit_probability
                ),
                "config": (
                    None if plan.config is None
                    else plan.config.describe()
                ),
            }

        if experiment.plan is not None:
            entry["plan"] = _plan_entry(experiment.plan)
        if experiment.extra_plans:
            entry["extra_plans"] = [
                _plan_entry(p) for p in experiment.extra_plans
            ]
        testbed = experiment.testbed
        if testbed is not None:
            entry["testbed"] = {
                "seed": testbed.seed,
                "instrumented_host": testbed.instrumented_host,
                "with_device": testbed.with_device,
                "pipeline": testbed.pipeline,
            }
            if testbed.topology is not None:
                entry["testbed"]["topology"] = {
                    "hosts": list(testbed.topology.hosts),
                    "switches": [
                        list(s) for s in testbed.topology.switches
                    ],
                }
        experiments.append(entry)
    return {
        "generated_by": "repro.runtime",
        "version": 1,
        "name": spec.name,
        "base_seed": spec.base_seed,
        "experiments": experiments,
    }
