"""The socket layer binding UDP to a Myrinet host interface.

:class:`HostStack` models the per-node software stack: protocol
encapsulation, receive dispatch, and — because the paper's Table 2
measurements are dominated by it — host processing time.  Sends and
deliveries each pay a configurable overhead plus random jitter, and
application-visible timestamps are quantized to a timer tick with a
per-host phase, reproducing the paper's observation that the injector's
sub-microsecond latency "is getting lost in the granularity caused by
the computer's interrupt handler".
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional

from repro.capture import instrument as _capture
from repro.capture.state import CAPTURE as _CAPTURE
from repro.errors import ChecksumError, ProtocolError
from repro.hostsim.ip import HEADER_LEN as IP_HEADER_LEN
from repro.hostsim.ip import IpAddress, IpLiteHeader, PROTO_UDP
from repro.hostsim.udp import UdpDatagram
from repro.myrinet.addresses import MacAddress
from repro.myrinet.interface import HostInterface
from repro.sim.kernel import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import US

#: Receive-path handler: (src_mac, src_ip, src_port, payload).
UdpHandler = Callable[[MacAddress, IpAddress, int, bytes], None]

#: Default host processing overheads (tuned in the Table 2 benchmark to
#: the paper's absolute numbers; defaults keep unit tests fast).
DEFAULT_SEND_OVERHEAD_PS = 20 * US
DEFAULT_RECV_OVERHEAD_PS = 20 * US
DEFAULT_JITTER_PS = 2 * US
DEFAULT_TIMER_TICK_PS = 1 * US


class HostStack:
    """IP-lite/UDP over one host interface."""

    def __init__(
        self,
        sim: Simulator,
        interface: HostInterface,
        rng: Optional[DeterministicRng] = None,
        send_overhead_ps: int = DEFAULT_SEND_OVERHEAD_PS,
        recv_overhead_ps: int = DEFAULT_RECV_OVERHEAD_PS,
        jitter_ps: int = DEFAULT_JITTER_PS,
        timer_tick_ps: int = DEFAULT_TIMER_TICK_PS,
        timer_phase_ps: Optional[int] = None,
        overhead_drift_ps: int = 0,
    ) -> None:
        self._sim = sim
        self.interface = interface
        self._rng = rng or DeterministicRng(interface.mac.value & 0xFFFF)
        drift = (
            self._rng.randint(-overhead_drift_ps, overhead_drift_ps)
            if overhead_drift_ps > 0 else 0
        )
        # A per-run systematic offset modelling machine state differences
        # (cache/daemon activity) between measurement runs — the paper's
        # Table 2 spread is dominated by such run-to-run effects.
        self.overhead_drift_ps = drift
        self.send_overhead_ps = send_overhead_ps + drift
        self.recv_overhead_ps = recv_overhead_ps
        self.jitter_ps = jitter_ps
        self.timer_tick_ps = max(1, timer_tick_ps)
        self.timer_phase_ps = (
            self._rng.randint(0, self.timer_tick_ps - 1)
            if timer_phase_ps is None
            else timer_phase_ps
        )
        self.ip = IpAddress.for_mac(interface.mac)
        self._bindings: Dict[int, UdpHandler] = {}
        interface.set_data_handler(self._on_data)

        self.udp_sent = 0
        self.udp_sent_by_port: Counter = Counter()
        self.udp_delivered = 0
        self.checksum_drops = 0
        self.parse_drops = 0
        self.unbound_drops = 0
        self.send_failures = 0
        self.send_failures_by_port: Counter = Counter()

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def bind(self, port: int, handler: UdpHandler) -> None:
        """Register the receive handler for a UDP port."""
        self._bindings[port] = handler

    def unbind(self, port: int) -> None:
        self._bindings.pop(port, None)

    def send_udp(
        self,
        dest_mac: MacAddress,
        dst_port: int,
        payload: bytes,
        src_port: int = 0,
    ) -> None:
        """Send one UDP datagram after the host send overhead."""
        delay = self.send_overhead_ps + self._jitter()
        self._sim.schedule(
            delay,
            lambda: self._transmit(dest_mac, dst_port, payload, src_port),
            label=f"{self.interface.name}:udp-send",
        )

    def timestamp(self) -> int:
        """An application-visible clock reading: quantized to the timer
        tick with this host's phase, as gettimeofday-through-interrupts
        behaves."""
        tick = self.timer_tick_ps
        return ((self._sim.now - self.timer_phase_ps) // tick) * tick \
            + self.timer_phase_ps

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _jitter(self) -> int:
        if self.jitter_ps <= 0:
            return 0
        return self._rng.randint(0, self.jitter_ps)

    def _transmit(self, dest_mac: MacAddress, dst_port: int,
                  payload: bytes, src_port: int) -> None:
        datagram = UdpDatagram(src_port=src_port, dst_port=dst_port,
                               payload=payload)
        ip = IpLiteHeader(src=self.ip, dst=IpAddress.for_mac(dest_mac))
        udp_bytes = datagram.to_bytes(ip)
        ip.total_length = IP_HEADER_LEN + len(udp_bytes)
        if self.interface.send_to(dest_mac, ip.to_bytes() + udp_bytes):
            self.udp_sent += 1
            self.udp_sent_by_port[dst_port] += 1
        else:
            self.send_failures += 1
            self.send_failures_by_port[dst_port] += 1

    def _on_data(self, src_mac: MacAddress, payload: bytes) -> None:
        delay = self.recv_overhead_ps + self._jitter()
        self._sim.schedule(
            delay,
            lambda: self._deliver(src_mac, payload),
            label=f"{self.interface.name}:udp-recv",
        )

    def _deliver(self, src_mac: MacAddress, payload: bytes) -> None:
        try:
            ip = IpLiteHeader.from_bytes(payload[:IP_HEADER_LEN])
        except ProtocolError:
            self.parse_drops += 1
            return
        if ip.protocol != PROTO_UDP:
            self.parse_drops += 1
            return
        raw_udp = payload[IP_HEADER_LEN:]
        try:
            datagram = UdpDatagram.from_bytes(raw_udp, ip)
        except ChecksumError:
            # "When the corruption did not satisfy the checksum, the
            # packets were dropped." (paper §4.3.4)
            self.checksum_drops += 1
            if _CAPTURE.active:
                _capture.udp_checksum_drop(
                    self._sim.now, self.interface.name, len(raw_udp)
                )
            return
        except ProtocolError:
            self.parse_drops += 1
            return
        handler = self._bindings.get(datagram.dst_port)
        if handler is None:
            self.unbound_drops += 1
            return
        self.udp_delivered += 1
        if _CAPTURE.active:
            _capture.udp_deliver(
                self._sim.now,
                self.interface.name,
                datagram.dst_port,
                len(datagram.payload),
            )
        handler(src_mac, ip.src, datagram.src_port, datagram.payload)
