"""The Internet one's-complement checksum (RFC 1071), as UDP uses it.

The paper's §4.3.4 experiment hinges on a structural blind spot of this
checksum: it is a *commutative* sum of 16-bit words, so exchanging two
aligned 16-bit words — "swapping bits that are 16 bits apart" — leaves
the checksum unchanged.  That is how "Have a lot of fun" became
"veHa a lot of fun" and still passed.
"""

from __future__ import annotations



def ones_complement_sum(data: bytes) -> int:
    """16-bit one's-complement sum of ``data`` (odd length zero-padded)."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """The transmitted checksum: one's complement of the sum.

    As in real UDP, a computed value of 0x0000 is transmitted as 0xFFFF
    (0x0000 on the wire means "no checksum").
    """
    value = (~ones_complement_sum(data)) & 0xFFFF
    return 0xFFFF if value == 0 else value


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (which embeds its checksum field) verifies.

    A correct checksum makes the one's-complement sum of the whole
    message 0xFFFF.
    """
    return ones_complement_sum(data) == 0xFFFF
