"""Workload applications (paper §4.2).

"Network loads were simulated using a simple UDP packet generation
program, running concurrently with the standard Unix ping program with
the flood option."  These are those programs:

* :class:`UdpGenerator` — the paced UDP sender, with the Table 4 trick
  of generating payloads that avoid the byte values under injection
  ("the symbol mask we corrupted did not appear in the message itself");
* :class:`MessageSink` — the receive-side counter ("a packet was
  reported as received if it was received correctly by the application");
* :class:`EchoResponder` / :class:`FloodPing` — ping with the flood
  option (next request on each reply, or on a loss timeout);
* :class:`PingPong` — the Table 2 latency measurement: each side waits
  for the other's packet before sending its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.errors import ConfigurationError
from repro.hostsim.ip import IpAddress
from repro.hostsim.sockets import HostStack
from repro.myrinet.addresses import MacAddress
from repro.sim.kernel import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import MS


class MessageSink:
    """Counts correctly received application messages on one port."""

    def __init__(self, stack: HostStack, port: int,
                 store_limit: int = 0) -> None:
        self._store_limit = store_limit
        self.messages: List[bytes] = []
        self.received = 0
        self.bytes_received = 0
        stack.bind(port, self._on_message)

    def _on_message(self, src_mac: MacAddress, src_ip: IpAddress,
                    src_port: int, payload: bytes) -> None:
        self.received += 1
        self.bytes_received += len(payload)
        if len(self.messages) < self._store_limit:
            self.messages.append(payload)


class UdpGenerator:
    """A paced UDP message generator."""

    def __init__(
        self,
        sim: Simulator,
        stack: HostStack,
        dest_mac: MacAddress,
        dst_port: int,
        payload_size: int = 64,
        interval_ps: int = 1 * MS,
        count: Optional[int] = None,
        rng: Optional[DeterministicRng] = None,
        forbidden_bytes: Optional[Set[int]] = None,
        src_port: int = 0,
    ) -> None:
        if payload_size < 1:
            raise ConfigurationError("payload size must be >= 1")
        self._sim = sim
        self._stack = stack
        self._dest = dest_mac
        self._port = dst_port
        self._src_port = src_port
        self._size = payload_size
        self._interval = interval_ps
        self._count = count
        self._rng = rng or DeterministicRng(dst_port)
        forbidden = forbidden_bytes or set()
        self._alphabet = [b for b in range(0x20, 0x7F) if b not in forbidden]
        if not self._alphabet:
            raise ConfigurationError("forbidden_bytes excludes every byte")
        self.sent = 0
        self._running = False

    def start(self, delay_ps: int = 0) -> None:
        """Begin generating."""
        self._running = True
        self._sim.schedule(delay_ps, self._send_one, label="udpgen")

    def stop(self) -> None:
        self._running = False

    def _payload(self) -> bytes:
        return bytes(
            self._rng.choice(self._alphabet) for _ in range(self._size)
        )

    def _send_one(self) -> None:
        if not self._running:
            return
        if self._count is not None and self.sent >= self._count:
            self._running = False
            return
        self._stack.send_udp(self._dest, self._port, self._payload(),
                             self._src_port)
        self.sent += 1
        self._sim.schedule(self._interval, self._send_one, label="udpgen")


class EchoResponder:
    """Echoes every received payload back to its sender (ping target)."""

    def __init__(self, stack: HostStack, port: int = 7) -> None:
        self._stack = stack
        self._port = port
        self.echoed = 0
        stack.bind(port, self._on_message)

    def _on_message(self, src_mac: MacAddress, src_ip: IpAddress,
                    src_port: int, payload: bytes) -> None:
        self.echoed += 1
        self._stack.send_udp(src_mac, src_port, payload,
                             src_port=self._port)


class FloodPing:
    """``ping -f``: sends the next request on each reply, or after a
    loss timeout, producing a heavy self-clocked load."""

    def __init__(
        self,
        sim: Simulator,
        stack: HostStack,
        dest_mac: MacAddress,
        echo_port: int = 7,
        local_port: int = 1007,
        payload_size: int = 56,
        loss_timeout_ps: int = 10 * MS,
        count: Optional[int] = None,
    ) -> None:
        self._sim = sim
        self._stack = stack
        self._dest = dest_mac
        self._echo_port = echo_port
        self._local_port = local_port
        self._payload = bytes(payload_size)
        self._loss_timeout = loss_timeout_ps
        self._count = count
        self._running = False
        self._seq = 0
        self._timeout_event = None
        self.sent = 0
        self.replies = 0
        self.timeouts = 0
        stack.bind(local_port, self._on_reply)

    def start(self, delay_ps: int = 0) -> None:
        self._running = True
        self._sim.schedule(delay_ps, self._send_next, label="floodping")

    def stop(self) -> None:
        self._running = False
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None

    def _send_next(self) -> None:
        if not self._running:
            return
        if self._count is not None and self.sent >= self._count:
            self._running = False
            return
        self._seq += 1
        payload = self._seq.to_bytes(4, "big") + self._payload
        self._stack.send_udp(self._dest, self._echo_port, payload,
                             src_port=self._local_port)
        self.sent += 1
        self._timeout_event = self._sim.schedule(
            self._loss_timeout, self._on_timeout, label="floodping-timeout"
        )

    def _on_reply(self, src_mac: MacAddress, src_ip: IpAddress,
                  src_port: int, payload: bytes) -> None:
        if len(payload) < 4 or int.from_bytes(payload[:4], "big") != self._seq:
            return  # stale reply from a lost round
        self.replies += 1
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        self._send_next()

    def _on_timeout(self) -> None:
        self._timeout_event = None
        self.timeouts += 1
        self._send_next()


@dataclass
class PingPongResult:
    """Outcome of one ping-pong run."""

    exchanges: int
    total_time_ps: int
    rtts_ps: List[int] = field(default_factory=list)

    @property
    def avg_time_per_packet_ps(self) -> float:
        """Paper Table 2's metric: average one-way time per packet."""
        if not self.exchanges:
            return 0.0
        return self.total_time_ps / (2 * self.exchanges)


class PingPong:
    """The Table 2 measurement: two hosts exchanging packets in lockstep.

    Side A sends; side B replies upon receipt; side A records the RTT
    (using the quantized application clock) and sends the next packet.
    """

    def __init__(
        self,
        sim: Simulator,
        stack_a: HostStack,
        stack_b: HostStack,
        count: int,
        port: int = 9000,
        payload_size: int = 16,
        loss_timeout_ps: int = 50 * MS,
        on_complete: Optional[Callable[[PingPongResult], None]] = None,
        record_rtts: bool = False,
    ) -> None:
        if payload_size < 8:
            raise ConfigurationError("payload must hold an 8-byte sequence")
        self._sim = sim
        self._a = stack_a
        self._b = stack_b
        self._count = count
        self._port = port
        self._payload_pad = bytes(payload_size - 8)
        self._loss_timeout = loss_timeout_ps
        self._on_complete = on_complete
        self._record_rtts = record_rtts
        self._seq = 0
        self._sent_at = 0
        self._started_at = 0
        self._timeout_event = None
        self.result: Optional[PingPongResult] = None
        self.losses = 0
        self._rtts: List[int] = []
        stack_b.bind(port, self._on_ping)
        stack_a.bind(port + 1, self._on_pong)

    def start(self, delay_ps: int = 0) -> None:
        self._started_at = self._sim.now + delay_ps
        self._sim.schedule(delay_ps, self._send_next, label="pingpong")

    def _send_next(self) -> None:
        if self._seq >= self._count:
            self._finish()
            return
        self._seq += 1
        self._sent_at = self._a.timestamp()
        payload = self._seq.to_bytes(8, "big") + self._payload_pad
        self._a.send_udp(self._b.interface.mac, self._port, payload)
        self._timeout_event = self._sim.schedule(
            self._loss_timeout, self._on_timeout, label="pingpong-timeout"
        )

    def _on_ping(self, src_mac: MacAddress, src_ip: IpAddress,
                 src_port: int, payload: bytes) -> None:
        # B waits for A's packet before sending its own.
        self._b.send_udp(self._a.interface.mac, self._port + 1, payload)

    def _on_pong(self, src_mac: MacAddress, src_ip: IpAddress,
                 src_port: int, payload: bytes) -> None:
        if len(payload) < 8 or int.from_bytes(payload[:8], "big") != self._seq:
            return
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        if self._record_rtts:
            self._rtts.append(self._a.timestamp() - self._sent_at)
        self._send_next()

    def _on_timeout(self) -> None:
        self._timeout_event = None
        self.losses += 1
        self._send_next()

    def _finish(self) -> None:
        self.result = PingPongResult(
            exchanges=self._seq,
            total_time_ps=self._sim.now - self._started_at,
            rtts_ps=self._rtts,
        )
        if self._on_complete is not None:
            self._on_complete(self.result)
