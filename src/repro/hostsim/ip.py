"""Minimal IP layer ("IP-lite") carried inside Myrinet data packets.

Just enough of IP to give UDP a pseudo-header and the stack an address
space: a version/protocol byte pair, a 16-bit total length, and 4-byte
source/destination addresses.  Addresses are derived from the host
interface's 48-bit physical address (10.0.x.y from the low two bytes),
matching how the test-bed assigned per-node IPs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.myrinet.addresses import MacAddress

#: Protocol number for UDP, as in real IP.
PROTO_UDP = 17

#: Serialized header length in bytes.
HEADER_LEN = 12


@dataclass(frozen=True)
class IpAddress:
    """A 32-bit IP-lite address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 32):
            raise ProtocolError(f"IP address {self.value:#x} out of range")

    @classmethod
    def for_mac(cls, mac: MacAddress) -> "IpAddress":
        """The conventional 10.0.x.y address of a host."""
        low = mac.value & 0xFFFF
        return cls((10 << 24) | (0 << 16) | low)

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IpAddress":
        if len(raw) != 4:
            raise ProtocolError(f"IP address needs 4 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24 & 0xFF}.{v >> 16 & 0xFF}.{v >> 8 & 0xFF}.{v & 0xFF}"


@dataclass
class IpLiteHeader:
    """The IP-lite header preceding a UDP datagram."""

    src: IpAddress
    dst: IpAddress
    protocol: int = PROTO_UDP
    total_length: int = 0

    def to_bytes(self) -> bytes:
        return (
            bytes([0x45, self.protocol])
            + self.total_length.to_bytes(2, "big")
            + self.src.to_bytes()
            + self.dst.to_bytes()
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IpLiteHeader":
        if len(raw) < HEADER_LEN:
            raise ProtocolError("truncated IP-lite header")
        if raw[0] != 0x45:
            raise ProtocolError(f"bad IP-lite version byte {raw[0]:#04x}")
        return cls(
            src=IpAddress.from_bytes(raw[4:8]),
            dst=IpAddress.from_bytes(raw[8:12]),
            protocol=raw[1],
            total_length=int.from_bytes(raw[2:4], "big"),
        )

    def pseudo_header(self, udp_length: int) -> bytes:
        """The UDP checksum pseudo-header."""
        return (
            self.src.to_bytes()
            + self.dst.to_bytes()
            + bytes([0, self.protocol])
            + udp_length.to_bytes(2, "big")
        )
