"""UDP datagrams with the real one's-complement checksum.

"Since UDP uses a 16-bit one's complement checksum, corrupt packets
should be detected and dropped by the UDP layer.  However, if the fault
is manifested in a way that also satisfies the checksum, the incorrect
packet should be passed through." (paper §4.3.4)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ChecksumError, ProtocolError
from repro.hostsim.checksum import internet_checksum, verify_checksum
from repro.hostsim.ip import IpLiteHeader

#: UDP header length.
HEADER_LEN = 8


@dataclass
class UdpDatagram:
    """One UDP datagram."""

    src_port: int
    dst_port: int
    payload: bytes

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ProtocolError(f"UDP port {port} out of range")

    @property
    def length(self) -> int:
        return HEADER_LEN + len(self.payload)

    def to_bytes(self, ip: IpLiteHeader) -> bytes:
        """Serialize with the checksum computed over the pseudo-header,
        the UDP header, and the payload."""
        header_no_sum = (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.length.to_bytes(2, "big")
        )
        checksum = internet_checksum(
            ip.pseudo_header(self.length) + header_no_sum + b"\x00\x00"
            + self.payload
        )
        return header_no_sum + checksum.to_bytes(2, "big") + self.payload

    @classmethod
    def from_bytes(cls, raw: bytes, ip: IpLiteHeader) -> "UdpDatagram":
        """Parse and verify; raises :class:`ChecksumError` when the
        checksum does not validate (the datagram must be dropped)."""
        if len(raw) < HEADER_LEN:
            raise ProtocolError("truncated UDP header")
        length = int.from_bytes(raw[4:6], "big")
        if length != len(raw):
            raise ProtocolError(
                f"UDP length field {length} != datagram size {len(raw)}"
            )
        if not verify_checksum(ip.pseudo_header(length) + raw):
            raise ChecksumError("UDP checksum mismatch")
        return cls(
            src_port=int.from_bytes(raw[0:2], "big"),
            dst_port=int.from_bytes(raw[2:4], "big"),
            payload=raw[HEADER_LEN:],
        )
