"""Host protocol stacks and workload applications.

Models the software side of the paper's test-bed nodes: an IP-lite/UDP
stack with the real 16-bit one's-complement checksum (whose
bit-swap-16-apart blind spot the §4.3.4 experiment exploits), a socket
API bound to a Myrinet host interface, and the traffic programs the
campaigns ran — a UDP packet generator, flood ping, and the ping-pong
latency measurement of Table 2 (including interrupt-granularity
timestamp noise).
"""

from repro.hostsim.checksum import internet_checksum, verify_checksum
from repro.hostsim.ip import IpAddress, IpLiteHeader, PROTO_UDP
from repro.hostsim.sockets import HostStack
from repro.hostsim.udp import UdpDatagram
from repro.hostsim.apps import (
    EchoResponder,
    FloodPing,
    MessageSink,
    PingPong,
    UdpGenerator,
)

__all__ = [
    "internet_checksum",
    "verify_checksum",
    "IpAddress",
    "IpLiteHeader",
    "PROTO_UDP",
    "HostStack",
    "UdpDatagram",
    "MessageSink",
    "UdpGenerator",
    "PingPong",
    "FloodPing",
    "EchoResponder",
]
