"""Versioned binary capture-file format (``.rcap``).

The paper's SDRAM holds captured traffic "for later transmission and
analysis" (§3.4); this module is the transmission format — a pcap-style,
length-prefixed binary file that a host-side tool can decode offline:

``file  := header record*``

* **header** — magic ``b"RCAP\\x01\\n"``, a little-endian ``u16``
  version, then a ``u32``-length-prefixed JSON metadata blob carrying
  the sim-time epoch, the capture configuration, and the producing
  session's label.
* **record** — ``u8`` record type + ``u32`` body length + body.  Three
  record types exist in version 1:

  1. **capture window** — one SDRAM
     :class:`~repro.core.monitor.CaptureRecord`: fixed binary fields
     (timestamp, direction, the full
     :class:`~repro.hw.injector.InjectionEvent`) followed by the
     before/after symbol stream.  Each 9-bit Myrinet symbol is packed
     into a ``u16`` as ``(D/C << 8) | value`` so the data/control flag
     survives losslessly.
  2. **lifecycle event** — fixed binary fields (timestamp, correlation
     id, sequence number, experiment index) plus a JSON blob for the
     open-ended parts (stage, node, attrs).
  3. **experiment marker** — a JSON blob binding an experiment index to
     its name, seed, §4.4 classification, and telemetry span id.

Unknown record types are skipped by length (forward compatibility);
a version above :data:`VERSION` raises.  :func:`read_capture` round-trips
everything :class:`CaptureWriter` emits, byte for byte of meaning.
"""

from __future__ import annotations

import io
import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Dict, List, Optional, Sequence, Union

from repro.capture.provenance import LifecycleEvent
from repro.errors import ConfigurationError
from repro.myrinet.symbols import Symbol, control_symbol, data_symbol

__all__ = [
    "MAGIC",
    "VERSION",
    "CaptureWindow",
    "CaptureFileData",
    "CaptureWriter",
    "read_capture",
    "pack_symbol",
    "unpack_symbol",
]

MAGIC = b"RCAP\x01\n"
VERSION = 1

RECORD_CAPTURE = 1
RECORD_EVENT = 2
RECORD_EXPERIMENT = 3

_HEADER = struct.Struct("<HI")  # version, meta length
_RECORD = struct.Struct("<BI")  # record type, body length
#: experiment_index, time_ps, direction, forced, lanes_rewritten,
#: lanes_unreachable, segment_index, window_before, window_after,
#: ctl_before, ctl_after, n_before, n_after
_CAPTURE_FIXED = struct.Struct("<IQBBBBQIIBBHH")
#: time_ps, corr_id (-1 = none), seq, experiment_index, json length
_EVENT_FIXED = struct.Struct("<QqIII")


def pack_symbol(symbol: Symbol) -> int:
    """Pack one 9-bit symbol into a u16: ``(D/C << 8) | value``."""
    return ((1 << 8) if symbol.is_data else 0) | symbol.value


def unpack_symbol(packed: int) -> Symbol:
    """Inverse of :func:`pack_symbol` (interned symbols)."""
    value = packed & 0xFF
    if packed & 0x100:
        return data_symbol(value)
    return control_symbol(value)


@dataclass
class CaptureWindow:
    """A decoded type-1 record: one SDRAM capture window."""

    experiment_index: int
    time_ps: int
    direction: str
    segment_index: int
    window_before: int
    ctl_before: int
    window_after: int
    ctl_after: int
    lanes_rewritten: int
    lanes_unreachable: int
    forced: bool
    before: List[Symbol] = field(default_factory=list)
    after: List[Symbol] = field(default_factory=list)

    @property
    def symbols(self) -> List[Symbol]:
        """The full window in stream order."""
        return self.before + self.after

    @property
    def changed(self) -> bool:
        return (
            self.window_before != self.window_after
            or self.ctl_before != self.ctl_after
        )


@dataclass
class CaptureFileData:
    """Everything read back from one ``.rcap`` file."""

    meta: Dict[str, Any]
    experiments: List[Dict[str, Any]] = field(default_factory=list)
    captures: List[CaptureWindow] = field(default_factory=list)
    events: List[LifecycleEvent] = field(default_factory=list)
    unknown_records_skipped: int = 0

    def experiment_meta(self, index: int) -> Optional[Dict[str, Any]]:
        for meta in self.experiments:
            if meta.get("index") == index:
                return meta
        return None

    def captures_for(self, index: int) -> List[CaptureWindow]:
        return [c for c in self.captures if c.experiment_index == index]

    def events_for(self, index: int) -> List[LifecycleEvent]:
        return [e for e in self.events if e.experiment_index == index]


class CaptureWriter:
    """Streams capture records into an ``.rcap`` file (or buffer)."""

    def __init__(
        self,
        target: Union[str, Path, BinaryIO],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: BinaryIO = open(path, "wb")
            self._owns_stream = True
            self.path: Optional[Path] = path
        else:
            self._stream = target
            self._owns_stream = False
            self.path = None
        self.records_written = 0
        meta_blob = json.dumps(
            {"format": "rcap", **(meta or {})}, sort_keys=True
        ).encode("utf-8")
        self._stream.write(MAGIC)
        self._stream.write(_HEADER.pack(VERSION, len(meta_blob)))
        self._stream.write(meta_blob)

    # ------------------------------------------------------------------

    def _write_record(self, record_type: int, body: bytes) -> None:
        self._stream.write(_RECORD.pack(record_type, len(body)))
        self._stream.write(body)
        self.records_written += 1

    def write_capture(self, experiment_index: int, record: Any) -> None:
        """Serialize one :class:`~repro.core.monitor.CaptureRecord`."""
        event = record.event
        before: Sequence[Symbol] = record.before
        after: Sequence[Symbol] = record.after
        fixed = _CAPTURE_FIXED.pack(
            experiment_index,
            record.time_ps,
            ord(record.direction[0]) if record.direction else 0,
            1 if event.forced else 0,
            event.lanes_rewritten,
            event.lanes_unreachable,
            event.segment_index,
            event.window_before,
            event.window_after,
            event.ctl_before,
            event.ctl_after,
            len(before),
            len(after),
        )
        packed = struct.pack(
            f"<{len(before) + len(after)}H",
            *(pack_symbol(s) for s in list(before) + list(after)),
        )
        self._write_record(RECORD_CAPTURE, fixed + packed)

    def write_window(self, window: CaptureWindow) -> None:
        """Re-serialize a decoded :class:`CaptureWindow`.

        The inverse of the type-1 decoder: lets tools that read a
        capture file back (e.g. the sharded campaign engine's artifact
        merge, which rewrites per-shard experiment indices to
        campaign-global ones) re-emit windows losslessly.
        """
        fixed = _CAPTURE_FIXED.pack(
            window.experiment_index,
            window.time_ps,
            ord(window.direction[0]) if window.direction else 0,
            1 if window.forced else 0,
            window.lanes_rewritten,
            window.lanes_unreachable,
            window.segment_index,
            window.window_before,
            window.window_after,
            window.ctl_before,
            window.ctl_after,
            len(window.before),
            len(window.after),
        )
        packed = struct.pack(
            f"<{len(window.before) + len(window.after)}H",
            *(pack_symbol(s) for s in window.before + window.after),
        )
        self._write_record(RECORD_CAPTURE, fixed + packed)

    def write_event(self, event: LifecycleEvent) -> None:
        """Serialize one lifecycle event."""
        blob = json.dumps(
            {
                "stage": event.stage,
                "node": event.node,
                "direction": event.direction,
                "attrs": event.attrs,
            },
            sort_keys=True,
        ).encode("utf-8")
        fixed = _EVENT_FIXED.pack(
            event.time_ps,
            -1 if event.corr_id is None else event.corr_id,
            event.seq,
            event.experiment_index,
            len(blob),
        )
        self._write_record(RECORD_EVENT, fixed + blob)

    def write_experiment(self, meta: Dict[str, Any]) -> None:
        """Serialize one experiment marker."""
        blob = json.dumps(meta, sort_keys=True).encode("utf-8")
        self._write_record(RECORD_EXPERIMENT, blob)

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "CaptureWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def _read_exact(stream: BinaryIO, count: int, what: str) -> bytes:
    data = stream.read(count)
    if len(data) != count:
        raise ConfigurationError(
            f"truncated capture file: wanted {count} bytes of {what}, "
            f"got {len(data)}"
        )
    return data


def read_capture(source: Union[str, Path, bytes, BinaryIO]) -> CaptureFileData:
    """Read an ``.rcap`` file back; lossless inverse of the writer."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as stream:
            return read_capture(stream.read())
    if isinstance(source, bytes):
        stream: BinaryIO = io.BytesIO(source)
    else:
        stream = source

    magic = _read_exact(stream, len(MAGIC), "magic")
    if magic != MAGIC:
        raise ConfigurationError(
            f"not a capture file (magic {magic!r} != {MAGIC!r})"
        )
    version, meta_len = _HEADER.unpack(
        _read_exact(stream, _HEADER.size, "header")
    )
    if version > VERSION:
        raise ConfigurationError(
            f"capture file version {version} is newer than supported "
            f"version {VERSION}"
        )
    meta = json.loads(_read_exact(stream, meta_len, "metadata"))
    data = CaptureFileData(meta=meta)

    while True:
        head = stream.read(_RECORD.size)
        if not head:
            break
        if len(head) != _RECORD.size:
            raise ConfigurationError("truncated capture file: partial record")
        record_type, body_len = _RECORD.unpack(head)
        body = _read_exact(stream, body_len, f"record type {record_type}")
        if record_type == RECORD_CAPTURE:
            data.captures.append(_decode_capture(body))
        elif record_type == RECORD_EVENT:
            data.events.append(_decode_event(body))
        elif record_type == RECORD_EXPERIMENT:
            data.experiments.append(json.loads(body))
        else:
            # Forward compatibility: skip by length.
            data.unknown_records_skipped += 1
    return data


def _decode_capture(body: bytes) -> CaptureWindow:
    (
        experiment_index,
        time_ps,
        direction_byte,
        forced,
        lanes_rewritten,
        lanes_unreachable,
        segment_index,
        window_before,
        window_after,
        ctl_before,
        ctl_after,
        n_before,
        n_after,
    ) = _CAPTURE_FIXED.unpack_from(body)
    count = n_before + n_after
    packed = struct.unpack_from(f"<{count}H", body, _CAPTURE_FIXED.size)
    symbols = [unpack_symbol(p) for p in packed]
    return CaptureWindow(
        experiment_index=experiment_index,
        time_ps=time_ps,
        direction=chr(direction_byte) if direction_byte else "",
        segment_index=segment_index,
        window_before=window_before,
        ctl_before=ctl_before,
        window_after=window_after,
        ctl_after=ctl_after,
        lanes_rewritten=lanes_rewritten,
        lanes_unreachable=lanes_unreachable,
        forced=bool(forced),
        before=symbols[:n_before],
        after=symbols[n_before:],
    )


def _decode_event(body: bytes) -> LifecycleEvent:
    time_ps, corr_id, seq, experiment_index, blob_len = _EVENT_FIXED.unpack_from(
        body
    )
    blob = json.loads(body[_EVENT_FIXED.size:_EVENT_FIXED.size + blob_len])
    return LifecycleEvent(
        time_ps=time_ps,
        stage=blob["stage"],
        node=blob["node"],
        direction=blob.get("direction", ""),
        corr_id=None if corr_id < 0 else corr_id,
        seq=seq,
        experiment_index=experiment_index,
        attrs=dict(blob.get("attrs", {})),
    )
