"""Global capture switchboard.

Exactly like :mod:`repro.telemetry.state`, the flight recorder must be
*disabled free*: every provenance hook in the hot layers (host transmit,
switch forwarding, device transit, injector firing) guards its recording
call with a single attribute read on the module-level :data:`CAPTURE`
singleton.  With no :class:`~repro.capture.session.CaptureSession`
active, ``CAPTURE.active`` is ``False`` and the instrumented code takes
one predictable branch and does nothing else — no allocation, no dict
lookup, no id assignment.  The capture determinism tests pin this down
against the same pre-telemetry golden kernel digests the telemetry
subsystem is held to.

This module imports nothing from the simulation stack so any layer may
import it without cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.capture.provenance import FlightRecorder

__all__ = ["CaptureState", "CAPTURE", "capture_active"]


class CaptureState:
    """The process-wide capture toggle plus its live flight recorder.

    ``__slots__`` keeps the ``active`` check a straight slot load — the
    only cost instrumented code pays when capture is off.
    """

    __slots__ = ("active", "recorder")

    def __init__(self) -> None:
        self.active: bool = False
        self.recorder: Optional["FlightRecorder"] = None

    def activate(self, recorder: "FlightRecorder") -> None:
        """Install the live recorder and flip the hot-path switch on."""
        self.recorder = recorder
        self.active = True

    def deactivate(self) -> None:
        """Flip the switch off and drop the recorder."""
        self.active = False
        self.recorder = None


#: The singleton every provenance hook reads.
CAPTURE = CaptureState()


def capture_active() -> bool:
    """True while a capture session is running."""
    return CAPTURE.active
