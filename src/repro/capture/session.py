"""Capture session lifecycle and the ``.rcap`` run artifact.

A :class:`CaptureSession` mirrors
:class:`repro.telemetry.session.TelemetrySession`: it owns one
:class:`~repro.capture.provenance.FlightRecorder`, flips the global
:data:`~repro.capture.state.CAPTURE` switch for its duration, and — when
given an output directory — drops one binary artifact on exit:

* ``capture.rcap`` — experiment markers, SDRAM capture windows, and the
  lifecycle event log, in the versioned format of
  :mod:`repro.capture.format`.

When the campaign also runs under a telemetry session pointed at the
same directory, the capture file lands beside ``metrics.json`` /
``spans.jsonl`` and every experiment marker carries the span id of its
``experiment`` span — the join key the decode pipeline uses.

Sessions nest safely (previous state restored on exit) and are
exception-safe (the artifact is still written when the wrapped campaign
raises).  Unlike the telemetry session this module never reads a wall
clock: simlint's SIM001 applies in full here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Union

from repro.capture.format import CaptureWriter
from repro.capture.provenance import (
    DEFAULT_KEY_LIMIT,
    DEFAULT_MAX_EVENTS,
    ExperimentCapture,
    FlightRecorder,
)
from repro.capture.state import CAPTURE
from repro.telemetry.spans import current_span_id

__all__ = ["CaptureSession", "capture_experiment", "CAPTURE_FILE_NAME"]

#: File name dropped into ``--capture-dir``.
CAPTURE_FILE_NAME = "capture.rcap"


class CaptureSession:
    """Enable packet provenance capture for a ``with`` block.

    ::

        with CaptureSession(out_dir="out", label="table4") as session:
            campaign.run()
        # out/capture.rcap now exists
    """

    def __init__(
        self,
        out_dir: Optional[Union[str, Path]] = None,
        label: str = "repro",
        max_events: int = DEFAULT_MAX_EVENTS,
        key_limit: int = DEFAULT_KEY_LIMIT,
    ) -> None:
        self.out_dir = None if out_dir is None else Path(out_dir)
        self.label = label
        self.recorder = FlightRecorder(
            max_events=max_events, key_limit=key_limit
        )
        self.path: Optional[Path] = None
        self._previous: Optional[tuple] = None

    # ------------------------------------------------------------------

    def __enter__(self) -> "CaptureSession":
        self._previous = (CAPTURE.active, CAPTURE.recorder)
        CAPTURE.activate(self.recorder)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._previous is not None:
            active, recorder = self._previous
            if active and recorder is not None:
                CAPTURE.activate(recorder)
            else:
                CAPTURE.deactivate()
            self._previous = None
        else:  # pragma: no cover - defensive
            CAPTURE.deactivate()
        if self.out_dir is not None:
            self.path = self.write(self.out_dir)
        return False

    # ------------------------------------------------------------------

    def meta(self) -> dict:
        """The capture-file header metadata."""
        recorder = self.recorder
        return {
            "label": self.label,
            "sim_epoch_ps": 0,
            "config": {
                "max_events": recorder.max_events,
            },
            "experiments": len(recorder.experiments),
            "events_retained": len(recorder.events),
            "events_dropped": recorder.events_dropped,
            "corr_ids_assigned": recorder.corr_ids_assigned,
        }

    def write(self, out_dir: Union[str, Path]) -> Path:
        """Serialize the recorder into ``<out_dir>/capture.rcap``."""
        target = Path(out_dir) / CAPTURE_FILE_NAME
        recorder = self.recorder
        with CaptureWriter(target, meta=self.meta()) as writer:
            for capture in recorder.experiments:
                writer.write_experiment(capture.meta())
                for record in capture.records:
                    writer.write_capture(capture.index, record)
            for event in recorder.events:
                writer.write_event(event)
        return target


def capture_experiment(
    testbed: Any,
    result: Any,
    seed: Optional[int] = None,
) -> Optional[ExperimentCapture]:
    """Close the current experiment scope on the active flight recorder.

    Called by :meth:`repro.nftape.experiment.Experiment.run` (after
    result collection, inside the ``experiment`` telemetry span) when
    :data:`~repro.capture.state.CAPTURE` is active.  Flushes the
    device's monitors, collects the SDRAM capture windows, classifies
    the result per §4.4, and records the telemetry span id so the
    offline decoder can join all three.
    """
    recorder = CAPTURE.recorder
    if recorder is None:  # pragma: no cover - defensive
        return None
    # Local import: nftape.experiment imports this module at load time,
    # and classify pulls in nftape.results — resolving it lazily keeps
    # the package import graph acyclic.
    from repro.nftape.classify import classify_result

    classification = classify_result(result)
    capture = ExperimentCapture(
        index=recorder.current_experiment_index,
        name=result.name,
        seed=seed,
        fault_class=classification.fault_class.value,
        evidence=list(classification.evidence),
        span_id=current_span_id(),
        injections=result.injections,
    )
    device = getattr(testbed, "device", None)
    if device is not None:
        for direction in ("R", "L"):
            device.monitor(direction).flush()
        capture.records = [record for _time, record in device.sdram.records]
        capture.sdram = dict(device.sdram.stats)
    recorder.finish_experiment(capture)
    return capture
