"""Offline decode + failure analysis of ``.rcap`` capture files.

This is the host-side half of the paper's §3.4 story: the device keeps
"the bytes surrounding the fault injection event" in SDRAM, and a later
pass turns those raw symbol windows back into *meaning*.  For each
capture window the analyzer

1. **reassembles frames** from the symbol stream exactly the way a host
   interface does (data symbols accumulate, GAP closes a frame,
   undecodable control symbols are counted — :mod:`repro.myrinet.frames`
   semantics, but offset-preserving so every byte can be pointed at);
2. **parses packets** — leading MSB-set bytes are the residual source
   route, then the 4-byte type field, payload, and trailing CRC-8, which
   is *recomputed* to show whether the injected corruption broke it;
3. **digs into data packets**: the 12-byte MAC address header, the
   IP-lite header, and the UDP datagram whose one's-complement checksum
   is re-verified — surfacing the paper's §4.3.4 result that 16-bit-swap
   corruptions sail through while others are caught;
4. **marks the injected symbols**: the post-corruption 4-lane window
   from the :class:`~repro.hw.injector.InjectionEvent` is located in the
   captured stream and each rewritten lane is resolved to an exact
   symbol offset (and, when it lands inside a frame, a byte offset in
   that frame);
5. **joins the verdict**: every window carries its experiment's
   §4.4 classification (via the experiment marker written by
   :class:`~repro.capture.session.CaptureSession`), its evidence list,
   and — when telemetry ran — the experiment's span id.

The result is a JSON-safe analysis tree plus a text/markdown report
rendered through :class:`repro.nftape.report.CampaignReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import CrcError, ProtocolError
from repro.hostsim.ip import HEADER_LEN as IP_HEADER_LEN
from repro.hostsim.ip import IpLiteHeader, PROTO_UDP
from repro.hostsim.udp import HEADER_LEN as UDP_HEADER_LEN
from repro.hostsim.checksum import verify_checksum
from repro.myrinet.crc8 import crc8
from repro.myrinet.packet import (
    PACKET_TYPE_DATA,
    PACKET_TYPE_MAPPING,
    TYPE_FIELD_LEN,
    MyrinetPacket,
    is_route_byte,
)
from repro.myrinet.symbols import (
    GAP,
    IDLE,
    Symbol,
    control_symbol,
    data_symbol,
    decode_control,
)
from repro.capture.format import CaptureFileData, CaptureWindow, read_capture
from repro.nftape.report import CampaignReport

__all__ = [
    "DecodedFrame",
    "InjectionMark",
    "WindowAnalysis",
    "ExperimentAnalysis",
    "CaptureAnalysis",
    "corruption_window_symbols",
    "reassemble_frames",
    "analyze_window",
    "analyze_capture",
]

#: Number of lanes in the injector's corruption window (32-bit window).
WINDOW_LANES = 4

_TYPE_NAMES = {
    PACKET_TYPE_DATA: "data",
    PACKET_TYPE_MAPPING: "mapping",
}

#: Data-packet address header (dest MAC + src MAC), as the interface lays
#: it out in :meth:`repro.myrinet.interface.HostInterface.send_to`.
DATA_HEADER_LEN = 12


# ----------------------------------------------------------------------
# frame reassembly (offset-preserving)
# ----------------------------------------------------------------------


@dataclass
class DecodedFrame:
    """One frame reassembled from a capture window's symbol stream."""

    #: Raw frame bytes (data-symbol values between GAPs).
    data: bytes
    #: Stream offset of each frame byte (parallel to ``data``).
    offsets: List[int] = field(default_factory=list)
    #: True when a terminating GAP was seen inside the window.
    complete: bool = False
    #: Residual route bytes at the head (leading MSB-set bytes).
    route_len: int = 0
    packet_type: Optional[int] = None
    crc_ok: Optional[bool] = None
    error: Optional[str] = None
    payload_len: int = 0
    #: Parsed UDP detail for data packets, when recognisable.
    udp: Optional[Dict[str, Any]] = None

    @property
    def start_offset(self) -> Optional[int]:
        return self.offsets[0] if self.offsets else None

    @property
    def end_offset(self) -> Optional[int]:
        return self.offsets[-1] if self.offsets else None

    @property
    def type_name(self) -> str:
        if self.packet_type is None:
            return "unparsed"
        return _TYPE_NAMES.get(self.packet_type, f"{self.packet_type:#06x}")

    def byte_index_of(self, stream_offset: int) -> Optional[int]:
        """Frame-byte index of a stream offset, or None if not in frame."""
        try:
            return self.offsets.index(stream_offset)
        except ValueError:
            return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bytes": len(self.data),
            "start_offset": self.start_offset,
            "end_offset": self.end_offset,
            "complete": self.complete,
            "route_len": self.route_len,
            "packet_type": self.packet_type,
            "type_name": self.type_name,
            "crc_ok": self.crc_ok,
            "error": self.error,
            "payload_len": self.payload_len,
            "udp": self.udp,
            "hex": self.data.hex(),
        }


def reassemble_frames(symbols: Sequence[Symbol]) -> List[DecodedFrame]:
    """Split a symbol stream into frames on GAP boundaries.

    Mirrors :class:`repro.myrinet.frames.FrameAssembler` (GAP closes a
    frame, IDLE/STOP/GO are transparent, undecodable controls dropped)
    but keeps the stream offset of every frame byte so injected symbols
    can be pointed at.  A trailing partial frame — the common case when
    the capture window ends mid-packet — is emitted with
    ``complete=False``.
    """
    frames: List[DecodedFrame] = []
    data: List[int] = []
    offsets: List[int] = []

    def close(complete: bool) -> None:
        if data:
            frames.append(
                DecodedFrame(
                    data=bytes(data), offsets=list(offsets), complete=complete
                )
            )
            data.clear()
            offsets.clear()

    for offset, symbol in enumerate(symbols):
        if symbol.is_data:
            data.append(symbol.value)
            offsets.append(offset)
            continue
        decoded = decode_control(symbol.value)
        if decoded is GAP:
            close(complete=True)
        elif decoded is IDLE or decoded is None:
            continue
        # STOP/GO: flow control, transparent to framing.
    close(complete=False)
    return frames


def _parse_frame(frame: DecodedFrame) -> None:
    """Fill in route/type/CRC/UDP detail for one reassembled frame."""
    raw = frame.data
    route_len = 0
    while route_len < len(raw) and is_route_byte(raw[route_len]):
        route_len += 1
    frame.route_len = route_len
    try:
        packet = MyrinetPacket.from_bytes(raw, route_len=route_len)
    except CrcError:
        frame.crc_ok = False
        frame.error = f"CRC-8 residue {crc8(raw):#04x}"
        type_end = route_len + TYPE_FIELD_LEN
        frame.packet_type = int.from_bytes(raw[route_len:type_end], "big")
        frame.payload_len = len(raw) - type_end - 1
        if frame.packet_type == PACKET_TYPE_DATA:
            frame.udp = _analyze_udp(raw[type_end:-1])
        return
    except ProtocolError as exc:
        frame.error = f"truncated: {exc}"
        return
    frame.crc_ok = True
    frame.packet_type = packet.packet_type
    frame.payload_len = len(packet.payload)
    if packet.packet_type == PACKET_TYPE_DATA:
        frame.udp = _analyze_udp(packet.payload)


def _analyze_udp(payload: bytes) -> Optional[Dict[str, Any]]:
    """Decode a data-packet payload down to the UDP checksum verdict."""
    if len(payload) < DATA_HEADER_LEN + IP_HEADER_LEN + UDP_HEADER_LEN:
        return None
    dest_mac = payload[:6].hex()
    src_mac = payload[6:12].hex()
    body = payload[DATA_HEADER_LEN:]
    try:
        ip = IpLiteHeader.from_bytes(body[:IP_HEADER_LEN])
    except ProtocolError as exc:
        return {"error": f"ip: {exc}", "dest_mac": dest_mac, "src_mac": src_mac}
    if ip.protocol != PROTO_UDP:
        return {
            "error": f"not UDP (protocol {ip.protocol})",
            "dest_mac": dest_mac,
            "src_mac": src_mac,
        }
    raw_udp = body[IP_HEADER_LEN:]
    if len(raw_udp) < UDP_HEADER_LEN:
        return {"error": "truncated UDP header",
                "dest_mac": dest_mac, "src_mac": src_mac}
    length = int.from_bytes(raw_udp[4:6], "big")
    checksum_ok = length == len(raw_udp) and verify_checksum(
        ip.pseudo_header(length) + raw_udp
    )
    return {
        "dest_mac": dest_mac,
        "src_mac": src_mac,
        "src_ip": str(ip.src),
        "dst_ip": str(ip.dst),
        "src_port": int.from_bytes(raw_udp[0:2], "big"),
        "dst_port": int.from_bytes(raw_udp[2:4], "big"),
        "udp_length": length,
        "checksum": int.from_bytes(raw_udp[6:8], "big"),
        "checksum_ok": checksum_ok,
        "payload_len": max(0, len(raw_udp) - UDP_HEADER_LEN),
    }


# ----------------------------------------------------------------------
# injected-symbol marking
# ----------------------------------------------------------------------


def corruption_window_symbols(window: int, ctl: int) -> List[Symbol]:
    """The injector's 4-lane window as symbols in *stream order*.

    Lane 0 holds the most recent symbol (the low byte of the 32-bit
    window), so stream order is lane 3, 2, 1, 0 — oldest first.
    """
    out: List[Symbol] = []
    for lane in range(WINDOW_LANES - 1, -1, -1):
        value = (window >> (8 * lane)) & 0xFF
        if (ctl >> lane) & 1:
            out.append(data_symbol(value))
        else:
            out.append(control_symbol(value))
    return out


@dataclass
class InjectionMark:
    """Where the injected corruption landed in the captured stream."""

    #: True when the post-corruption window was located in the stream.
    matched: bool = False
    #: Stream offset of lane 3 (stream-order start of the 4-lane window).
    window_offset: Optional[int] = None
    #: Stream offsets of the rewritten lanes (stream order).
    injected_offsets: List[int] = field(default_factory=list)
    #: Per-changed-lane detail: lane, before/after symbol reprs, offset.
    changes: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "matched": self.matched,
            "window_offset": self.window_offset,
            "injected_offsets": list(self.injected_offsets),
            "changes": [dict(c) for c in self.changes],
        }


def _find_subsequence(haystack: Sequence[Symbol],
                      needle: Sequence[Symbol]) -> Optional[int]:
    if not needle or len(needle) > len(haystack):
        return None
    first = needle[0]
    last = len(haystack) - len(needle)
    for start in range(last + 1):
        if haystack[start] is not first and haystack[start] != first:
            continue
        if all(haystack[start + k] == needle[k] for k in range(1, len(needle))):
            return start
    return None


def mark_injection(capture: CaptureWindow) -> InjectionMark:
    """Locate the injector's post-corruption window in a capture.

    The monitor observes the device *output*, and the FIFO pipeline is
    shorter than the post-trigger capture depth, so the rewritten
    symbols normally surface in ``capture.after``; the search prefers
    that region and falls back to the full stream (a forced trigger or
    an unreachable lane may leave nothing to find).
    """
    mark = InjectionMark()
    post = corruption_window_symbols(capture.window_after, capture.ctl_after)
    pre = corruption_window_symbols(capture.window_before, capture.ctl_before)

    base = len(capture.before)
    start = _find_subsequence(capture.after, post)
    if start is not None:
        mark.window_offset = base + start
    else:
        full = _find_subsequence(capture.symbols, post)
        if full is None:
            return mark
        mark.window_offset = full
    mark.matched = True

    for position in range(WINDOW_LANES):  # stream order: lane 3 .. lane 0
        lane = WINDOW_LANES - 1 - position
        if pre[position] == post[position]:
            continue
        offset = mark.window_offset + position
        mark.injected_offsets.append(offset)
        mark.changes.append(
            {
                "lane": lane,
                "offset": offset,
                "before": repr(pre[position]),
                "after": repr(post[position]),
            }
        )
    return mark


# ----------------------------------------------------------------------
# per-window / per-experiment analysis
# ----------------------------------------------------------------------


@dataclass
class WindowAnalysis:
    """Everything decoded from one SDRAM capture window."""

    capture: CaptureWindow
    frames: List[DecodedFrame] = field(default_factory=list)
    mark: InjectionMark = field(default_factory=InjectionMark)
    #: Frames whose byte span contains an injected offset.
    hit_frames: List[int] = field(default_factory=list)
    effect: str = ""

    def to_dict(self) -> Dict[str, Any]:
        c = self.capture
        return {
            "experiment_index": c.experiment_index,
            "time_ps": c.time_ps,
            "direction": c.direction,
            "segment_index": c.segment_index,
            "forced": c.forced,
            "changed": c.changed,
            "lanes_rewritten": c.lanes_rewritten,
            "lanes_unreachable": c.lanes_unreachable,
            "symbols": len(c.before) + len(c.after),
            "frames": [f.to_dict() for f in self.frames],
            "mark": self.mark.to_dict(),
            "hit_frames": list(self.hit_frames),
            "effect": self.effect,
        }


def analyze_window(capture: CaptureWindow) -> WindowAnalysis:
    """Decode one capture window: frames, CRC/UDP verdicts, injection mark."""
    analysis = WindowAnalysis(capture=capture)
    analysis.frames = reassemble_frames(capture.symbols)
    for frame in analysis.frames:
        _parse_frame(frame)
    analysis.mark = mark_injection(capture)

    for index, frame in enumerate(analysis.frames):
        span = set(frame.offsets)
        if any(off in span for off in analysis.mark.injected_offsets):
            analysis.hit_frames.append(index)
    analysis.effect = _describe_effect(analysis)
    return analysis


def _describe_effect(analysis: WindowAnalysis) -> str:
    """One-line summary of what the corruption did to the traffic."""
    c = analysis.capture
    if c.forced and not c.changed:
        return "forced trigger; stream unchanged"
    if not c.changed:
        return "trigger fired; no lane rewritten (unreachable or identity)"
    if not analysis.mark.matched:
        return "corruption window not found in captured stream"
    if not analysis.hit_frames:
        return "injected symbols fell between frames (framing/control hit)"
    parts: List[str] = []
    for index in analysis.hit_frames:
        frame = analysis.frames[index]
        if frame.error and frame.crc_ok is False:
            verdict = "CRC-8 broken"
        elif frame.error:
            verdict = frame.error
        elif frame.udp is not None and frame.udp.get("checksum_ok") is False:
            verdict = "CRC ok, UDP checksum broken"
        elif frame.udp is not None and frame.udp.get("checksum_ok"):
            verdict = "CRC ok, UDP checksum STILL VALID"
        else:
            verdict = "frame parses clean"
        parts.append(f"frame {index} ({frame.type_name}): {verdict}")
    return "; ".join(parts)


@dataclass
class ExperimentAnalysis:
    """One experiment's markers, windows, and lifecycle summary."""

    index: int
    meta: Dict[str, Any] = field(default_factory=dict)
    windows: List[WindowAnalysis] = field(default_factory=list)
    stage_counts: Dict[str, int] = field(default_factory=dict)
    events: int = 0

    @property
    def name(self) -> str:
        return str(self.meta.get("name", f"experiment-{self.index}"))

    @property
    def fault_class(self) -> str:
        return str(self.meta.get("fault_class", "unknown"))

    @property
    def span_id(self) -> Optional[int]:
        return self.meta.get("span_id")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "name": self.name,
            "fault_class": self.fault_class,
            "span_id": self.span_id,
            "meta": dict(self.meta),
            "events": self.events,
            "stage_counts": dict(self.stage_counts),
            "windows": [w.to_dict() for w in self.windows],
        }


@dataclass
class CaptureAnalysis:
    """The full decode of one capture file."""

    meta: Dict[str, Any]
    experiments: List[ExperimentAnalysis] = field(default_factory=list)
    total_windows: int = 0
    total_events: int = 0
    unknown_records_skipped: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "meta": dict(self.meta),
            "total_windows": self.total_windows,
            "total_events": self.total_events,
            "unknown_records_skipped": self.unknown_records_skipped,
            "experiments": [e.to_dict() for e in self.experiments],
        }

    # ------------------------------------------------------------------

    def report(self, title: Optional[str] = None) -> CampaignReport:
        """Render the analysis as a text/markdown campaign report."""
        label = self.meta.get("label", "capture")
        report = CampaignReport(title or f"Failure analysis: {label}")
        report.add_note(
            f"{len(self.experiments)} experiment(s), "
            f"{self.total_windows} capture window(s), "
            f"{self.total_events} lifecycle event(s)."
        )
        for experiment in self.experiments:
            lines = [
                f"[{experiment.index}] {experiment.name} "
                f"-> {experiment.fault_class}"
            ]
            if experiment.span_id is not None:
                lines.append(f"  span_id: {experiment.span_id}")
            evidence = experiment.meta.get("evidence") or []
            if evidence:
                lines.append("  evidence: " + ", ".join(evidence))
            if experiment.stage_counts:
                stages = ", ".join(
                    f"{stage}={count}"
                    for stage, count in sorted(experiment.stage_counts.items())
                )
                lines.append(f"  lifecycle: {stages}")
            for number, window in enumerate(experiment.windows):
                c = window.capture
                lines.append(
                    f"  window {number} @ {c.time_ps} ps "
                    f"dir={c.direction or '?'} seg={c.segment_index} "
                    f"lanes={c.lanes_rewritten}: {window.effect}"
                )
                for change in window.mark.changes:
                    lines.append(
                        f"    lane {change['lane']} @ offset "
                        f"{change['offset']}: {change['before']} -> "
                        f"{change['after']}"
                    )
            if not experiment.windows:
                lines.append("  (no capture windows)")
            report.add_note("\n".join(lines))
        return report


def analyze_capture(
    source: Union[str, Path, bytes, CaptureFileData],
) -> CaptureAnalysis:
    """Decode a capture file (or pre-read data) into a full analysis."""
    if isinstance(source, CaptureFileData):
        data = source
    else:
        data = read_capture(source)

    analysis = CaptureAnalysis(
        meta=data.meta,
        total_windows=len(data.captures),
        total_events=len(data.events),
        unknown_records_skipped=data.unknown_records_skipped,
    )
    indices = sorted(
        {m.get("index", 0) for m in data.experiments}
        | {c.experiment_index for c in data.captures}
        | {e.experiment_index for e in data.events}
    )
    for index in indices:
        experiment = ExperimentAnalysis(
            index=index, meta=data.experiment_meta(index) or {}
        )
        for capture in data.captures_for(index):
            experiment.windows.append(analyze_window(capture))
        for event in data.events_for(index):
            experiment.events += 1
            experiment.stage_counts[event.stage] = (
                experiment.stage_counts.get(event.stage, 0) + 1
            )
        analysis.experiments.append(experiment)
    return analysis
