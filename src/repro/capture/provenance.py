"""Packet provenance: correlation ids and the lifecycle flight recorder.

The paper's device stores "the bytes surrounding the fault injection
event" (§3.2) — but a byte window alone does not say *whose* bytes they
were.  The flight recorder threads a monotonically assigned correlation
id through the packet lifecycle:

* **host send** — assigned when a packet enters a host interface's
  transmit queue; the packet's route-invariant content (type field +
  payload) is fingerprinted so the same packet can be recognised at the
  far end even though switches strip route bytes and recompute the CRC;
* **switch hop** — each forwarded frame on each switch port;
* **device transit** — each burst through the fault injector;
* **injector firing** — every trigger event, joined later to its SDRAM
  capture window by the decode pipeline;
* **delivery / drop** — the receiving interface looks the fingerprint
  up again; corrupted packets no longer match and surface as
  provenance-less deliveries or drops, which is itself evidence.

Events land in a bounded ring buffer (``deque(maxlen=…)`` — the same
O(1)-eviction discipline as :class:`repro.sim.trace.TraceRecorder`)
with per-(node, direction) sequence numbers, so ordering within one
stream survives even when old events have been evicted.

Everything here only *observes*: no function reads a clock, schedules
an event, or mutates simulation state.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = [
    "Stage",
    "LifecycleEvent",
    "ExperimentCapture",
    "FlightRecorder",
    "packet_key",
]

#: Default ring-buffer bound (events, not bytes).
DEFAULT_MAX_EVENTS = 65_536

#: Bound on the in-flight fingerprint -> correlation-id map.
DEFAULT_KEY_LIMIT = 8_192


class Stage:
    """Lifecycle stage names (string constants, stable across versions)."""

    HOST_SEND = "host_send"
    SWITCH_HOP = "switch_hop"
    DEVICE_TRANSIT = "device_transit"
    INJECT = "inject"
    CAPTURE_STORED = "capture_stored"
    CAPTURE_SHED = "capture_shed"
    DELIVER = "deliver"
    DROP = "drop"
    UDP_DELIVER = "udp_deliver"
    UDP_CHECKSUM_DROP = "udp_checksum_drop"

    ALL = (
        HOST_SEND,
        SWITCH_HOP,
        DEVICE_TRANSIT,
        INJECT,
        CAPTURE_STORED,
        CAPTURE_SHED,
        DELIVER,
        DROP,
        UDP_DELIVER,
        UDP_CHECKSUM_DROP,
    )


def packet_key(packet_type: int, payload: bytes) -> str:
    """Route-invariant fingerprint of a Myrinet packet.

    Route bytes are stripped and the CRC-8 recomputed at every switch
    hop, so only the type field and payload survive transit unchanged;
    a packet corrupted in flight deliberately stops matching.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(packet_type.to_bytes(4, "big"))
    digest.update(payload)
    return digest.hexdigest()


@dataclass
class LifecycleEvent:
    """One recorded step of one packet's (or burst's) life."""

    time_ps: int
    stage: str
    node: str
    direction: str = ""
    corr_id: Optional[int] = None
    seq: int = 0
    experiment_index: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time_ps": self.time_ps,
            "stage": self.stage,
            "node": self.node,
            "direction": self.direction,
            "corr_id": self.corr_id,
            "seq": self.seq,
            "experiment_index": self.experiment_index,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LifecycleEvent":
        return cls(
            time_ps=data["time_ps"],
            stage=data["stage"],
            node=data["node"],
            direction=data.get("direction", ""),
            corr_id=data.get("corr_id"),
            seq=data.get("seq", 0),
            experiment_index=data.get("experiment_index", 0),
            attrs=dict(data.get("attrs", {})),
        )


@dataclass
class ExperimentCapture:
    """Everything one experiment contributed to the capture session."""

    index: int
    name: str
    seed: Optional[int] = None
    fault_class: str = "none"
    evidence: List[str] = field(default_factory=list)
    span_id: Optional[int] = None
    injections: int = 0
    #: Completed SDRAM capture windows (``repro.core.monitor.CaptureRecord``).
    records: List[Any] = field(default_factory=list)
    sdram: Dict[str, int] = field(default_factory=dict)

    def meta(self) -> Dict[str, Any]:
        """JSON-safe experiment marker for the capture file."""
        return {
            "index": self.index,
            "name": self.name,
            "seed": self.seed,
            "fault_class": self.fault_class,
            "evidence": list(self.evidence),
            "span_id": self.span_id,
            "injections": self.injections,
            "captures": len(self.records),
            "sdram": dict(self.sdram),
        }


class FlightRecorder:
    """Bounded lifecycle event log with correlation-id bookkeeping."""

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        key_limit: int = DEFAULT_KEY_LIMIT,
    ) -> None:
        self.max_events = max(1, max_events)
        self.events: Deque[LifecycleEvent] = deque(maxlen=self.max_events)
        self.events_dropped = 0
        self.experiments: List[ExperimentCapture] = []
        self._next_corr = 0
        self._key_limit = max(1, key_limit)
        self._corr_by_key: "OrderedDict[str, int]" = OrderedDict()
        self._seq: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # correlation ids
    # ------------------------------------------------------------------

    def next_corr_id(self) -> int:
        """Assign the next monotone correlation id."""
        corr = self._next_corr
        self._next_corr += 1
        return corr

    def register_key(self, key: str, corr_id: int) -> None:
        """Remember the fingerprint of an in-flight packet (bounded)."""
        table = self._corr_by_key
        if key in table:
            # A retransmission of identical content: track the newest.
            table.pop(key)
        elif len(table) >= self._key_limit:
            table.popitem(last=False)
        table[key] = corr_id

    def lookup_key(self, key: str) -> Optional[int]:
        """Correlation id for a fingerprint, or None (corrupted/unknown)."""
        return self._corr_by_key.get(key)

    @property
    def corr_ids_assigned(self) -> int:
        return self._next_corr

    # ------------------------------------------------------------------
    # event recording
    # ------------------------------------------------------------------

    def record(
        self,
        time_ps: int,
        stage: str,
        node: str,
        direction: str = "",
        corr_id: Optional[int] = None,
        **attrs: Any,
    ) -> LifecycleEvent:
        """Append one lifecycle event; O(1), bounded, eviction-counted."""
        lane = (node, direction)
        seq = self._seq.get(lane, 0)
        self._seq[lane] = seq + 1
        if len(self.events) >= self.max_events:
            self.events_dropped += 1
        event = LifecycleEvent(
            time_ps=time_ps,
            stage=stage,
            node=node,
            direction=direction,
            corr_id=corr_id,
            seq=seq,
            experiment_index=len(self.experiments),
            attrs=attrs,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # experiment scoping
    # ------------------------------------------------------------------

    @property
    def current_experiment_index(self) -> int:
        """Index assigned to events recorded right now."""
        return len(self.experiments)

    def finish_experiment(self, capture: ExperimentCapture) -> None:
        """Close the current experiment scope; later events get index+1."""
        capture.index = len(self.experiments)
        self.experiments.append(capture)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def events_for(self, corr_id: int) -> List[LifecycleEvent]:
        """All retained events of one correlation id, in arrival order."""
        return [e for e in self.events if e.corr_id == corr_id]

    def stage_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.stage] = counts.get(event.stage, 0) + 1
        return counts
