"""Flight recorder, packet provenance, and failure-analysis decode.

The observability layer the paper's §3.2/§3.4 monitoring story implies:

* :mod:`repro.capture.state` — the global on/off switch the hot-path
  hooks read (one attribute load when capture is off);
* :mod:`repro.capture.provenance` — correlation ids, the lifecycle
  flight recorder, and route-invariant packet fingerprints;
* :mod:`repro.capture.instrument` — the duck-typed hooks instrumented
  code calls after checking ``CAPTURE.active``;
* :mod:`repro.capture.format` — the versioned ``.rcap`` binary capture
  file (writer + lossless reader);
* :mod:`repro.capture.session` — the ``with``-block session that owns a
  recorder and writes the artifact;
* :mod:`repro.capture.decode` — the offline analyzer that reassembles
  packets, marks injected symbols, and joins §4.4 verdicts.
"""

from repro.capture.format import (
    CaptureFileData,
    CaptureWriter,
    read_capture,
)
from repro.capture.provenance import (
    ExperimentCapture,
    FlightRecorder,
    LifecycleEvent,
    Stage,
    packet_key,
)
from repro.capture.session import (
    CAPTURE_FILE_NAME,
    CaptureSession,
    capture_experiment,
)
from repro.capture.state import CAPTURE, capture_active

#: Names resolved lazily from :mod:`repro.capture.decode`.  The decode
#: pipeline imports hostsim/nftape, which transitively import the hot
#: modules that import *us* — deferring it keeps the graph acyclic.
_DECODE_EXPORTS = ("CaptureAnalysis", "analyze_capture")


def __getattr__(name: str):
    if name in _DECODE_EXPORTS:
        from repro.capture import decode

        return getattr(decode, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CAPTURE",
    "CAPTURE_FILE_NAME",
    "CaptureAnalysis",
    "CaptureFileData",
    "CaptureSession",
    "CaptureWriter",
    "ExperimentCapture",
    "FlightRecorder",
    "LifecycleEvent",
    "Stage",
    "analyze_capture",
    "capture_active",
    "capture_experiment",
    "packet_key",
    "read_capture",
]
