"""Provenance hooks between the simulation stack and the flight recorder.

Exactly like :mod:`repro.telemetry.instrument`, every function here is
called from instrumented code *after* it checked ``CAPTURE.active`` —
one attribute read is the entire disabled cost.  The hooks are
duck-typed and import nothing from the simulation packages, so the hot
layers (``myrinet.interface``, ``myrinet.switch``, ``core.device``,
``hostsim.sockets``) can import this module without cycles.

Everything here only *observes*: no clock reads, no scheduling, no
mutation of simulation state.  The capture determinism test replays an
identical-seed campaign with capture on and off and requires
bit-identical kernel digests.

Correlation granularity is honest about the hardware:

* **hosts** see whole packets, so send/deliver/drop events carry a
  correlation id resolved through the route-invariant fingerprint;
* **switches** are cut-through — they never hold a whole packet — so
  hop events are frame-scoped (input/output port), not corr-scoped;
* the **device** operates on symbol bursts, so transit events count
  symbols, and injector firings carry the full
  :class:`~repro.hw.injector.InjectionEvent` detail.
"""

from __future__ import annotations

from typing import Any

from repro.capture.provenance import Stage, packet_key
from repro.capture.state import CAPTURE

__all__ = [
    "host_send",
    "switch_hop",
    "device_transit",
    "injection",
    "capture_window",
    "host_frame_drop",
    "packet_deliver",
    "packet_drop",
    "udp_deliver",
    "udp_checksum_drop",
]


# ---------------------------------------------------------------------------
# host transmit
# ---------------------------------------------------------------------------


def host_send(time_ps: int, interface_name: str, packet: Any) -> None:
    """One packet entering a host interface's transmit queue.

    Assigns the packet's correlation id and registers its
    route-invariant fingerprint so the receiving end can recognise it.
    """
    recorder = CAPTURE.recorder
    if recorder is None:  # pragma: no cover - defensive
        return
    corr = recorder.next_corr_id()
    recorder.register_key(packet_key(packet.packet_type, packet.payload), corr)
    recorder.record(
        time_ps,
        Stage.HOST_SEND,
        interface_name,
        "tx",
        corr,
        packet_type=packet.packet_type,
        wire_length=packet.wire_length,
        route_len=len(packet.route),
    )


# ---------------------------------------------------------------------------
# fabric transit
# ---------------------------------------------------------------------------


def switch_hop(
    time_ps: int, switch_name: str, in_port: int, out_port: int
) -> None:
    """One frame forwarded through a cut-through switch (frame-scoped)."""
    recorder = CAPTURE.recorder
    if recorder is None:  # pragma: no cover - defensive
        return
    recorder.record(
        time_ps,
        Stage.SWITCH_HOP,
        switch_name,
        f"p{in_port}->p{out_port}",
        None,
        in_port=in_port,
        out_port=out_port,
    )


def device_transit(
    time_ps: int,
    device_name: str,
    direction: str,
    symbols_in: int,
    symbols_out: int,
) -> None:
    """One burst through the fault-injector device (burst-scoped)."""
    recorder = CAPTURE.recorder
    if recorder is None:  # pragma: no cover - defensive
        return
    recorder.record(
        time_ps,
        Stage.DEVICE_TRANSIT,
        device_name,
        direction,
        None,
        symbols_in=symbols_in,
        symbols_out=symbols_out,
    )


def injection(
    time_ps: int, device_name: str, direction: str, event: Any
) -> None:
    """One injector trigger firing, with the full event detail."""
    recorder = CAPTURE.recorder
    if recorder is None:  # pragma: no cover - defensive
        return
    recorder.record(
        time_ps,
        Stage.INJECT,
        device_name,
        direction,
        None,
        segment_index=event.segment_index,
        forced=event.forced,
        lanes_rewritten=event.lanes_rewritten,
        lanes_unreachable=event.lanes_unreachable,
        window_before=event.window_before,
        window_after=event.window_after,
        ctl_before=event.ctl_before,
        ctl_after=event.ctl_after,
    )


def capture_window(record: Any, stored: bool) -> None:
    """One SDRAM capture window closing (stored or shed by the SDRAM)."""
    recorder = CAPTURE.recorder
    if recorder is None:  # pragma: no cover - defensive
        return
    recorder.record(
        record.time_ps,
        Stage.CAPTURE_STORED if stored else Stage.CAPTURE_SHED,
        "sdram",
        record.direction,
        None,
        size_bytes=record.size_bytes,
        symbols=len(record.before) + len(record.after),
    )


# ---------------------------------------------------------------------------
# host receive
# ---------------------------------------------------------------------------


def host_frame_drop(
    time_ps: int, interface_name: str, reason: str, frame_len: int
) -> None:
    """A frame dropped before parsing yielded a packet (CRC, consume...).

    No fingerprint is available — the frame did not parse — which is
    itself evidence: a corrupted packet surfaces as a provenance-less
    drop.
    """
    recorder = CAPTURE.recorder
    if recorder is None:  # pragma: no cover - defensive
        return
    recorder.record(
        time_ps,
        Stage.DROP,
        interface_name,
        "rx",
        None,
        reason=reason,
        frame_len=frame_len,
    )


def packet_deliver(time_ps: int, interface_name: str, packet: Any) -> None:
    """A parsed data packet accepted by the receiving interface."""
    recorder = CAPTURE.recorder
    if recorder is None:  # pragma: no cover - defensive
        return
    corr = recorder.lookup_key(
        packet_key(packet.packet_type, packet.payload)
    )
    recorder.record(
        time_ps,
        Stage.DELIVER,
        interface_name,
        "rx",
        corr,
        packet_type=packet.packet_type,
        matched=corr is not None,
    )


def packet_drop(
    time_ps: int, interface_name: str, reason: str, packet: Any
) -> None:
    """A parsed packet dropped by the receive dispatch (misaddressed...)."""
    recorder = CAPTURE.recorder
    if recorder is None:  # pragma: no cover - defensive
        return
    corr = recorder.lookup_key(
        packet_key(packet.packet_type, packet.payload)
    )
    recorder.record(
        time_ps,
        Stage.DROP,
        interface_name,
        "rx",
        corr,
        reason=reason,
        packet_type=packet.packet_type,
        matched=corr is not None,
    )


# ---------------------------------------------------------------------------
# UDP layer
# ---------------------------------------------------------------------------


def udp_deliver(time_ps: int, node: str, dst_port: int,
                payload_len: int) -> None:
    """A UDP datagram passed to its bound application handler."""
    recorder = CAPTURE.recorder
    if recorder is None:  # pragma: no cover - defensive
        return
    recorder.record(
        time_ps,
        Stage.UDP_DELIVER,
        node,
        "rx",
        None,
        dst_port=dst_port,
        payload_len=payload_len,
    )


def udp_checksum_drop(time_ps: int, node: str, payload_len: int) -> None:
    """A UDP datagram dropped by the one's-complement checksum."""
    recorder = CAPTURE.recorder
    if recorder is None:  # pragma: no cover - defensive
        return
    recorder.record(
        time_ps,
        Stage.UDP_CHECKSUM_DROP,
        node,
        "rx",
        None,
        payload_len=payload_len,
    )
