"""The golden digest corpus: pinned artifacts across commits.

The differential harness (:mod:`repro.fastpath.conformance`) proves the
two pipelines agree *with each other*; the golden corpus pins what they
agree *on*.  Each file in ``tests/golden/`` holds blake2b digests of
one scenario's delivered streams, statistics tables, telemetry snapshot
and ``.rcap`` artifact, computed from the scalar reference.  Any change
to simulation behaviour — intended or not — shows up as a digest
mismatch, component by component.

Workflow::

    python -m repro golden --check            # CI gate (scalar)
    python -m repro golden --check --pipeline fast
    python -m repro golden --regen            # after an intended change

``--regen`` always recomputes from the scalar reference; the fast
pipeline never defines the baseline, it only has to hit it.  The pytest
gate (``tests/test_golden_corpus.py``) checks under the suite's default
pipeline, so the CI ``--pipeline fast`` matrix leg anchors both
implementations to the same corpus.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.fastpath.conformance import RunArtifacts, _digest, run_scenario

__all__ = [
    "GOLDEN_SCENARIOS",
    "CheckReport",
    "artifact_digests",
    "check_corpus",
    "compute_digests",
    "read_digest_file",
    "regen_corpus",
]

#: The pinned corpus: the four §4.3 paper campaigns + three fuzz seeds.
GOLDEN_SCENARIOS: Tuple[str, ...] = (
    "sec431",
    "sec432",
    "sec433",
    "sec434",
    "fuzz_soup_1",
    "fuzz_soup_2",
    "fuzz_soup_3",
)

_COMPONENTS = ("streams", "stats", "tables", "telemetry", "rcap")

_HEADER = (
    "# repro golden digest — scenario {name}\n"
    "# blake2b over the scalar reference's delivered streams, stats,\n"
    "# telemetry and .rcap artifact; both pipelines must reproduce it.\n"
    "# regenerate after an *intended* behaviour change:\n"
    "#   python -m repro golden --regen\n"
)


def artifact_digests(run: RunArtifacts) -> Dict[str, str]:
    """Component digests of one run (localizes mismatches)."""
    digests = {
        "streams": _digest(
            json.dumps(run.stream_digests, sort_keys=True).encode()
        ),
        "stats": _digest(json.dumps(run.stats, sort_keys=True).encode()),
        "tables": _digest(run.tables.encode("utf-8")),
        "telemetry": _digest(
            json.dumps(run.telemetry, sort_keys=True).encode()
        ),
        "rcap": run.rcap_digest or "-",
    }
    digests["fingerprint"] = run.fingerprint()
    return digests


def compute_digests(name: str, pipeline: str = "scalar") -> Dict[str, str]:
    """Run one golden scenario and reduce it to its digest record."""
    return artifact_digests(run_scenario(name, pipeline))


def _digest_path(directory: Path, name: str) -> Path:
    return directory / f"{name}.digest"


def read_digest_file(path: Path) -> Dict[str, str]:
    """Parse one ``*.digest`` file into its key/value record."""
    record: Dict[str, str] = {}
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.partition(" ")
        record[key] = value.strip()
    return record


def _write_digest_file(path: Path, name: str,
                       digests: Dict[str, str]) -> None:
    lines = [_HEADER.format(name=name)]
    lines.append(f"fingerprint {digests['fingerprint']}")
    for component in _COMPONENTS:
        lines.append(f"{component} {digests[component]}")
    path.write_text("\n".join(lines) + "\n")


def _select(only: Optional[str]) -> Tuple[str, ...]:
    if only is None:
        return GOLDEN_SCENARIOS
    if only not in GOLDEN_SCENARIOS:
        raise ConfigurationError(
            f"unknown golden scenario {only!r}; "
            f"choose from {', '.join(GOLDEN_SCENARIOS)}"
        )
    return (only,)


def regen_corpus(directory, only: Optional[str] = None) -> List[Path]:
    """Recompute the corpus from the scalar reference; returns paths."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in _select(only):
        digests = compute_digests(name, "scalar")
        path = _digest_path(root, name)
        _write_digest_file(path, name, digests)
        written.append(path)
    return written


@dataclass
class CheckEntry:
    """One scenario's verdict against the committed corpus."""

    name: str
    ok: bool
    detail: str


@dataclass
class CheckReport:
    """The corpus-wide verdict, renderable for CLI and CI logs."""

    pipeline: str
    entries: List[CheckEntry]

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    def render(self) -> str:
        lines = [f"golden corpus check (pipeline: {self.pipeline})"]
        for entry in self.entries:
            marker = "ok  " if entry.ok else "FAIL"
            lines.append(f"  {marker} {entry.name}  {entry.detail}")
        passed = sum(1 for e in self.entries if e.ok)
        lines.append(f"{passed}/{len(self.entries)} scenarios match")
        if not self.ok:
            lines.append(
                "mismatching components name the artifact that moved; "
                "regen only after confirming the change is intended "
                "(python -m repro golden --regen)"
            )
        return "\n".join(lines)


def check_corpus(
    directory,
    pipeline: Optional[str] = None,
    only: Optional[str] = None,
) -> CheckReport:
    """Recompute every digest under ``pipeline`` and diff the corpus."""
    root = Path(directory)
    pipeline = pipeline or "scalar"
    entries: List[CheckEntry] = []
    for name in _select(only):
        path = _digest_path(root, name)
        if not path.exists():
            entries.append(CheckEntry(
                name, False,
                f"missing {path} (run: python -m repro golden --regen)",
            ))
            continue
        expected = read_digest_file(path)
        actual = compute_digests(name, pipeline)
        if actual.get("fingerprint") == expected.get("fingerprint"):
            entries.append(CheckEntry(
                name, True, f"fingerprint {actual['fingerprint']}"
            ))
            continue
        moved = [
            component for component in _COMPONENTS
            if actual.get(component) != expected.get(component)
        ]
        entries.append(CheckEntry(
            name, False, f"components moved: {', '.join(moved) or '?'}"
        ))
    return CheckReport(pipeline=pipeline, entries=entries)
