"""repro.fastpath — batched symbol fast path for the device pipeline.

The paper's FPGA forwards pass-through traffic at wire speed and only
ever *inspects* most symbols: the two-phase FIFO pipeline moves symbols
along, the compare unit fires rarely, and the injector touches the
stream only inside a narrow window around a match (§3.3, §3.5).  The
scalar simulator pays full per-symbol event-kernel cost for every one of
those symbols, which makes the scalar pipeline the dominant wall-clock
term of every benchmark.

This package adds the batched equivalent: whole-burst value/flag planes
(:mod:`repro.fastpath.buffer`), a compare-mask prefilter that scans
those planes with C-level ``bytes`` primitives
(:mod:`repro.fastpath.prefilter`), and a per-direction engine
(:mod:`repro.fastpath.engine`) that bulk-accounts pass-through stretches
and falls back to the *existing* scalar ``hw`` path inside a guard
window around trigger matches, armed injections, pending forced
injections and non-empty FIFOs.  The scalar path remains the reference
implementation; the fast path must be symbol-exact against it — proven
by the differential harness in ``tests/differential`` and the golden
corpus under ``tests/golden``.

Pipeline selection lives in :mod:`repro.fastpath.state`:
``Device(pipeline="fast"|"scalar")``, ``set_default_pipeline()``, the
``REPRO_PIPELINE`` environment variable and the CLI ``--pipeline`` flag.
The default stays ``scalar``.
"""

from repro.fastpath.buffer import SymbolBuffer
from repro.fastpath.engine import FastPathEngine
from repro.fastpath.prefilter import CompiledMatcher, compile_matcher
from repro.fastpath.state import (
    PIPELINES,
    default_pipeline,
    pipeline_override,
    resolve_pipeline,
    set_default_pipeline,
)

__all__ = [
    "CompiledMatcher",
    "FastPathEngine",
    "PIPELINES",
    "SymbolBuffer",
    "compile_matcher",
    "default_pipeline",
    "pipeline_override",
    "resolve_pipeline",
    "set_default_pipeline",
]
