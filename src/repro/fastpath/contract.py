"""Declarative scalar↔fast effect contracts (checked by simflow FLOW3xx).

PR 5's two scalar-path bugs — the fused-loop FIFO watermark off-by-one
and the burst-scoped CRC dirty flag — were both *effect divergences*:
one loop updated state the other didn't, or with a different argument.
The conformance harness catches such divergences dynamically on sampled
workloads; these contracts let ``repro.cli lint --flow`` catch them
statically, on every burst shape, before a test ever runs.

Each :class:`EffectContract` names a scalar reference function set and
the fast-path function set that must mirror it, then declares the
*legitimate* differences:

``covered_by``
    scalar effect -> fast effects that account for it in bulk
    (``fifo.push`` is covered by ``fifo.ram.writes`` +
    ``fifo.note_occupancy``);
``fallback`` / ``fallback_calls``
    scalar effects that only occur on paths the fast side *delegates*
    back to the scalar code — legitimate iff one of the witness calls
    (``call:process_burst``) appears on the fast side;
``allow_scalar_only`` / ``allow_fast_only``
    explicitly waived effects, each with a recorded justification;
``signatures``
    effects whose call argument must match a canonical normalised form
    on **both** sides — this is what would have caught the watermark
    bug: the pre-fix ``min(count, depth)`` fails against the canonical
    ``min(count, depth + 1)``.

The contracts are *data*; :class:`repro.analysis.flow.effects.
FastpathEffectContractRule` interprets them against the parsed tree.
Adding a new scalar feature without its bulk accounting now fails
``lint --flow`` (FLOW301) instead of waiting for a conformance diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Tuple

__all__ = ["FunctionRef", "EffectContract", "CONTRACTS"]


@dataclass(frozen=True)
class FunctionRef:
    """A function pinned by module + qualified name."""

    module: str
    qualname: str


@dataclass(frozen=True)
class EffectContract:
    """One scalar/fast pairing and its declared equivalences."""

    name: str
    scalar: Tuple[FunctionRef, ...]
    fast: Tuple[FunctionRef, ...]
    #: scalar effect -> fast effects any of which accounts for it.
    covered_by: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Scalar effects performed only via delegation to scalar code.
    fallback: FrozenSet[str] = frozenset()
    #: ``call:*`` witnesses that prove the delegation path exists.
    fallback_calls: FrozenSet[str] = frozenset()
    #: effect -> justification for a scalar-only effect.
    allow_scalar_only: Mapping[str, str] = field(default_factory=dict)
    #: effect -> justification for a fast-only effect.
    allow_fast_only: Mapping[str, str] = field(default_factory=dict)
    #: effect -> canonical normalised first-argument expression.
    signatures: Mapping[str, str] = field(default_factory=dict)
    #: Textual (word-boundary) renames applied before signature compare.
    scalar_renames: Mapping[str, str] = field(default_factory=dict)
    fast_renames: Mapping[str, str] = field(default_factory=dict)
    #: Dotted prefixes stripped from effect paths (engine-side effects
    #: live under ``injector.``; stripping makes the sides comparable).
    scalar_strip: Tuple[str, ...] = ()
    fast_strip: Tuple[str, ...] = ()


_INJECTOR = "repro.hw.injector"
_ENGINE = "repro.fastpath.engine"

#: The canonical FIFO watermark transient: the per-step path pushes
#: before popping, so occupancy peaks at ``depth + 1`` for any burst at
#: least that long.  Both PR-5 watermark bug sites violated exactly
#: this signature (they said ``min(count, depth)``).
WATERMARK_SIGNATURE = "min(count, depth + 1)"

CONTRACTS: Tuple[EffectContract, ...] = (
    # ------------------------------------------------------------------
    # 1. Per-step primitives vs. the fused burst loop.
    # ------------------------------------------------------------------
    EffectContract(
        name="injector-step-vs-fused",
        scalar=(
            FunctionRef(_INJECTOR, "FifoInjector._odd_cycle"),
            FunctionRef(_INJECTOR, "FifoInjector._even_cycle"),
            FunctionRef(_INJECTOR, "FifoInjector._apply_corruption"),
        ),
        fast=(
            FunctionRef(_INJECTOR, "FifoInjector._process_burst_fused"),
            FunctionRef(_INJECTOR, "FifoInjector._corrupt_pipeline_tail"),
        ),
        covered_by={
            "clock.tick": ("clock._cycles",),
            "fifo.push": ("fifo.ram.writes", "fifo.note_occupancy"),
            "fifo.pop": ("fifo.ram.reads",),
            "compare.shift": (
                "compare._window", "compare._ctl",
                "compare._filled", "compare.shifts",
            ),
            "compare.evaluate": (
                "compare.evaluations", "compare.matches",
            ),
            "fifo.rewrite_from_tail": ("fifo.in_place_rewrites",),
        },
        signatures={"fifo.note_occupancy": WATERMARK_SIGNATURE},
        fast_renames={
            "self.pipeline_depth": "depth",
            "len(burst)": "count",
        },
    ),
    # ------------------------------------------------------------------
    # 2. The fused reference vs. bulk accounting + the engine front end.
    # ------------------------------------------------------------------
    EffectContract(
        name="fused-vs-bulk-engine",
        scalar=(
            FunctionRef(_INJECTOR, "FifoInjector._process_burst_fused"),
            FunctionRef(_INJECTOR, "FifoInjector._corrupt_pipeline_tail"),
        ),
        fast=(
            FunctionRef(_INJECTOR, "FifoInjector.advance_passthrough"),
            FunctionRef(_ENGINE, "FastPathEngine.process_burst"),
            FunctionRef(_ENGINE, "FastPathEngine._scalar"),
        ),
        covered_by={
            "clock._cycles": ("clock.advance",),
            "compare._window": ("compare.bulk_shift",),
            "compare._ctl": ("compare.bulk_shift",),
            "compare._filled": ("compare.bulk_shift",),
            "compare.shifts": ("compare.bulk_shift",),
            "fifo.ram.writes": ("fifo.account_passthrough",),
            "fifo.ram.reads": ("fifo.account_passthrough",),
        },
        #: Trigger activity is *defined* to re-enter the scalar path —
        #: the engine only bulk-accounts proven-quiet stretches.
        fallback=frozenset({
            "compare.matches",
            "fifo.in_place_rewrites",
            "last_burst_rewrites.append",
            "injections",
            "forced_injections",
            "events.append",
            "_inject_now",
            "_once_fired",
        }),
        fallback_calls=frozenset({"call:process_burst"}),
        allow_fast_only={
            "last_burst_rewrites": (
                "the engine resets the positions list before "
                "delegating; appends happen in the scalar fallback"
            ),
            "bursts_fast": "engine throughput diagnostic, not device state",
            "bursts_scalar": "engine throughput diagnostic, not device state",
            "guard_splits": "engine throughput diagnostic, not device state",
            "symbols_bulk": "engine throughput diagnostic, not device state",
            "symbols_scalar": (
                "engine throughput diagnostic, not device state"
            ),
            "fallback_reasons[]": (
                "engine throughput diagnostic, not device state"
            ),
        },
        signatures={"fifo.note_occupancy": WATERMARK_SIGNATURE},
        fast_renames={
            "self.pipeline_depth": "depth",
            "inj.pipeline_depth": "depth",
            "n": "count",
        },
        fast_strip=("injector.",),
    ),
    # ------------------------------------------------------------------
    # 3. Statistics: scalar feed vs. plane-driven feed_buffer.
    # ------------------------------------------------------------------
    EffectContract(
        name="stats-feed-vs-buffer",
        scalar=(
            FunctionRef("repro.core.stats", "StatisticsGatherer.feed"),
        ),
        fast=(
            FunctionRef(
                "repro.core.stats", "StatisticsGatherer.feed_buffer"
            ),
        ),
        covered_by={
            "_assembler.push_burst": ("_assembler.push_buffer",),
        },
    ),
    # ------------------------------------------------------------------
    # 4. Monitor: scalar observe vs. bulk-window observe_buffer.
    # ------------------------------------------------------------------
    EffectContract(
        name="monitor-observe-vs-buffer",
        scalar=(
            FunctionRef("repro.core.monitor", "InjectionMonitor.observe"),
        ),
        fast=(
            FunctionRef(
                "repro.core.monitor", "InjectionMonitor.observe_buffer"
            ),
        ),
        covered_by={
            "_window.append": ("_window.extend",),
        },
        #: Open captures force the exact scalar loop (per-symbol close
        #: checks); the witness is the delegation to observe().
        fallback=frozenset({"_open"}),
        fallback_calls=frozenset({"call:observe"}),
    ),
)


def contract_by_name(name: str) -> EffectContract:
    """Lookup helper for tests and docs."""
    for contract in CONTRACTS:
        if contract.name == name:
            return contract
    raise KeyError(name)
