"""Pipeline-mode selection for the device data path.

Two implementations of the device data path exist:

``scalar``
    The original per-symbol path through ``hw.fifo`` / ``hw.compare`` /
    ``hw.injector``.  It is the reference implementation and the
    default.

``fast``
    The batched path (:mod:`repro.fastpath.engine`) that bulk-accounts
    pass-through stretches and re-enters the scalar path around guard
    windows.  Symbol-exact by construction and by the differential
    conformance suite.

Resolution order for a device that does not pass an explicit
``pipeline=`` argument: the process-wide default set by
:func:`set_default_pipeline`, which itself initialises from the
``REPRO_PIPELINE`` environment variable (so pooled campaign workers
inherit the parent's choice), falling back to ``scalar``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

#: The recognised pipeline implementations.
PIPELINES: Tuple[str, ...] = ("scalar", "fast")

_ENV_VAR = "REPRO_PIPELINE"

_default: Optional[str] = None


def _validate(name: str) -> str:
    if name not in PIPELINES:
        raise ValueError(
            f"unknown pipeline {name!r}; expected one of {PIPELINES}"
        )
    return name


def default_pipeline() -> str:
    """The process-wide default pipeline mode.

    Initialises lazily from ``REPRO_PIPELINE`` so that worker processes
    spawned by the pooled campaign executor inherit the parent's
    selection without any extra plumbing.
    """
    global _default
    if _default is None:
        env = os.environ.get(_ENV_VAR, "").strip().lower()
        _default = env if env in PIPELINES else "scalar"
    return _default


def set_default_pipeline(name: str) -> str:
    """Set the process-wide default pipeline mode.

    Also exports ``REPRO_PIPELINE`` so child processes (pooled campaign
    workers) resolve the same mode.  Returns the previous default.
    """
    global _default
    previous = default_pipeline()
    _default = _validate(name)
    os.environ[_ENV_VAR] = _default
    return previous


def resolve_pipeline(requested: Optional[str]) -> str:
    """Resolve an optional per-device request against the default."""
    if requested is None:
        return default_pipeline()
    return _validate(requested)


@contextmanager
def pipeline_override(name: str) -> Iterator[str]:
    """Temporarily change the default pipeline (tests, benchmarks)."""
    global _default
    previous = default_pipeline()
    previous_env = os.environ.get(_ENV_VAR)
    set_default_pipeline(name)
    try:
        yield _default  # type: ignore[misc]
    finally:
        _default = previous
        if previous_env is None:
            os.environ.pop(_ENV_VAR, None)
        else:
            os.environ[_ENV_VAR] = previous_env


def _reset_for_tests() -> None:
    """Forget the cached default (test helper; not public API)."""
    global _default
    _default = None
