"""The per-direction batched symbol-stream engine.

:class:`FastPathEngine` wraps one scalar :class:`FifoInjector` and
offers the same ``process_burst`` contract with bulk accounting for
pass-through stretches.  The invariant is **symbol exactness**: for any
burst sequence, the engine's outputs, the injector's counters, its
event list and its register state are byte-for-byte identical to what
the scalar path would have produced.  The scalar path stays the
reference — the engine *re-enters it* whenever anything interesting
might happen.

Guard conditions (each names a ``fallback_reasons`` bucket):

``fifo``
    The FIFO is not empty at burst start (someone drove ``step()``
    directly) — the scalar path preserves cycle-accurate FIFO state.
``forced``
    An ``inject now`` pulse is pending; its even-cycle timing is
    scalar-exact only.
``unfiltered``
    The armed compare config has no selective scan lane (see
    :mod:`repro.fastpath.prefilter`) — a prefilter would not narrow
    anything, so the whole burst runs scalar.
``match``
    The first trigger match sits too close to the burst start for a
    bulk prefix (``m < 5``); the whole burst runs scalar.

When the first match position ``m`` allows it, the burst is *split*: a
bulk-accounted prefix of ``g = m - 4`` symbols (strictly before any
window lane of the match) followed by the scalar path over the suffix.
The guard margin keeps every lane of the matched window inside the
scalar suffix, so corruption, reachability accounting and subsequent
matches are handled by the unmodified reference code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.fastpath.buffer import SymbolBuffer
from repro.fastpath.prefilter import CompiledMatcher
from repro.hw.injector import FifoInjector
from repro.myrinet.symbols import Symbol
from repro.telemetry import instrument as _telemetry
from repro.telemetry.state import STATE as _TELEMETRY_STATE

#: Symbols of slack kept ahead of a match so the whole compare window —
#: and the occupancy ramp feeding it — stays inside the scalar suffix.
GUARD_MARGIN = 4


class FastPathEngine:
    """Batched front end for one direction's scalar injector."""

    def __init__(self, injector: FifoInjector) -> None:
        self.injector = injector
        self.name = injector.name
        self._matcher: Optional[CompiledMatcher] = None

        # Always-on plain counters (cheap ints/dict; telemetry mirrors
        # them under fastpath.* when a session is active).
        self.bursts_fast = 0
        self.bursts_scalar = 0
        self.guard_splits = 0
        self.symbols_bulk = 0
        self.symbols_scalar = 0
        self.fallback_reasons: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def _scalar(
        self, burst: List[Symbol], reason: str
    ) -> List[Symbol]:
        """Delegate the whole burst to the scalar reference path."""
        n = len(burst)
        self.bursts_scalar += 1
        self.symbols_scalar += n
        self.fallback_reasons[reason] = (
            self.fallback_reasons.get(reason, 0) + 1
        )
        output = self.injector.process_burst(burst)
        if _TELEMETRY_STATE.active:
            _telemetry.fastpath_burst(self.name, "fallback", 0, n, reason)
        return output

    def _matcher_for(self, config) -> CompiledMatcher:
        matcher = self._matcher
        if matcher is None or matcher.config is not config:
            matcher = CompiledMatcher(config)
            self._matcher = matcher
        return matcher

    # ------------------------------------------------------------------

    def process_burst(
        self, burst: Union[SymbolBuffer, List[Symbol]]
    ) -> List[Symbol]:
        """Process one burst; same contract as the scalar method.

        Returns the delivered symbol stream; ``injector.last_burst_rewrites``
        holds burst-relative rewrite positions exactly as after a scalar
        ``process_burst`` call.
        """
        inj = self.injector
        n = len(burst)

        # Guards that force the exact scalar path for the whole burst.
        if not inj.fifo.empty:
            return self._scalar(burst, "fifo")
        if inj.inject_pending:
            return self._scalar(burst, "forced")

        if type(burst) is not SymbolBuffer:
            # Wrap once so downstream batched consumers (statistics,
            # monitor window) can use the value/flag planes too.
            burst = SymbolBuffer(burst)

        if not inj.armed:
            # Disarmed transparent pipe: identical accounting to the
            # scalar early-return branch (symbol counters only).
            inj.last_burst_rewrites = []
            inj.symbols_processed += n
            inj._segment_index += n
            self.bursts_fast += 1
            self.symbols_bulk += n
            if _TELEMETRY_STATE.active:
                _telemetry.fastpath_burst(self.name, "chunk", n, 0)
            return burst

        matcher = self._matcher_for(inj.config)
        if not matcher.scannable:
            return self._scalar(burst, "unfiltered")

        values, flags = burst.planes()
        window, ctl = inj.compare.snapshot()
        m = matcher.first_match(values, flags, window, ctl)

        if m is None:
            # Whole burst is pass-through under an armed trigger:
            # identical accounting to the fused loop with zero matches.
            inj.last_burst_rewrites = []
            inj.advance_passthrough(
                n,
                armed=True,
                tail_values=values[-GUARD_MARGIN:],
                tail_flags=flags[-GUARD_MARGIN:],
            )
            self.bursts_fast += 1
            self.symbols_bulk += n
            if _TELEMETRY_STATE.active:
                _telemetry.fastpath_burst(self.name, "chunk", n, 0)
            return burst

        g = m - GUARD_MARGIN
        if g <= 0:
            return self._scalar(burst, "match")

        # Split: bulk prefix [0, g), scalar guard window [g, n).
        lo = g - GUARD_MARGIN
        if lo < 0:
            lo = 0
        inj.advance_passthrough(
            g,
            armed=True,
            tail_values=values[lo:g],
            tail_flags=flags[lo:g],
        )
        suffix = list.__getitem__(burst, slice(g, None))
        out_suffix = inj.process_burst(suffix)
        if inj.last_burst_rewrites:
            # Rebase the suffix-relative rewrite positions to the burst.
            inj.last_burst_rewrites = [
                p + g for p in inj.last_burst_rewrites
            ]
        # The scalar suffix only saw n - g pushes; restore the burst's
        # true occupancy peak (the per-step path would have ramped to
        # min(n, depth + 1) across the whole burst).
        inj.fifo.note_occupancy(min(n, inj.pipeline_depth + 1))

        self.guard_splits += 1
        self.symbols_bulk += g
        self.symbols_scalar += n - g
        if _TELEMETRY_STATE.active:
            _telemetry.fastpath_burst(self.name, "split", g, n - g)

        output: List[Symbol] = list.__getitem__(burst, slice(0, g))
        output.extend(out_suffix)
        return output

    # ------------------------------------------------------------------

    @property
    def stats(self) -> dict:
        """Counter snapshot (diagnostics; not part of conformance)."""
        return {
            "bursts_fast": self.bursts_fast,
            "bursts_scalar": self.bursts_scalar,
            "guard_splits": self.guard_splits,
            "symbols_bulk": self.symbols_bulk,
            "symbols_scalar": self.symbols_scalar,
            "fallback_reasons": dict(self.fallback_reasons),
        }
