"""Differential conformance between the scalar and fast pipelines.

The contract of :mod:`repro.fastpath` is *symbol exactness*: for any
workload, the batched engine must deliver byte-for-byte the same symbol
streams, statistics tables, telemetry counters and ``.rcap`` capture
artifacts as the cycle-stepped scalar reference.  This module is the
executable form of that contract — a registry of named scenarios, each
of which can be run under either pipeline and reduced to a comparable
:class:`RunArtifacts` record.

Scenario classes:

* **paper** — the §4.3 nftape campaigns (throughput under flow-control
  faults, packet-type corruption, physical-address corruption, UDP
  checksum corruption), run through the full Figure 10 test bed at a
  reduced duration.
* **device** — the device driven directly over two links: fuzzed symbol
  soup (seeded, reproducible), pathological back-to-back triggers, and
  mid-campaign serial reconfiguration including ``PL`` pipeline
  switches (serial-command epochs).

Comparison rules:

* Delivered streams, statistics and ``.rcap`` bytes must be identical.
* Telemetry must be identical *except* the ``fastpath.*`` namespace
  (which exists only so operators can see what the engine did) and the
  wall-clock-derived series (``sim.events_per_s``, ``session.wall_s``)
  — simulation results never depend on the wall clock, but these two
  series report it by design.

The pytest harness in ``tests/differential/`` asserts every scenario;
``REPRO_DIFF_ROUNDS=N`` widens the fuzz sweep.  The golden corpus
(:mod:`repro.fastpath.golden`) pins a digest of the scalar reference's
artifacts so *both* pipelines are also anchored across commits.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.capture.session import CAPTURE_FILE_NAME, CaptureSession
from repro.core.device import FaultInjectorDevice
from repro.core.faults import control_symbol_swap, replace_bytes
from repro.core.monitor import MonitorConfig
from repro.core.session import InjectorSession
from repro.fastpath.state import pipeline_override
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.myrinet.link import Channel, Link
from repro.myrinet.symbols import (
    GAP,
    GO,
    IDLE,
    STOP,
    Symbol,
    control_symbol,
    data_symbol,
)
from repro.sim.kernel import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import MS
from repro.telemetry import TelemetrySession

__all__ = [
    "Mismatch",
    "RunArtifacts",
    "Scenario",
    "SCENARIOS",
    "compare_runs",
    "filtered_metrics",
    "fuzz_scenario",
    "iter_scenarios",
    "run_scenario",
    "verify_scenario",
]

#: Telemetry series that report the host wall clock by design; they are
#: the only non-``fastpath.*`` series allowed to differ between runs.
WALL_CLOCK_SERIES = frozenset({"sim.events_per_s", "session.wall_s"})

#: The namespace that exists only under the fast pipeline.
FASTPATH_PREFIX = "fastpath."


def _digest(*parts: bytes) -> str:
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part)
    return h.hexdigest()


def filtered_metrics(registry) -> Dict[str, Any]:
    """A registry snapshot with the allowed-to-differ series removed."""
    document = registry.to_dict()
    document["series"] = [
        series
        for series in document["series"]
        if not series["name"].startswith(FASTPATH_PREFIX)
        and series["name"] not in WALL_CLOCK_SERIES
    ]
    return document


# ----------------------------------------------------------------------
# artifacts and comparison
# ----------------------------------------------------------------------


@dataclass
class RunArtifacts:
    """Everything one scenario run produced, reduced to comparables."""

    scenario: str
    pipeline: str
    #: blake2b over each delivered symbol stream (device scenarios) or
    #: over the rendered result tables (paper scenarios).
    stream_digests: Dict[str, str] = field(default_factory=dict)
    #: Statistics tables / counters, JSON-comparable.
    stats: Dict[str, Any] = field(default_factory=dict)
    #: Rendered human-readable tables (paper scenarios).
    tables: str = ""
    #: Filtered telemetry snapshot (no fastpath.*, no wall series).
    telemetry: Dict[str, Any] = field(default_factory=dict)
    #: blake2b over the raw bytes of the ``.rcap`` artifact.
    rcap_digest: str = ""
    #: Fast-path engine counters (diagnostics only — never compared,
    #: never part of the fingerprint; used to assert the fast pipeline
    #: actually exercised its bulk path rather than always falling back).
    fastpath: Dict[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """One digest over every comparable field (golden corpus key)."""
        return _digest(
            json.dumps(
                {
                    "streams": self.stream_digests,
                    "stats": self.stats,
                    "tables": self.tables,
                    "telemetry": self.telemetry,
                    "rcap": self.rcap_digest,
                },
                sort_keys=True,
            ).encode("utf-8")
        )


@dataclass
class Mismatch:
    """One field where two runs of the same scenario diverged."""

    scenario: str
    fieldname: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"{self.scenario}: {self.fieldname}: {self.detail}"


def _diff_series(a: Dict[str, Any], b: Dict[str, Any]) -> str:
    """Name the telemetry series that differ (bounded, readable)."""
    index_a = {
        (s["name"], json.dumps(s.get("labels", {}), sort_keys=True)): s
        for s in a.get("series", [])
    }
    index_b = {
        (s["name"], json.dumps(s.get("labels", {}), sort_keys=True)): s
        for s in b.get("series", [])
    }
    names: List[str] = []
    for key in sorted(set(index_a) | set(index_b)):
        if index_a.get(key) != index_b.get(key):
            names.append(f"{key[0]}{key[1]}")
    head = ", ".join(names[:8])
    if len(names) > 8:
        head += f" (+{len(names) - 8} more)"
    return f"{len(names)} series differ: {head}"


def compare_runs(a: RunArtifacts, b: RunArtifacts) -> List[Mismatch]:
    """Every way two runs of one scenario disagree (empty = conformant)."""
    mismatches: List[Mismatch] = []
    if a.stream_digests != b.stream_digests:
        mismatches.append(Mismatch(
            a.scenario, "stream",
            f"{a.pipeline}={a.stream_digests} {b.pipeline}={b.stream_digests}",
        ))
    if a.stats != b.stats:
        keys = sorted(
            k for k in set(a.stats) | set(b.stats)
            if a.stats.get(k) != b.stats.get(k)
        )
        mismatches.append(Mismatch(
            a.scenario, "stats", f"differing keys: {', '.join(keys)}"
        ))
    if a.tables != b.tables:
        mismatches.append(Mismatch(
            a.scenario, "tables", "rendered result tables differ"
        ))
    if a.telemetry != b.telemetry:
        mismatches.append(Mismatch(
            a.scenario, "telemetry", _diff_series(a.telemetry, b.telemetry)
        ))
    if a.rcap_digest != b.rcap_digest:
        mismatches.append(Mismatch(
            a.scenario, "rcap",
            f"{a.pipeline}={a.rcap_digest} {b.pipeline}={b.rcap_digest}",
        ))
    return mismatches


# ----------------------------------------------------------------------
# device-level harness
# ----------------------------------------------------------------------


class _StreamTap:
    """Link endpoint that folds every delivered symbol into a digest."""

    def __init__(self) -> None:
        self._hash = hashlib.blake2b(digest_size=16)
        self.symbols = 0

    def on_burst(self, burst: List[Symbol], channel: Channel) -> None:
        self.symbols += len(burst)
        self._hash.update(b"".join([s.pair for s in burst]))

    def digest(self) -> str:
        return f"{self._hash.hexdigest()}:{self.symbols}"


class _DeviceHarness:
    """The device alone on a bench: two links, two taps, one session."""

    def __init__(self, pipeline: str, *, monitor: bool = False,
                 pipeline_depth: int = 8) -> None:
        self.sim = Simulator()
        config = (
            MonitorConfig(enabled=True, pre_symbols=64, post_symbols=64)
            if monitor else None
        )
        self.device = FaultInjectorDevice(
            self.sim,
            pipeline_depth=pipeline_depth,
            monitor_config=config,
            pipeline=pipeline,
        )
        left = Link(self.sim, "conf-left")
        right = Link(self.sim, "conf-right")
        self.device.attach_left(left, "b")
        self.device.attach_right(right, "a")
        # Left endpoint transmits rightward (direction R) and receives
        # the leftward (L) output; the right endpoint mirrors it.
        self.tap_l = _StreamTap()
        self.tap_r = _StreamTap()
        self.tx_r = left.attach_a(self.tap_l)
        self.tx_l = right.attach_b(self.tap_r)
        self.session = InjectorSession(self.sim, self.device)

    def send(self, direction: str, burst: List[Symbol], at_ps: int) -> None:
        channel = self.tx_r if direction == "R" else self.tx_l
        self.sim.schedule_at(at_ps, lambda: channel.send(burst), "conf-drive")

    def artifacts(self, scenario: str, pipeline: str) -> RunArtifacts:
        stats: Dict[str, Any] = dict(self.device.stats.as_dict())
        stats["monitor"] = {
            d: self.device.monitor_summary(d) for d in ("L", "R")
        }
        stats["bursts_forwarded"] = self.device.bursts_forwarded
        stats["decoder"] = {
            "ok": self.device.comm.decoder.commands_ok,
            "error": self.device.comm.decoder.commands_error,
        }
        stats["serial"] = {
            "sent": self.session.commands_sent,
            "errors": self.session.errors_seen,
            # PL exchanges are the one legitimately pipeline-dependent
            # serial traffic (the command text names the pipeline), so
            # they are excluded from the byte-compared transcript.
            "responses": [
                (command, response)
                for command, response in self.session.responses
                if not command.startswith("PL ")
            ],
        }
        return RunArtifacts(
            scenario=scenario,
            pipeline=pipeline,
            stream_digests={
                "L": self.tap_l.digest(),
                "R": self.tap_r.digest(),
            },
            stats=stats,
            fastpath={
                d: self.device.fastpath_engine(d).stats for d in ("L", "R")
            },
        )


def _with_sessions(
    name: str, pipeline: str, drive: Callable[[], _DeviceHarness]
) -> RunArtifacts:
    """Run a device scenario under telemetry + capture sessions."""
    with tempfile.TemporaryDirectory() as tmp:
        with TelemetrySession(label=f"conformance:{name}") as tele:
            with CaptureSession(out_dir=tmp, label=f"conformance:{name}"):
                harness = drive()
        rcap_digest = _digest((Path(tmp) / CAPTURE_FILE_NAME).read_bytes())
    artifacts = harness.artifacts(name, pipeline)
    artifacts.telemetry = filtered_metrics(tele.registry)
    artifacts.rcap_digest = rcap_digest
    return artifacts


def _soup_burst(rng: DeterministicRng, length: int) -> List[Symbol]:
    """A burst of random data/control symbol soup."""
    specials = (GAP, IDLE, STOP, GO)
    burst: List[Symbol] = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.85:
            burst.append(data_symbol(rng.randint(0, 255)))
        elif roll < 0.97:
            burst.append(specials[rng.randint(0, 3)])
        else:
            burst.append(control_symbol(rng.randint(0, 255)))
    return burst


def _fuzz_config(rng: DeterministicRng) -> InjectorConfig:
    """A randomized register file covering the guard-condition space."""
    kind = rng.randint(0, 3)
    if kind == 0:
        # Strong single-byte pattern: scannable, frequent-ish matches.
        match = bytes([rng.randint(0, 255)])
        replacement = bytes([rng.randint(0, 255)])
        return replace_bytes(
            match, replacement,
            match_mode=MatchMode.ON if rng.random() < 0.5 else MatchMode.ONCE,
            crc_fixup=rng.random() < 0.5,
        )
    if kind == 1:
        # Two-byte pattern: rarer matches, long bulk stretches.
        match = bytes([rng.randint(0, 255), rng.randint(0, 255)])
        replacement = bytes([rng.randint(0, 255), rng.randint(0, 255)])
        return replace_bytes(
            match, replacement,
            match_mode=MatchMode.ON,
            crc_fixup=rng.random() < 0.5,
        )
    if kind == 2:
        # Control-symbol swap: exercises the ctl-lane scan plan.
        symbols = (GAP, IDLE, STOP, GO)
        source = symbols[rng.randint(0, 3)]
        target = symbols[rng.randint(0, 3)]
        if target is source:
            target = symbols[(rng.randint(0, 3) + 1) % 4]
        return control_symbol_swap(source, target, MatchMode.ON)
    # Sparse mask: below the scan threshold, forcing the "unfiltered"
    # fallback — the fast path must still be exact when it never runs.
    return InjectorConfig(
        match_mode=MatchMode.ON,
        compare_data=rng.randint(0, 255),
        compare_mask=0x0000_0003,
        corrupt_mode=CorruptMode.TOGGLE,
        corrupt_data=0,
        corrupt_mask=0x0000_00FF,
    )


# ----------------------------------------------------------------------
# scenario registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A named, pipeline-parameterized conformance workload."""

    name: str
    title: str
    kind: str  # "paper" | "device"
    runner: Callable[[str], RunArtifacts]


SCENARIOS: Dict[str, Scenario] = {}


def _register(name: str, title: str, kind: str):
    def decorate(fn: Callable[[str], RunArtifacts]) -> Callable:
        SCENARIOS[name] = Scenario(name, title, kind, fn)
        return fn
    return decorate


def _run_fuzz(seed: int, pipeline: str, name: str) -> RunArtifacts:
    def drive() -> _DeviceHarness:
        rng = DeterministicRng(seed).fork("conformance")
        harness = _DeviceHarness(pipeline, monitor=seed % 2 == 0)
        device = harness.device
        device.configure("R", _fuzz_config(rng.fork("config-R")))
        device.configure("L", _fuzz_config(rng.fork("config-L")))

        traffic = rng.fork("traffic")
        t = 0
        for index in range(40):
            direction = "R" if traffic.random() < 0.6 else "L"
            burst = _soup_burst(traffic, traffic.randint(80, 400))
            harness.send(direction, burst, t)
            # Mix back-to-back and gapped bursts.
            t += traffic.randint(1, 3) * len(burst) * 12_500
            if index % 10 == 9:
                # Re-arm a once-mode trigger mid-stream, as campaigns do.
                harness.sim.schedule_at(
                    t,
                    lambda d=direction: device.injector(d).set_match_mode(
                        MatchMode.ONCE
                    ),
                    "conf-rearm",
                )
        # Read the register file back over the serial link at the end.
        harness.session.read_stats("R", lambda values: None)
        harness.session.read_stats("L", lambda values: None)
        harness.sim.run()
        return harness

    return _with_sessions(name, pipeline, drive)


def fuzz_scenario(seed: int) -> Scenario:
    """A fuzz-soup scenario for an arbitrary seed (REPRO_DIFF_ROUNDS)."""
    name = f"fuzz_soup_{seed}"
    return Scenario(
        name,
        f"seeded symbol soup, seed {seed}",
        "device",
        lambda pipeline: _run_fuzz(seed, pipeline, name),
    )


for _seed in (1, 2, 3):
    _sc = fuzz_scenario(_seed)
    SCENARIOS[_sc.name] = _sc


@_register("back_to_back", "pathological back-to-back triggers", "device")
def _run_back_to_back(pipeline: str) -> RunArtifacts:
    return _with_sessions("back_to_back", pipeline, lambda:
                          _drive_back_to_back(pipeline))


def _drive_back_to_back(pipeline: str) -> _DeviceHarness:
    harness = _DeviceHarness(pipeline, monitor=True)
    device = harness.device
    # Phase 1: every symbol matches (m=0 forever: permanent guard
    # fallback).  A full-byte lane-0 compare against a constant stream.
    device.configure("R", InjectorConfig(
        match_mode=MatchMode.ON,
        compare_data=0x0000_00AA,
        compare_mask=0x0000_00FF,
        compare_ctl=0x1,        # lane 0 must be a *data* symbol
        compare_ctl_mask=0x1,
        corrupt_mode=CorruptMode.TOGGLE,
        corrupt_data=0,
        corrupt_mask=0x0000_0001,
    ))
    wall = [data_symbol(0xAA)] * 256
    t = 0
    for _ in range(6):
        harness.send("R", list(wall), t)
        t += 256 * 12_500  # back-to-back: next burst queues immediately
    # Phase 2: matches every 8th symbol, first at position 7 — the
    # bulk prefix is non-empty, so every burst takes a guard split.
    comb = []
    for index in range(512):
        comb.append(data_symbol(0x55 if index % 8 == 7 else 0x11))
    harness.sim.schedule_at(t, lambda: device.configure("R", InjectorConfig(
        match_mode=MatchMode.ON,
        compare_data=0x0000_0055,
        compare_mask=0x0000_00FF,
        compare_ctl=0x1,        # lane 0 must be a *data* symbol
        compare_ctl_mask=0x1,
        corrupt_mode=CorruptMode.REPLACE,
        corrupt_data=0x0000_0077,
        corrupt_mask=0x0000_00FF,
    )), "conf-reconfig")
    for _ in range(4):
        harness.send("R", list(comb), t)
        t += 512 * 12_500
    harness.sim.run()
    return harness


@_register("mid_burst_reconfig",
           "serial reconfiguration and PL switches mid-campaign", "device")
def _run_mid_reconfig(pipeline: str) -> RunArtifacts:
    """Serial-command epochs: reconfigure and *switch pipelines* midway.

    The run starts under ``pipeline``, flips to the other implementation
    through the ``PL`` serial command while traffic is in flight, then
    flips back.  Both starting points must produce identical artifacts,
    which pins the epoch semantics (switches take effect between bursts
    over shared compare/FIFO state).
    """
    return _with_sessions("mid_burst_reconfig", pipeline, lambda:
                          _drive_mid_reconfig(pipeline))


def _drive_mid_reconfig(pipeline: str) -> _DeviceHarness:
    other = "fast" if pipeline == "scalar" else "scalar"
    harness = _DeviceHarness(pipeline)
    device = harness.device
    session = harness.session
    rng = DeterministicRng(99).fork("mid-reconfig")

    session.configure("R", replace_bytes(b"\x18\x18", b"\x19\x18",
                                         match_mode=MatchMode.ON,
                                         crc_fixup=False))
    traffic = rng.fork("traffic")
    t = 30 * MS  # let the serial upload (~10 ms) finish first
    for index in range(24):
        burst = _soup_burst(traffic, traffic.randint(120, 300))
        harness.send("R", burst, t)
        t += 2 * len(burst) * 12_500
        if index == 7:
            harness.sim.schedule_at(
                t, lambda: session.select_pipeline(other), "conf-pl"
            )
        if index == 11:
            harness.sim.schedule_at(
                t,
                lambda: session.configure(
                    "R",
                    control_symbol_swap(STOP, GO, MatchMode.ON),
                ),
                "conf-reconfig",
            )
            t += 15 * MS  # serial upload pacing
        if index == 17:
            harness.sim.schedule_at(
                t, lambda: session.select_pipeline(pipeline), "conf-pl"
            )
    harness.sim.run()
    return harness


# ----------------------------------------------------------------------
# paper campaigns (§4.3.1–§4.3.4)
# ----------------------------------------------------------------------


def _render_tables(result: Any) -> str:
    if isinstance(result, tuple):  # sec433 returns (table, artifacts)
        table, artifacts = result
        extra = json.dumps(artifacts, sort_keys=True, default=str)
        return table.render() + "\n" + extra
    return result.render()


def _paper_runner(name: str, entry: Callable[[], Any]):
    def run(pipeline: str) -> RunArtifacts:
        with pipeline_override(pipeline):
            with tempfile.TemporaryDirectory() as tmp:
                with TelemetrySession(label=f"conformance:{name}") as tele:
                    with CaptureSession(out_dir=tmp,
                                        label=f"conformance:{name}"):
                        result = entry()
                rcap = Path(tmp) / CAPTURE_FILE_NAME
                rcap_digest = _digest(rcap.read_bytes())
        tables = _render_tables(result)
        return RunArtifacts(
            scenario=name,
            pipeline=pipeline,
            stream_digests={"tables": _digest(tables.encode("utf-8"))},
            tables=tables,
            telemetry=filtered_metrics(tele.registry),
            rcap_digest=rcap_digest,
        )
    return run


def _sec431() -> Any:
    from repro.nftape.paper import sec431_throughput
    return sec431_throughput(duration_ps=3 * MS)


def _sec432() -> Any:
    from repro.nftape.paper import sec432_packet_types
    return sec432_packet_types()


def _sec433() -> Any:
    from repro.nftape.paper import sec433_addresses
    return sec433_addresses()


def _sec434() -> Any:
    from repro.nftape.paper import sec434_udp_checksum
    return sec434_udp_checksum()


for _name, _title, _entry in (
    ("sec431", "throughput under flow-control faults (§4.3.1)", _sec431),
    ("sec432", "packet type and source route corruption (§4.3.2)", _sec432),
    ("sec433", "physical address corruption (§4.3.3)", _sec433),
    ("sec434", "UDP checksum corruption (§4.3.4)", _sec434),
):
    SCENARIOS[_name] = Scenario(_name, _title, "paper",
                                _paper_runner(_name, _entry))


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def iter_scenarios(kind: Optional[str] = None) -> Iterable[Scenario]:
    """Registered scenarios, optionally filtered by kind."""
    for scenario in SCENARIOS.values():
        if kind is None or scenario.kind == kind:
            yield scenario


def run_scenario(name: str, pipeline: str) -> RunArtifacts:
    """Run one scenario (registered or ``fuzz_soup_<seed>``)."""
    scenario = SCENARIOS.get(name)
    if scenario is None and name.startswith("fuzz_soup_"):
        scenario = fuzz_scenario(int(name.rsplit("_", 1)[1]))
    if scenario is None:
        raise KeyError(f"unknown conformance scenario {name!r}")
    return scenario.runner(pipeline)


def verify_scenario(name: str) -> List[Mismatch]:
    """Run ``name`` under both pipelines and return every divergence."""
    scalar = run_scenario(name, "scalar")
    fast = run_scenario(name, "fast")
    return compare_runs(scalar, fast)
