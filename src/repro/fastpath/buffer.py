"""Whole-burst symbol buffers with cached value/flag planes.

A :class:`SymbolBuffer` *is* a list of :class:`~repro.myrinet.symbols.Symbol`
objects — every scalar consumer (the FIFO injector, the CRC fixup stage,
the statistics gatherer, slicing, iteration) works on it unchanged.  On
top of the list it lazily materialises two parallel byte planes:

``values``
    one byte per symbol: the 8-bit payload value;
``flags``
    one byte per symbol: 1 for data, 0 for control (the D/C bit).

Both planes are built in a single C-level pass by joining the symbols'
precomputed 2-byte ``pair`` slots and slicing the result — measured at
~31 ns/symbol, versus ~70 ns/symbol for a per-symbol generator
expression.  The planes are what the prefilter scans with ``bytes.find``
and what the batched statistics/frame paths consume with
``bytes.count`` / slice-extends.

Producers that already hold raw payload bytes (the host interface's
packet pump) should use :meth:`SymbolBuffer.from_frame`, which seeds the
planes directly without touching Symbol objects at all.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.myrinet.symbols import GAP, Symbol, data_symbols

_GAP_PAIR = GAP.pair


class SymbolBuffer(List[Symbol]):
    """A symbol list with lazily cached ``values``/``flags`` byte planes.

    The planes are invalidated implicitly: they are only trusted when
    their length still matches ``len(self)``.  In-place *same-length*
    mutation would defeat that guard, but no consumer in the tree
    mutates a burst in place — the injector and CRC stage both build
    fresh output lists.  The sanitizer-facing invariant is checked in
    the differential suite.
    """

    __slots__ = ("_values", "_flags")

    def __init__(self, symbols: Iterable[Symbol] = ()) -> None:
        super().__init__(symbols)
        self._values: Optional[bytes] = None
        self._flags: Optional[bytes] = None

    # -- plane construction -------------------------------------------------

    def _materialize(self) -> None:
        joined = b"".join([s.pair for s in self])
        self._flags = joined[0::2]
        self._values = joined[1::2]

    @property
    def values(self) -> bytes:
        """One byte per symbol: the 8-bit payload value."""
        if self._values is None or len(self._values) != len(self):
            self._materialize()
        assert self._values is not None
        return self._values

    @property
    def flags(self) -> bytes:
        """One byte per symbol: 1 = data, 0 = control."""
        if self._flags is None or len(self._flags) != len(self):
            self._materialize()
        assert self._flags is not None
        return self._flags

    def planes(self) -> Tuple[bytes, bytes]:
        """``(values, flags)`` as one call (single staleness check)."""
        if (
            self._values is None
            or self._flags is None
            or len(self._values) != len(self)
        ):
            self._materialize()
        assert self._values is not None and self._flags is not None
        return self._values, self._flags

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_frame(cls, payload: Sequence[int], gap: bool = True) -> "SymbolBuffer":
        """Buffer for a raw payload byte sequence (+ trailing GAP).

        Seeds the planes directly from the payload bytes, so producers
        that already hold ``bytes`` pay nothing per symbol beyond the
        interned-symbol list build they were already doing.
        """
        buf = cls(data_symbols(payload))
        raw = bytes(payload)
        if gap:
            buf.append(GAP)
            buf._values = raw + _GAP_PAIR[1:2]
            buf._flags = b"\x01" * len(raw) + b"\x00"
        else:
            buf._values = raw
            buf._flags = b"\x01" * len(raw)
        return buf

    @classmethod
    def wrap(cls, symbols: Sequence[Symbol]) -> "SymbolBuffer":
        """Wrap an existing symbol sequence (reuses planes if present)."""
        if type(symbols) is cls:
            return symbols
        buf = cls(symbols)
        return buf

    @classmethod
    def copy_from(cls, other: "SymbolBuffer") -> "SymbolBuffer":
        """A defensive copy that shares the (immutable) cached planes."""
        buf = cls(other)
        buf._values = other._values
        buf._flags = other._flags
        return buf
