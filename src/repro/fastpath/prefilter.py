"""Compare-mask prefilter: find the first trigger match in a buffer.

The compare unit asserts its trigger at stream position ``p`` (the index
of the symbol whose odd-cycle shift completes the window) when, for each
lane ``k`` in 0..3::

    (value[p-k] ^ cd_k) & cm_k == 0   and   (flag[p-k] ^ cc_k) & ccm_k == 0

where ``cd_k``/``cm_k`` are the lane's compare-data/compare-mask bytes
and ``cc_k``/``ccm_k`` its control-bit expectation.  Positions 0..2 of a
burst reach back into the *carried* window — the compare registers
persist across bursts (and start from the reset-state zeros; the
hardware "compares whatever the registers hold").

:class:`CompiledMatcher` compiles one :class:`InjectorConfig` into:

* per-lane byte tuples for exact verification;
* a *scan plan*: the most selective lane (compare-mask popcount >= 6,
  i.e. at most four accepted byte values) is scanned over the whole
  ``values`` plane with C-level ``bytes.find``; if no lane is selective
  on data but some lane requires a *control* symbol, the ``flags`` plane
  is scanned for 0-bytes instead (control symbols are rare in
  pass-through traffic).  A config with no selective lane is
  *unscannable* and the engine falls back to the scalar path.

``first_match`` is exact, not approximate: the scan produces a superset
of true match positions in ascending order and each candidate is
verified against all four lanes, so the returned position equals the
position at which the scalar compare unit would first assert its
trigger.  This is proven by the differential suite and the
``prefilter == scalar replay`` property test.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.hw.registers import SEGMENT_LANES, InjectorConfig

_MASK32 = 0xFFFF_FFFF
_MASK4 = 0xF

#: Minimum compare-mask popcount for a lane to be used as the scan lane
#: (>= 6 set bits => at most 2**(8-6) = 4 accepted byte values).
SCAN_POPCOUNT_THRESHOLD = 6


class CompiledMatcher:
    """A prefilter compiled from one injector configuration."""

    __slots__ = (
        "config",
        "cd",
        "cm",
        "cc",
        "ccm",
        "scannable",
        "_scan_lane",
        "_scan_plane",
        "_accepted",
        "_scan_flag",
    )

    def __init__(self, config: InjectorConfig) -> None:
        self.config = config
        #: Per-lane compare bytes; index = lane (0 = newest symbol).
        self.cd: Tuple[int, ...] = tuple(
            (config.compare_data >> (8 * k)) & 0xFF
            for k in range(SEGMENT_LANES)
        )
        self.cm: Tuple[int, ...] = tuple(
            (config.compare_mask >> (8 * k)) & 0xFF
            for k in range(SEGMENT_LANES)
        )
        self.cc: Tuple[int, ...] = tuple(
            (config.compare_ctl >> k) & 1 for k in range(SEGMENT_LANES)
        )
        self.ccm: Tuple[int, ...] = tuple(
            (config.compare_ctl_mask >> k) & 1 for k in range(SEGMENT_LANES)
        )
        self._compile_scan_plan()

    # -- compilation --------------------------------------------------------

    def _compile_scan_plan(self) -> None:
        best_lane = -1
        best_bits = -1
        for k in range(SEGMENT_LANES):
            bits = bin(self.cm[k]).count("1")
            if bits > best_bits:
                best_bits = bits
                best_lane = k
        if best_bits >= SCAN_POPCOUNT_THRESHOLD:
            self.scannable = True
            self._scan_lane = best_lane
            self._scan_plane = "values"
            mask = self.cm[best_lane]
            want = self.cd[best_lane] & mask
            free_bits = [b for b in range(8) if not (mask >> b) & 1]
            accepted: List[int] = []
            for combo in range(1 << len(free_bits)):
                value = want
                for i, bit in enumerate(free_bits):
                    if (combo >> i) & 1:
                        value |= 1 << bit
                accepted.append(value)
            self._accepted = tuple(sorted(accepted))
            # Fold in the lane's control-bit expectation when present so
            # the scan itself rejects wrong-kind symbols.
            self._scan_flag = (
                self.cc[best_lane] if self.ccm[best_lane] else None
            )
            return
        # No selective data lane; a lane demanding a *control* symbol is
        # still a usable scan axis (control symbols are rare in traffic).
        for k in range(SEGMENT_LANES):
            if self.ccm[k] and self.cc[k] == 0:
                self.scannable = True
                self._scan_lane = k
                self._scan_plane = "flags"
                self._accepted = (0,)
                self._scan_flag = None
                return
        self.scannable = False
        self._scan_lane = -1
        self._scan_plane = ""
        self._accepted = ()
        self._scan_flag = None

    # -- exact verification -------------------------------------------------

    def window_matches(self, window: int, ctl: int) -> bool:
        """Evaluate the compare on explicit window registers."""
        config = self.config
        return (
            ((window ^ config.compare_data) & config.compare_mask) == 0
            and ((ctl ^ config.compare_ctl) & config.compare_ctl_mask) == 0
        )

    def _verify(self, values: bytes, flags: bytes, p: int) -> bool:
        """Exact four-lane check for an in-burst position ``p >= 3``."""
        cd = self.cd
        cm = self.cm
        cc = self.cc
        ccm = self.ccm
        for k in range(SEGMENT_LANES):
            j = p - k
            if (values[j] ^ cd[k]) & cm[k]:
                return False
            if (flags[j] ^ cc[k]) & ccm[k]:
                return False
        return True

    # -- candidate scan -----------------------------------------------------

    def _candidates(
        self, values: bytes, flags: bytes, start: int
    ) -> Iterator[int]:
        """Candidate match positions ``>= start``, ascending.

        A superset of true matches: every position whose scan-lane symbol
        is acceptable.  ``start`` must be >= 3 so all four lanes are
        in-burst.
        """
        k = self._scan_lane
        plane = values if self._scan_plane == "values" else flags
        scan_flag = self._scan_flag
        n = len(values)
        lo = start - k
        if lo < 0:
            lo = 0
        accepted = self._accepted
        if len(accepted) == 1:
            b = accepted[0]
            find = plane.find
            i = find(b, lo)
            while i != -1:
                p = i + k
                if p >= n:
                    return
                if p >= start and (scan_flag is None or flags[i] == scan_flag):
                    yield p
                i = find(b, i + 1)
            return
        # Merge several per-byte find streams in ascending order.
        frontier: List[List[int]] = []
        for b in accepted:
            i = plane.find(b, lo)
            if i != -1:
                frontier.append([i, b])
        while frontier:
            frontier.sort()
            entry = frontier[0]
            i, b = entry
            p = i + k
            if p >= n:
                return  # the smallest hit is already past the end
            if p >= start and (scan_flag is None or flags[i] == scan_flag):
                yield p
            nxt = plane.find(b, i + 1)
            if nxt == -1:
                frontier.pop(0)
            else:
                entry[0] = nxt

    # -- public API ---------------------------------------------------------

    def first_match(
        self,
        values: bytes,
        flags: bytes,
        window: int,
        ctl: int,
        start: int = 0,
    ) -> Optional[int]:
        """First position ``>= start`` where the trigger would assert.

        ``window``/``ctl`` are the compare registers *before* the first
        symbol of the buffer shifts in — they cover matches whose window
        straddles the burst start (positions 0..2).  Returns ``None`` if
        no position in the buffer matches.
        """
        n = len(values)
        if n == 0:
            return None
        # Leading positions: explicit shift-and-test with the carried
        # registers (also correct while the window is still filling —
        # the hardware compares the reset-state zeros too).
        lead = 3 if n >= 3 else n
        for p in range(lead):
            window = ((window << 8) | values[p]) & _MASK32
            ctl = ((ctl << 1) | flags[p]) & _MASK4
            if p >= start and self.window_matches(window, ctl):
                return p
        scan_start = start if start > 3 else 3
        for p in self._candidates(values, flags, scan_start):
            if self._verify(values, flags, p):
                return p
        return None


def compile_matcher(config: InjectorConfig) -> CompiledMatcher:
    """Compile ``config`` into a prefilter."""
    return CompiledMatcher(config)
