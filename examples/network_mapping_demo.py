#!/usr/bin/env python
"""Network mapping and the Figure 11 controller-address conflict.

Shows the MCP mapping protocol at work (scouts, replies, route
distribution), then reproduces the paper's §4.3.3 experiment: the
injector corrupts a node's 48-bit physical address — in its mapping
replies — to match the *controller's* address.  The mapper sees what it
believes is another controller, the address-keyed routing tables are
damaged, and controller-bound traffic is misrouted to the impostor.

Run:  python examples/network_mapping_demo.py
"""

from repro.core.faults import replace_bytes
from repro.hostsim import HostStack, MessageSink
from repro.hw.registers import MatchMode
from repro.nftape import Testbed
from repro.nftape.experiment import TestbedOptions
from repro.sim.timebase import MS


def main() -> None:
    options = TestbedOptions(seed=3)
    testbed = Testbed(options)
    testbed.settle()
    mapper = testbed.network.mapper()
    print(f"mapper (controller): {mapper.name} "
          f"mcp={mapper.interface.mcp_address}\n")

    print("=== network map in the known good state (Fig. 11, before) ===")
    print(mapper.mcp.current_map.render())

    # Corrupt pc's address in its scout replies to the controller's.
    pc_mac = testbed.network.host("pc").interface.mac
    controller_mac = mapper.interface.mac
    fault = replace_bytes(
        pc_mac.to_bytes()[2:],          # the distinguishing low bytes
        controller_mac.to_bytes()[2:],
        match_mode=MatchMode.ON,
        crc_fixup=True,
    )
    testbed.device.configure("R", fault)
    testbed.sim.run_for(2 * options.map_interval_ps)

    print("\n=== network map after address corruption (Fig. 11, after) ===")
    damaged = mapper.mcp.current_map
    print(damaged.render())
    print(f"\nmapper detected controller conflicts: "
          f"{mapper.mcp.conflicts_detected}")

    # Demonstrate the routing damage: messages addressed to the
    # controller now land at the impostor and are dropped misaddressed.
    sparc1 = HostStack(testbed.sim, testbed.network.host("sparc1").interface)
    controller_stack = HostStack(testbed.sim, mapper.interface)
    sink = MessageSink(controller_stack, 6000)
    before = testbed.network.host("pc").interface.misaddressed_drops
    for _index in range(10):
        sparc1.send_udp(controller_mac, 6000, b"to the controller")
    testbed.sim.run_for(5 * MS)
    misrouted = (testbed.network.host("pc").interface.misaddressed_drops
                 - before)
    print(f"controller-bound messages delivered: {sink.received}/10")
    print(f"misrouted to the impostor (dropped): {misrouted}/10")

    # Recovery: disarm the injector; the next mapping round heals.
    from repro.hw.registers import MatchMode as MM
    testbed.device.injector("R").set_match_mode(MM.OFF)
    testbed.sim.run_for(2 * options.map_interval_ps)
    print("\n=== map after the fault is removed ===")
    print(mapper.mcp.current_map.render())
    print(f"known good state restored: "
          f"{testbed.mmon.all_nodes_in_network()}")


if __name__ == "__main__":
    main()
