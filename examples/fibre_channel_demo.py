#!/usr/bin/env python
"""The dual-media claim: the same injector core on Fibre Channel.

The board carries both MyriPHY and FCPHY transceiver pairs; "the
injection logic is general and not customized to any one network" (paper
§3.4, footnote 3).  Here the FCPHY interface logic (the
:class:`FcInjectorTap`) decodes the 8b/10b line code into the injector's
9-bit character alphabet, runs the identical FIFO-injector pipeline, and
re-encodes — corrupting an FC frame with the CRC-32 recomputed before
the EOF delimiter.

Run:  python examples/fibre_channel_demo.py
"""

from repro.core import FaultInjectorDevice
from repro.core.faults import replace_bytes
from repro.fc import (
    FcFrame,
    FcFrameHeader,
    FcInjectorTap,
    FcPort,
)
from repro.fc.encoding import Encoder8b10b
from repro.fc.node import connect_fc
from repro.hw.registers import MatchMode
from repro.sim import Simulator
from repro.sim.timebase import MS


def main() -> None:
    sim = Simulator()

    # Two FC ports with the injector tap spliced between them.
    device = FaultInjectorDevice(sim, medium="fibre-channel")
    tap = FcInjectorTap(sim, device)
    initiator = FcPort(sim, "initiator", 0x010101)
    target = FcPort(sim, "target", 0x020202)
    connect_fc(sim, initiator, target, tap=tap)

    received = []
    target.on_frame(lambda frame: received.append(frame))

    # Show the 8b/10b encoding the FCPHY performs.
    encoder = Encoder8b10b()
    k28_5 = encoder.encode(0xBC, True)
    print(f"K28.5 at RD-: {k28_5:010b}  (the comma character)\n")

    header = FcFrameHeader(d_id=0x020202, s_id=0x010101, type=0x08)

    # 1. Pass-through.
    initiator.send_frame(FcFrame(header=header,
                                 payload=b"READ capacity data block"))
    sim.run_for(1 * MS)
    print(f"pass-through payload : {received[-1].payload!r}")

    # 2. Corrupt with CRC-32 fix-up: delivered corrupted.
    device.configure("R", replace_bytes(b"data", b"DATA",
                                        match_mode=MatchMode.ONCE,
                                        crc_fixup=True))
    initiator.send_frame(FcFrame(header=header,
                                 payload=b"READ capacity data block"))
    sim.run_for(1 * MS)
    print(f"corrupted (CRC fixed): {received[-1].payload!r}")
    print(f"frames CRC-fixed by the tap: {tap.frames_crc_fixed}")

    # 3. Corrupt without fix-up: the CRC-32 catches it.
    device.configure("R", replace_bytes(b"data", b"DATA",
                                        match_mode=MatchMode.ONCE,
                                        crc_fixup=False))
    before = len(received)
    initiator.send_frame(FcFrame(header=header,
                                 payload=b"READ capacity data block"))
    sim.run_for(1 * MS)
    print(f"without fix-up: delivered={len(received) - before}, "
          f"CRC-32 errors at target={target.crc_errors}")

    print(f"\ntarget port statistics: {target.stats}")


if __name__ == "__main__":
    main()
