#!/usr/bin/env python
"""A miniature Table 4 campaign: corrupt Myrinet flow-control symbols.

Recreates three rows of the paper's control-symbol corruption campaign
(§4.3.1, Table 4): the network runs at full capacity while the in-path
injector, duty-cycled by the NFTAPE-style campaign runner, corrupts one
control symbol into another.  Losses come from buffer overflows (deleted
STOPs) and merged packets (corrupted GAPs); every observed fault is
passive (§4.4).

Run:  python examples/control_symbol_campaign.py        (~1 minute)
"""

from repro.core.faults import control_symbol_swap
from repro.hw.registers import MatchMode
from repro.myrinet.symbols import GAP, GO, IDLE, STOP
from repro.nftape import Campaign, DutyCyclePlan, Experiment, WorkloadConfig
from repro.nftape.classify import classify_result
from repro.nftape.experiment import TestbedOptions
from repro.sim.timebase import MS, US

ROWS = [
    ("STOP", STOP, "IDLE", IDLE),   # delete STOPs -> receiver overflow
    ("GAP", GAP, "GO", GO),         # delete packet tails -> merges
    ("GO", GO, "STOP", STOP),       # resume becomes stall
]


def main() -> None:
    campaign = Campaign("mini Table 4",
                        on_progress=lambda text: print(f"  ... {text}"))
    for mask_name, mask, repl_name, repl in ROWS:
        plan = DutyCyclePlan(
            "RL",
            control_symbol_swap(mask, repl, MatchMode.ON),
            on_ps=1 * MS,
            off_ps=5 * MS,
            use_serial=False,
        )
        campaign.add(Experiment(
            f"{mask_name}->{repl_name}",
            duration_ps=12 * MS,
            plan=plan,
            workload_config=WorkloadConfig(send_interval_ps=4 * US),
            testbed_options=TestbedOptions(
                host_kwargs={"rx_drain_factor": 2.0}
            ),
        ))

    table = campaign.run()
    print()
    print(table.render())
    print()
    for result in campaign.results:
        print(f"{result.name:<12} classified: {classify_result(result)}")


if __name__ == "__main__":
    main()
