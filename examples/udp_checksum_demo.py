#!/usr/bin/env python
"""The §4.3.4 UDP checksum experiment: "Have a lot of fun".

UDP's 16-bit one's-complement checksum is a commutative sum of 16-bit
words, so exchanging two aligned words — "swapping bits that are 16 bits
apart" — is invisible to it.  The injector corrupts "Have" into "veHa"
(the two words exchanged) while recomputing the Myrinet CRC-8, and the
corrupted message sails through every check into the application.  Any
other corruption is caught by the checksum and dropped.

Run:  python examples/udp_checksum_demo.py
"""

from repro.core.faults import replace_bytes
from repro.hostsim import HostStack, MessageSink, internet_checksum
from repro.hw.registers import MatchMode
from repro.nftape import Testbed
from repro.nftape.experiment import TestbedOptions
from repro.sim.timebase import MS

MESSAGE = b"Have a lot of fun"
SWAPPED = b"veHa a lot of fun"


def run_case(title: str, match: bytes, replacement: bytes) -> None:
    testbed = Testbed(TestbedOptions(seed=0))
    testbed.settle()
    sender = HostStack(testbed.sim, testbed.network.host("pc").interface)
    receiver = HostStack(testbed.sim,
                         testbed.network.host("sparc1").interface)
    sink = MessageSink(receiver, 4242, store_limit=5)
    testbed.device.configure(
        "R",
        replace_bytes(match, replacement, match_mode=MatchMode.ON,
                      crc_fixup=True),
    )
    for _index in range(5):
        sender.send_udp(receiver.interface.mac, 4242, MESSAGE)
    testbed.sim.run_for(10 * MS)
    print(f"--- {title} ---")
    print(f"  sent 5 x {MESSAGE!r}")
    print(f"  delivered: {sink.received}, "
          f"checksum drops: {receiver.checksum_drops}")
    for message in sink.messages[:1]:
        print(f"  application received: {message!r}")
    print()


def main() -> None:
    print(f"checksum({MESSAGE!r})  = "
          f"{internet_checksum(MESSAGE):#06x}")
    print(f"checksum({SWAPPED!r})  = "
          f"{internet_checksum(SWAPPED):#06x}  (identical!)\n")

    run_case("16-bit-apart swap: Have -> veHa (passes the checksum)",
             b"Have", b"veHa")
    run_case("plain corruption: Have -> HAVE (caught and dropped)",
             b"Have", b"HAVE")


if __name__ == "__main__":
    main()
