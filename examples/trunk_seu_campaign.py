#!/usr/bin/env python
"""SEU campaign on an inter-switch trunk of a larger Myrinet fabric.

Combines three of the paper's capabilities beyond the basic test bed:

* a larger topology (two 8-port switches, five hosts) mapped entirely by
  the MCP protocol;
* the *second-generation* device of footnote 1 — the injector core
  behind a pluggable media adapter — spliced into the inter-switch
  trunk, a vantage point no software injector can reach;
* the §3.1 random-SEU fault class: exponentially-paced single-bit flips
  via the Inject-Now input, each with a freshly randomized corrupt
  vector.

Run:  python examples/trunk_seu_campaign.py
"""

from repro.core import MyrinetAdapter, SecondGenerationDevice
from repro.hostsim import HostStack, MessageSink, UdpGenerator
from repro.myrinet.network import MyrinetNetwork
from repro.sim import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import MS, US


def main() -> None:
    sim = Simulator()
    network = MyrinetNetwork(sim, rng=DeterministicRng(7),
                             map_interval_ps=100 * MS)
    network.add_switch("s1")
    network.add_switch("s2")
    for name, switch, port in (
        ("alpha", "s1", 0), ("bravo", "s1", 1), ("charlie", "s1", 2),
        ("delta", "s2", 0), ("echo", "s2", 1),
    ):
        network.add_host(name)
        network.connect(name, switch, port)

    # The second-generation device guards the trunk between the switches.
    device = SecondGenerationDevice(sim, MyrinetAdapter(), name="trunk-fi")
    network.connect_switches("s1", 7, "s2", 7, device=device)
    network.settle(10 * MS)

    mapper = network.mapper()
    print(f"{len(network.hosts)} hosts on 2 switches; mapper = "
          f"{mapper.name}")
    print(mapper.mcp.current_map.render())

    # Cross-trunk traffic: every s1 host streams to every s2 host.
    stacks = {name: HostStack(sim, host.interface)
              for name, host in network.hosts.items()}
    sinks = {name: MessageSink(stacks[name], 5000)
             for name in ("delta", "echo")}
    generators = []
    for src in ("alpha", "bravo", "charlie"):
        for dst in ("delta", "echo"):
            generator = UdpGenerator(
                sim, stacks[src], network.hosts[dst].interface.mac, 5000,
                payload_size=64, interval_ps=200 * US,
            )
            generator.start()
            generators.append(generator)

    # The SEU plan needs the Testbed protocol surface; adapt minimally.
    class _Bed:
        pass

    bed = _Bed()
    bed.sim = sim
    bed.device = device
    bed.session = None

    from repro.nftape import RandomBitFlipPlan
    plan = RandomBitFlipPlan(direction="RL",
                             mean_interval_ps=int(0.5 * MS), seed=13)
    plan.install(bed)
    plan.start(bed)
    sim.run_for(30 * MS)
    plan.stop(bed)
    sim.run_for(3 * MS)

    sent = sum(g.sent for g in generators)
    received = sum(s.received for s in sinks.values())
    checksum_drops = sum(stacks[n].checksum_drops for n in sinks)
    crc_drops = sum(network.hosts[n].interface.crc_errors for n in sinks)
    forced = sum(device.injector(d).forced_injections for d in "RL")

    print(f"\nSEU pulses fired      : {plan.pulses} "
          f"(random bit, random instant)")
    print(f"flips landed on data  : {forced}")
    print(f"messages sent/received: {sent}/{received} "
          f"(loss {1 - received / sent:.1%})")
    print(f"caught by CRC-8       : {crc_drops}")
    print(f"caught by UDP checksum: {checksum_drops}")
    print("every corrupted message was dropped before the application — "
          "passive faults only")


if __name__ == "__main__":
    main()
