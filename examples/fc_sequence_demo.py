#!/usr/bin/env python
"""Fibre Channel class 3 sequences under fault injection.

Class 3 is datagram service: a payload travels as a train of frames
(SOFi3 ... EOFn ... EOFt) with no acknowledgements.  That makes the
loss *amplification* of a single in-path fault visible: one corrupted
frame silently destroys the entire multi-frame sequence.

Run:  python examples/fc_sequence_demo.py
"""

from repro.core import FaultInjectorDevice
from repro.core.faults import replace_bytes
from repro.fc import (
    FcInjectorTap,
    FcPort,
    SequenceReassembler,
    SequenceSender,
)
from repro.fc.node import connect_fc
from repro.hw.registers import MatchMode
from repro.sim import Simulator
from repro.sim.timebase import MS


def main() -> None:
    sim = Simulator()
    device = FaultInjectorDevice(sim, medium="fibre-channel")
    tap = FcInjectorTap(sim, device)
    initiator = FcPort(sim, "initiator", 0x010101, bb_credit=8)
    target = FcPort(sim, "target", 0x020202, bb_credit=8)
    connect_fc(sim, initiator, target, tap=tap)

    sender = SequenceSender(initiator, s_id=0x010101, frame_payload=128)
    received = []
    reassembler = SequenceReassembler(
        sim, target,
        lambda s_id, payload: received.append(payload),
        timeout_ps=5 * MS,
    )

    # A 1 KiB payload = 8 frames per sequence.
    payload = bytes(range(256)) * 4

    # 1. Clean transfer.
    sender.send(0x020202, payload)
    sim.run_for(3 * MS)
    print(f"clean transfer : {len(received)} sequence(s), "
          f"{len(received[0])} bytes, intact={received[0] == payload}")

    # 2. One single-frame corruption -> the whole sequence dies.
    device.configure("R", replace_bytes(b"\x40\x41\x42\x43",
                                        b"\xde\xad\xbe\xef",
                                        match_mode=MatchMode.ONCE))
    sender.send(0x020202, payload)
    sim.run_for(10 * MS)
    print(f"after 1 frame corrupted: sequences delivered={len(received)}, "
          f"timed out={reassembler.sequences_timed_out}")
    print(f"  -> 1 corrupted frame destroyed "
          f"{sender.frames_sent // sender.sequences_sent} frames of payload "
          f"(class 3 has no recovery)")

    # 3. Traffic recovers afterwards.
    sender.send(0x020202, payload)
    sim.run_for(3 * MS)
    print(f"next transfer  : {len(received)} total delivered, "
          f"target CRC-32 errors={target.crc_errors}")


if __name__ == "__main__":
    main()
