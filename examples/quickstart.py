#!/usr/bin/env python
"""Quickstart: splice the fault injector into a Myrinet LAN and corrupt
one message, end to end.

This is the paper's "typical injection scenario" (§3.3): upload commands
over the standard serial interface instructing the injector to match a
data string and replace it — here with the CRC-8 recomputed on the fly so
the corruption survives link-level checking.

Run:  python examples/quickstart.py
"""

from repro.core import FaultInjectorDevice, InjectorSession
from repro.core.faults import replace_bytes
from repro.hw.registers import MatchMode
from repro.myrinet.network import build_paper_testbed
from repro.sim import Simulator
from repro.sim.timebase import MS, to_ns


def main() -> None:
    sim = Simulator()

    # The device sits in the data path between host "pc" and the switch.
    device = FaultInjectorDevice(sim)
    network = build_paper_testbed(sim, device=device, instrumented_host="pc")
    session = InjectorSession(sim, device)

    # Let the MCP map the network (routing tables install automatically).
    network.settle()
    print("network mapped; the device is transparent in the data path")
    print(f"device transit latency: {to_ns(device.pipeline_latency_ps):.0f} ns\n")

    pc = network.host("pc").interface
    sparc1 = network.host("sparc1").interface
    received = []
    sparc1.set_data_handler(lambda src, payload: received.append(payload))

    # 1. Pass-through: no fault configured.
    pc.send_to(sparc1.mac, b"snoop for 0x1818 in this stream: \x18\x18!")
    sim.run_for(2 * MS)
    print(f"pass-through delivery : {received[-1]!r}")

    # 2. Upload the fault over RS-232: match 0x1818, replace with 0x1918,
    #    once mode, CRC fix-up enabled.
    fault = replace_bytes(b"\x18\x18", b"\x19\x18",
                          match_mode=MatchMode.ONCE, crc_fixup=True)
    session.configure("R", fault,
                      lambda line: print(f"serial upload complete: {line}"))
    sim.run_for(60 * MS)  # ~12 commands at 115200 baud

    # 3. The same message again: the matched bytes are replaced in flight.
    pc.send_to(sparc1.mac, b"snoop for 0x1818 in this stream: \x18\x18!")
    sim.run_for(2 * MS)
    print(f"corrupted delivery    : {received[-1]!r}")

    # 4. Once mode has disarmed itself: traffic is clean again.
    pc.send_to(sparc1.mac, b"snoop for 0x1818 in this stream: \x18\x18!")
    sim.run_for(2 * MS)
    print(f"after once-mode fired : {received[-1]!r}\n")

    # 5. Read the statistics back over the serial link (ST command).
    session.read_stats(
        "R", lambda stats: print(f"injector statistics   : {stats}")
    )
    sim.run_for(10 * MS)


if __name__ == "__main__":
    main()
