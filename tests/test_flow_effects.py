"""FLOW3xx effect-extraction and contract-rule unit tests.

``extract_effects`` (alias resolution, store/mutating-call vocabulary,
prefix stripping, call witnesses, signature capture),
``normalize_signature`` (word-boundary renames), and the
:class:`FastpathEffectContractRule` verdicts on synthetic scalar/fast
pairs: FLOW301 coverage, fallback witnesses, FLOW302 signatures,
FLOW303 undeclared fast-only effects, FLOW304 dangling references.
"""

import ast
import textwrap
from pathlib import Path

from repro.analysis.engine import parse_module
from repro.analysis.flow.effects import (
    FastpathEffectContractRule,
    extract_effects,
    normalize_signature,
)
from repro.fastpath.contract import EffectContract, FunctionRef


def effects_of(source: str, renames=None, strip=()):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    return extract_effects(func, renames, strip)


# ----------------------------------------------------------------------
# extract_effects
# ----------------------------------------------------------------------

def test_attribute_stores_and_augassigns():
    out = effects_of("""\
        def f(self, n):
            self.symbols += n
            self.compare._window = 0
            self.counts["x"] = 1
        """)
    assert out.effects == {"symbols", "compare._window", "counts[]"}


def test_local_rebinding_is_not_an_effect():
    # Reading self state into locals (even via an alias chain) must not
    # count as a store — this was a real false-positive source on the
    # fused burst loop's register-caching preamble.
    out = effects_of("""\
        def f(self):
            config = self.config
            cd = config.compare_data
            depth = self.pipeline_depth
            return cd + depth
        """)
    assert out.effects == set()


def test_alias_resolution_one_level_chain():
    out = effects_of("""\
        def f(self, value):
            stats = self.stats
            counts = stats.control_symbols
            counts[value] = counts.get(value, 0) + 1
            stats.symbols += 1
        """)
    assert out.effects == {
        "stats.control_symbols[]", "stats.symbols",
    }


def test_mutating_calls_vs_known_nonmutating():
    out = effects_of("""\
        def f(self, symbol):
            self.fifo.push(symbol)
            self.compare.snapshot()
            self.events.append(symbol)
            self.registers.get("CD")
        """)
    assert out.effects == {"fifo.push", "events.append"}


def test_own_method_calls_become_witnesses():
    out = effects_of("""\
        def f(self, burst):
            self._corrupt(burst)
            self.fifo.note_occupancy(3)
        """)
    assert out.calls == {"call:_corrupt"}
    assert "fifo.note_occupancy" in out.effects


def test_strip_prefix_makes_engine_side_comparable():
    # Engine-side code goes through `inj = self.injector`; stripping
    # "injector." aligns its effects with the scalar side's, and a
    # fully-stripped dotless method becomes a delegation witness.
    out = effects_of("""\
        def f(self, burst):
            inj = self.injector
            inj.fifo.note_occupancy(3)
            inj.symbols_processed += 1
            inj.process_burst(burst)
        """, strip=("injector.",))
    assert out.effects == {"fifo.note_occupancy", "symbols_processed"}
    assert out.calls == {"call:process_burst"}


def test_signatures_capture_first_argument_normalised():
    out = effects_of("""\
        def f(self, n):
            inj = self.injector
            inj.fifo.note_occupancy(min(n, inj.pipeline_depth + 1))
        """,
        renames={"n": "count", "inj.pipeline_depth": "depth"},
        strip=("injector.",),
    )
    sigs = out.signatures["fifo.note_occupancy"]
    assert [s for s, _line in sigs] == ["min(count, depth + 1)"]


def test_normalize_signature_word_boundaries():
    # "n" -> "count" must not corrupt "min"; longest key wins first.
    assert normalize_signature(
        "min(n, inj.pipeline_depth + 1)",
        {"n": "count", "inj.pipeline_depth": "depth"},
    ) == "min(count, depth + 1)"


# ----------------------------------------------------------------------
# FastpathEffectContractRule on synthetic pairs
# ----------------------------------------------------------------------

def check(tmp_path: Path, source: str, contract: EffectContract):
    path = tmp_path / "repro" / "pair.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    info = parse_module(path, tmp_path)
    rule = FastpathEffectContractRule(contracts=[contract])
    return rule.check_project({info.module: info})


def pair_contract(**kwargs) -> EffectContract:
    return EffectContract(
        name="pair",
        scalar=(FunctionRef("repro.pair", "Device.step"),),
        fast=(FunctionRef("repro.pair", "Device.bulk"),),
        **kwargs,
    )


def test_flow301_uncovered_scalar_effect(tmp_path):
    findings = check(tmp_path, """\
        class Device:
            def step(self, s):
                self.clock.tick()
                self.seen += 1

            def bulk(self, burst):
                self.seen += len(burst)
        """, pair_contract())
    assert [f.rule_id for f in findings] == ["FLOW301"]
    assert "`clock.tick`" in findings[0].message


def test_flow301_satisfied_by_covered_by(tmp_path):
    findings = check(tmp_path, """\
        class Device:
            def step(self, s):
                self.clock.tick()
                self.seen += 1

            def bulk(self, burst):
                self.clock._cycles += len(burst)
                self.seen += len(burst)
        """, pair_contract(covered_by={"clock.tick": ("clock._cycles",)}))
    assert findings == []


def test_flow301_fallback_needs_a_witness(tmp_path):
    source = """\
        class Device:
            def step(self, s):
                self.events.append(s)
                self.seen += 1

            def bulk(self, burst):
                self.seen += len(burst)
        """
    # Declared fallback without the witness call: still FLOW301.
    unwitnessed = check(tmp_path, source, pair_contract(
        fallback=frozenset({"events.append"}),
        fallback_calls=frozenset({"call:step"}),
    ))
    assert [f.rule_id for f in unwitnessed] == ["FLOW301"]
    # With the fast side actually delegating, the fallback holds.
    witnessed = check(tmp_path, """\
        class Device:
            def step(self, s):
                self.events.append(s)
                self.seen += 1

            def bulk(self, burst):
                for s in burst:
                    self.step(s)
                self.seen += 0
        """, pair_contract(
        fallback=frozenset({"events.append"}),
        fallback_calls=frozenset({"call:step"}),
        covered_by={"seen": ("seen",)},
    ))
    assert witnessed == []


def test_flow302_signature_divergence_on_either_side(tmp_path):
    findings = check(tmp_path, """\
        class Device:
            def step(self, n):
                self.fifo.note_occupancy(min(n, self.depth + 1))

            def bulk(self, burst):
                self.fifo.note_occupancy(min(len(burst), self.depth))
        """, pair_contract(
        signatures={"fifo.note_occupancy": "min(count, depth + 1)"},
        scalar_renames={"n": "count", "self.depth": "depth"},
        fast_renames={"len(burst)": "count", "self.depth": "depth"},
    ))
    assert [f.rule_id for f in findings] == ["FLOW302"]
    assert "min(count, depth)" in findings[0].message


def test_flow303_undeclared_fast_only_effect(tmp_path):
    findings = check(tmp_path, """\
        class Device:
            def step(self, s):
                self.seen += 1

            def bulk(self, burst):
                self.seen += len(burst)
                self.bursts_fast += 1
        """, pair_contract())
    assert [f.rule_id for f in findings] == ["FLOW303"]
    assert "`bursts_fast`" in findings[0].message
    # Declaring it (a fast-path diagnostic) clears the finding.
    cleared = check(tmp_path, """\
        class Device:
            def step(self, s):
                self.seen += 1

            def bulk(self, burst):
                self.seen += len(burst)
                self.bursts_fast += 1
        """, pair_contract(
        allow_fast_only={"bursts_fast": "fast-path-only diagnostic"},
    ))
    assert cleared == []


def test_flow304_missing_function_reference(tmp_path):
    contract = EffectContract(
        name="pair",
        scalar=(FunctionRef("repro.pair", "Device.step"),),
        fast=(FunctionRef("repro.pair", "Device.vanished"),),
    )
    findings = check(tmp_path, """\
        class Device:
            def step(self, s):
                pass
        """, contract)
    assert "FLOW304" in [f.rule_id for f in findings]
    flow304 = next(f for f in findings if f.rule_id == "FLOW304")
    assert "Device.vanished" in flow304.message


def test_contract_with_no_present_module_is_skipped(tmp_path):
    # Partial fixture trees must not drown in FLOW304 noise for
    # contracts about code they simply do not contain.
    contract = EffectContract(
        name="absent",
        scalar=(FunctionRef("repro.elsewhere", "X.step"),),
        fast=(FunctionRef("repro.elsewhere", "X.bulk"),),
    )
    findings = check(tmp_path, """\
        class Device:
            def step(self, s):
                pass
        """, contract)
    assert findings == []
