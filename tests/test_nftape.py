"""Unit tests for the NFTAPE campaign framework."""

import pytest

from repro.core.faults import control_symbol_swap, replace_bytes
from repro.errors import CampaignError
from repro.hw.registers import MatchMode
from repro.myrinet.symbols import GAP, GO, STOP
from repro.nftape import (
    AllPairsWorkload,
    Campaign,
    DutyCyclePlan,
    Experiment,
    ExperimentResult,
    FaultClass,
    FaultPlan,
    InjectNowPlan,
    ResultTable,
    Testbed,
    WorkloadConfig,
    classify_result,
)
from repro.nftape.experiment import TestbedOptions
from repro.nftape.workload import WORKLOAD_PORT
from repro.sim.timebase import MS, US


class TestResults:
    def _result(self, **kwargs):
        defaults = dict(name="r", messages_sent=100, messages_received=90)
        defaults.update(kwargs)
        return ExperimentResult(**defaults)

    def test_loss_rate(self):
        result = self._result()
        assert result.messages_lost == 10
        assert result.loss_rate == pytest.approx(0.10)

    def test_loss_rate_empty(self):
        assert ExperimentResult(name="empty").loss_rate == 0.0

    def test_throughput(self):
        result = self._result(duration_ps=10 ** 12)  # one second
        assert result.throughput_per_second == pytest.approx(90)

    def test_counter_totals(self):
        result = self._result(
            host_stats={"a": {"crc_errors": 2}, "b": {"crc_errors": 3}},
            switch_stats={"s": {"long_timeouts": 1}},
        )
        assert result.total_host_counter("crc_errors") == 5
        assert result.total_switch_counter("long_timeouts") == 1

    def test_table_render_and_markdown(self):
        table = ResultTable("title")
        table.add(self._result(), run="one", loss="10%")
        table.add(self._result(), run="two", loss="0%", extra=5)
        text = table.render()
        assert "title" in text and "one" in text and "extra" in text
        markdown = table.to_markdown()
        assert markdown.startswith("### title")
        assert "| run |" in markdown

    def test_empty_table(self):
        assert "<no rows>" in ResultTable("t").render()
        assert "_(no rows)_" in ResultTable("t").to_markdown()


class TestClassification:
    def test_no_effects(self):
        result = ExperimentResult(name="clean", messages_sent=10,
                                  messages_received=10)
        assert classify_result(result).fault_class is FaultClass.NONE

    def test_losses_are_passive(self):
        result = ExperimentResult(name="lossy", messages_sent=10,
                                  messages_received=5)
        classified = classify_result(result)
        assert classified.fault_class is FaultClass.PASSIVE
        assert "5 messages lost" in str(classified)

    def test_misdelivery_is_active(self):
        result = ExperimentResult(name="bad", messages_sent=10,
                                  messages_received=10,
                                  active_misdeliveries=1)
        assert classify_result(result).fault_class is FaultClass.ACTIVE

    def test_corrupted_delivery_is_active(self):
        result = ExperimentResult(name="bad", corrupted_deliveries=2)
        assert classify_result(result).fault_class is FaultClass.ACTIVE

    def test_counter_evidence_is_passive(self):
        result = ExperimentResult(
            name="state", host_stats={"h": {"crc_errors": 1}}
        )
        classified = classify_result(result)
        assert classified.fault_class is FaultClass.PASSIVE
        assert any("crc_errors" in e for e in classified.evidence)


class TestTestbed:
    def test_reaches_known_good_state(self):
        testbed = Testbed(TestbedOptions(seed=3))
        testbed.settle()
        assert testbed.mmon.all_nodes_in_network()
        assert testbed.device is not None
        assert testbed.session is not None

    def test_without_device(self):
        testbed = Testbed(TestbedOptions(with_device=False))
        testbed.settle()
        assert testbed.device is None
        assert testbed.total_injections() == 0

    def test_same_seed_reproduces_event_counts(self):
        counts = []
        for _run in range(2):
            testbed = Testbed(TestbedOptions(seed=42))
            testbed.settle()
            counts.append(testbed.sim.events_fired)
        assert counts[0] == counts[1]

    def test_mmon_snapshot(self):
        testbed = Testbed(TestbedOptions())
        testbed.settle()
        snapshot = testbed.mmon.snapshot()
        assert set(snapshot.host_stats) == {"pc", "sparc1", "sparc2"}
        assert snapshot.network_map is not None
        text = testbed.mmon.render()
        assert "mmon @" in text
        assert "switch" in text


class TestWorkload:
    def test_all_pairs_baseline_lossless(self):
        testbed = Testbed(TestbedOptions(seed=1))
        testbed.settle()
        workload = AllPairsWorkload(
            testbed.network,
            WorkloadConfig(send_interval_ps=200 * US, flood_ping=False),
        )
        workload.start()
        testbed.sim.run_for(5 * MS)
        workload.stop()
        testbed.sim.run_for(2 * MS)
        assert workload.messages_sent > 100
        assert workload.messages_received == workload.messages_sent
        assert workload.misdeliveries == 0
        assert workload.corrupted_deliveries == 0

    def test_payload_corruption_caught_by_udp_checksum(self):
        """Filler corruption with a fixed link CRC still fails the UDP
        checksum: the loss is PASSIVE (dropped), not active."""
        testbed = Testbed(TestbedOptions(seed=2))
        testbed.settle()
        assert testbed.device is not None
        testbed.device.configure(
            "R", replace_bytes(b"!", b"?", match_mode=MatchMode.ON,
                               crc_fixup=True),
        )
        workload = AllPairsWorkload(
            testbed.network,
            WorkloadConfig(send_interval_ps=200 * US, flood_ping=False,
                           forbidden_bytes=set(range(0x20, 0x40)) - {0x21}),
        )
        workload.start()
        testbed.sim.run_for(5 * MS)
        workload.stop()
        testbed.sim.run_for(2 * MS)
        assert workload.checksum_drops > 0
        assert workload.corrupted_deliveries == 0

    def test_sink_flags_checksum_evading_corruption(self):
        """If a corruption evades every checksum (the §4.3.4 swap), the
        validating sink still detects it as an active fault."""
        from repro.nftape.workload import _ValidatingSink
        testbed = Testbed(TestbedOptions(seed=2))
        testbed.settle()
        from repro.hostsim.sockets import HostStack
        stack = HostStack(testbed.sim,
                          testbed.network.host("pc").interface)
        alphabet = list(range(0x20, 0x7F))
        sink = _ValidatingSink(stack, alphabet)
        mac = stack.interface.mac
        # A well-formed payload for this sink...
        good = mac.to_bytes() + (1).to_bytes(4, "big") + bytes(
            alphabet[(1 * 31 + i * 7) % len(alphabet)] for i in range(16)
        )
        sink._on_message(mac, None, 0, good)
        assert sink.corrupted == 0
        # ...and the same payload with two filler words exchanged.
        swapped = bytearray(good)
        swapped[10:12], swapped[12:14] = good[12:14], good[10:12]
        sink._on_message(mac, None, 0, bytes(swapped))
        assert sink.corrupted == 1
        # Misdelivery detection: payload intended for another node.
        other = testbed.network.host("sparc1").interface.mac
        sink._on_message(mac, None, 0, other.to_bytes() + good[6:])
        assert sink.misdeliveries == 1


class TestPlans:
    def test_fault_plan_direct_install(self):
        testbed = Testbed(TestbedOptions())
        testbed.settle()
        plan = FaultPlan("RL", control_symbol_swap(STOP, GO, MatchMode.ON),
                         use_serial=False)
        plan.install(testbed)
        assert testbed.device.injector("R").armed
        assert testbed.device.injector("L").armed
        plan.stop(testbed)
        assert not testbed.device.injector("R").armed

    def test_fault_plan_serial_install(self):
        testbed = Testbed(TestbedOptions())
        testbed.settle()
        plan = FaultPlan("R", replace_bytes(b"ab", b"cd",
                                            match_mode=MatchMode.ONCE))
        plan.install(testbed)
        testbed.drain_session()
        config = testbed.device.injector("R").config
        assert config.match_mode is MatchMode.ONCE

    def test_rearm_requires_once_mode(self):
        testbed = Testbed(TestbedOptions())
        testbed.settle()
        plan = FaultPlan("R", control_symbol_swap(STOP, GO, MatchMode.ON),
                         rearm_interval_ps=1 * MS, use_serial=False)
        with pytest.raises(CampaignError):
            plan.start(testbed)

    def test_rearm_reenables_once_trigger(self):
        testbed = Testbed(TestbedOptions())
        testbed.settle()
        config = replace_bytes(b"ab", b"cd", match_mode=MatchMode.ONCE)
        plan = FaultPlan("R", config, rearm_interval_ps=1 * MS,
                         use_serial=False)
        plan.install(testbed)
        injector = testbed.device.injector("R")
        injector._once_fired = True  # pretend the trigger fired
        plan.start(testbed)
        testbed.sim.run_for(2 * MS)
        assert injector.armed
        plan.stop(testbed)

    def test_duty_cycle_plan_toggles(self):
        testbed = Testbed(TestbedOptions())
        testbed.settle()
        plan = DutyCyclePlan("R", control_symbol_swap(STOP, GO, MatchMode.ON),
                             on_ps=1 * MS, off_ps=1 * MS, use_serial=False)
        plan.install(testbed)
        assert not testbed.device.injector("R").armed
        plan.start(testbed)
        states = []
        for _step in range(4):
            states.append(testbed.device.injector("R").armed)
            testbed.sim.run_for(1 * MS)
        plan.stop(testbed)
        assert True in states and False in states
        assert not testbed.device.injector("R").armed

    def test_inject_now_plan_pulses(self):
        testbed = Testbed(TestbedOptions())
        testbed.settle()
        plan = InjectNowPlan("R", replace_bytes(b"xx", b"yy"),
                             interval_ps=1 * MS, use_serial=False)
        plan.install(testbed)
        plan.start(testbed)
        testbed.sim.run_for(3 * MS + 500 * US)
        plan.stop(testbed)
        # Pulses landed even with no matching traffic: forced injections
        # fire on whatever crosses (or nothing if the link is idle).
        assert testbed.device.injector("R")._inject_now or \
            testbed.device.injector("R").forced_injections >= 0


class TestExperimentAndCampaign:
    def test_baseline_experiment_is_clean(self):
        experiment = Experiment(
            "baseline", duration_ps=4 * MS,
            workload_config=WorkloadConfig(send_interval_ps=300 * US,
                                           flood_ping=False),
        )
        result = experiment.run()
        assert result.messages_sent > 0
        assert result.loss_rate == 0.0
        assert classify_result(result).fault_class is FaultClass.NONE

    def test_fault_experiment_loses_messages(self):
        plan = FaultPlan("RL", control_symbol_swap(GAP, GO, MatchMode.ON),
                         use_serial=False)
        experiment = Experiment(
            "gap->go", duration_ps=4 * MS, plan=plan,
            workload_config=WorkloadConfig(send_interval_ps=300 * US,
                                           flood_ping=False),
        )
        result = experiment.run()
        assert result.injections > 0
        assert result.loss_rate > 0.05
        assert classify_result(result).fault_class is FaultClass.PASSIVE

    def test_campaign_runs_all_and_tabulates(self):
        campaign = Campaign("mini")
        for name in ("one", "two"):
            campaign.add(Experiment(
                name, duration_ps=2 * MS,
                workload_config=WorkloadConfig(send_interval_ps=500 * US,
                                               flood_ping=False),
            ))
        table = campaign.run()
        assert len(table.rows) == 2
        assert len(campaign.results) == 2
        rendered = table.render()
        assert "one" in rendered and "two" in rendered
