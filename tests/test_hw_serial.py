"""Unit tests for the serial control path: line, UART, SPI, decoder."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.hw.decoder import (
    ERR_BAD_ARGUMENT,
    ERR_BAD_DIRECTION,
    ERR_BAD_OPCODE,
    ERR_OVERFLOW,
    IDENTITY,
    MAX_LINE,
    CommandDecoder,
)
from repro.hw.injector import FifoInjector
from repro.hw.outputgen import OutputGenerator
from repro.hw.registers import CorruptMode, MatchMode
from repro.hw.spi import Spi, decode_frame, encode_frame
from repro.hw.uart import SerialLine, Uart
from repro.sim.timebase import MS, US


class _Target:
    """Minimal decoder target with two injectors."""

    def __init__(self):
        self.injectors = {"L": FifoInjector("L"), "R": FifoInjector("R")}
        self.resets = 0

    def injector(self, direction):
        return self.injectors[direction]

    def device_reset(self):
        self.resets += 1
        for injector in self.injectors.values():
            injector.reset()

    def monitor_summary(self, direction):
        return f"cap=0 sdram=0 drop=0"


def make_decoder():
    target = _Target()
    responses = []
    decoder = CommandDecoder(target, responses.append)
    return decoder, target, responses


def send_line(decoder, line):
    for char in line + "\n":
        decoder.on_char(ord(char))


class TestSerialLine:
    def test_byte_timing_at_baud(self, sim):
        line = SerialLine(sim, baud=115_200)
        received = []
        line.attach("b", lambda b: received.append((sim.now, b)))
        line.send("a", b"AB")
        sim.run()
        byte_time = line.byte_time_ps
        assert received[0] == (byte_time, ord("A"))
        assert received[1] == (2 * byte_time, ord("B"))
        # 10 bits at 115200 baud is ~86.8 us per byte.
        assert byte_time == pytest.approx(86.8 * US, rel=0.01)

    def test_directions_independent(self, sim):
        line = SerialLine(sim)
        got_a, got_b = [], []
        line.attach("a", got_a.append)
        line.attach("b", got_b.append)
        line.send("a", b"x")
        line.send("b", b"yz")
        sim.run()
        assert bytes(got_b) == b"x"
        assert bytes(got_a) == b"yz"

    def test_unattached_side_rejected(self, sim):
        line = SerialLine(sim)
        with pytest.raises(ConfigurationError):
            line.send("a", b"x")
        with pytest.raises(ConfigurationError):
            line.attach("q", lambda b: None)

    def test_bad_baud(self, sim):
        with pytest.raises(ConfigurationError):
            SerialLine(sim, baud=0)


class TestUart:
    def test_drops_before_configuration(self, sim):
        line = SerialLine(sim)
        line.attach("a", lambda b: None)
        uart = Uart(sim, line, side="b")
        line.send("a", b"early")
        sim.run()
        assert uart.dropped_before_config == 5
        uart.configure()
        uart.attach_fpga(lambda b: None)
        line.send("a", b"ok")
        sim.run()
        assert uart.rx_bytes == 2

    def test_only_8n1_supported(self, sim):
        line = SerialLine(sim)
        line.attach("a", lambda b: None)
        uart = Uart(sim, line)
        with pytest.raises(ConfigurationError):
            uart.configure(data_bits=7)


class TestSpi:
    def test_frame_roundtrip(self):
        for byte in (0, 0x7F, 0xFF, 0x55):
            assert decode_frame(encode_frame(byte)) == byte

    def test_bad_sync_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(0x5041)

    def test_parity_error_rejected(self):
        frame = encode_frame(0x41)
        with pytest.raises(ProtocolError):
            decode_frame(frame ^ 0x0001)  # flip a payload bit

    def test_corrupted_frames_counted_not_delivered(self):
        spi = Spi()
        seen = []
        spi.attach_handler(seen.append)
        spi.receive_frame(encode_frame(0x41))
        spi.receive_frame(encode_frame(0x42) ^ 0x0004)  # corrupt in flight
        assert seen == [0x41]
        assert spi.frame_errors == 1
        assert spi.frames_in == 2


class TestCommandDecoder:
    def test_identity(self):
        decoder, _target, responses = make_decoder()
        send_line(decoder, "ID")
        assert responses == [f"OK {IDENTITY}"]

    def test_reset(self):
        decoder, target, responses = make_decoder()
        send_line(decoder, "RS")
        assert target.resets == 1
        assert responses[-1] == "OK reset"

    def test_full_configuration_sequence(self):
        decoder, target, responses = make_decoder()
        for line in (
            "MM R OFF",
            "CD R 00001818",
            "CM R 0000ffff",
            "RD R 00001918",
            "RM R 0000ffff",
            "OM R RPL",
            "CF R 1",
            "MM R ONCE",
        ):
            send_line(decoder, line)
        assert all(r.startswith("OK") for r in responses)
        config = target.injector("R").config
        assert config.compare_data == 0x1818
        assert config.corrupt_data == 0x1918
        assert config.corrupt_mode is CorruptMode.REPLACE
        assert config.crc_fixup
        assert config.match_mode is MatchMode.ONCE

    def test_directions_are_independent(self):
        decoder, target, _ = make_decoder()
        send_line(decoder, "CD L 000000aa")
        send_line(decoder, "CD R 000000bb")
        assert target.injector("L").config.compare_data == 0xAA
        assert target.injector("R").config.compare_data == 0xBB

    def test_ctl_lane_commands(self):
        decoder, target, _ = make_decoder()
        send_line(decoder, "CC R 0")
        send_line(decoder, "CX R 1")
        send_line(decoder, "RC R 0")
        send_line(decoder, "RX R 1")
        config = target.injector("R").config
        assert config.compare_ctl == 0
        assert config.compare_ctl_mask == 1
        assert config.corrupt_ctl == 0
        assert config.corrupt_ctl_mask == 1

    def test_inject_now_command(self):
        decoder, target, _ = make_decoder()
        send_line(decoder, "IN L")
        assert target.injector("L")._inject_now

    def test_stats_command(self):
        decoder, target, responses = make_decoder()
        send_line(decoder, "ST R")
        assert responses[-1].startswith("OK sym=0 match=0 inj=0")

    def test_monitor_command(self):
        decoder, _target, responses = make_decoder()
        send_line(decoder, "MO L")
        assert responses[-1].startswith("OK cap=")
        send_line(decoder, "MO Q")
        assert responses[-1].startswith(f"ER {ERR_BAD_DIRECTION}")

    def test_bad_opcode(self):
        decoder, _target, responses = make_decoder()
        send_line(decoder, "ZZ R 00")
        assert responses[-1].startswith(f"ER {ERR_BAD_OPCODE}")
        assert decoder.commands_error == 1

    def test_bad_direction(self):
        decoder, _target, responses = make_decoder()
        send_line(decoder, "CD X 00000000")
        assert responses[-1].startswith(f"ER {ERR_BAD_DIRECTION}")

    def test_bad_hex_argument(self):
        decoder, _target, responses = make_decoder()
        send_line(decoder, "CD R nothex")
        assert responses[-1].startswith(f"ER {ERR_BAD_ARGUMENT}")
        send_line(decoder, "CD R 112233445566")  # too wide
        assert responses[-1].startswith(f"ER {ERR_BAD_ARGUMENT}")

    def test_bad_match_mode(self):
        decoder, _target, responses = make_decoder()
        send_line(decoder, "MM R SOMETIMES")
        assert responses[-1].startswith(f"ER {ERR_BAD_ARGUMENT}")

    def test_line_overflow(self):
        decoder, _target, responses = make_decoder()
        send_line(decoder, "CD R " + "0" * (MAX_LINE + 10))
        assert responses[-1].startswith(f"ER {ERR_OVERFLOW}")
        # Recovers on the next line.
        send_line(decoder, "ID")
        assert responses[-1] == f"OK {IDENTITY}"

    def test_blank_line_ignored(self):
        decoder, _target, responses = make_decoder()
        send_line(decoder, "")
        send_line(decoder, "   ")
        assert responses == []

    def test_carriage_returns_tolerated(self):
        decoder, _target, responses = make_decoder()
        for char in "ID\r\n":
            decoder.on_char(ord(char))
        assert responses == [f"OK {IDENTITY}"]

    def test_case_insensitive_opcode(self):
        decoder, target, responses = make_decoder()
        send_line(decoder, "mm r once")
        assert responses[-1].startswith("OK")
        assert target.injector("R").config.match_mode is MatchMode.ONCE


class TestOutputGenerator:
    def test_emits_ascii_with_newline(self):
        emitted = []
        generator = OutputGenerator(emitted.append)
        generator.send_response("OK test")
        assert bytes(emitted) == b"OK test\n"
        assert generator.responses_sent == 1
        assert generator.bytes_emitted == 8

    def test_non_ascii_replaced(self):
        emitted = []
        generator = OutputGenerator(emitted.append)
        generator.send_response("oké")
        assert bytes(emitted) == b"ok?\n"
