"""Property-based tests for the switch and network delivery invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.myrinet.crc8 import crc8
from repro.myrinet.link import Link
from repro.myrinet.packet import MyrinetPacket, PACKET_TYPE_DATA
from repro.myrinet.switch import MyrinetSwitch
from repro.myrinet.symbols import GAP, data_symbols
from repro.sim import Simulator


class _Endpoint:
    def __init__(self):
        self.frames = []
        self._current = []
        self.tx = None

    def on_burst(self, burst, channel):
        for symbol in burst:
            if symbol.is_data:
                self._current.append(symbol.value)
            elif symbol == GAP and self._current:
                self.frames.append(bytes(self._current))
                self._current = []

    def send_packet(self, packet):
        burst = data_symbols(packet.to_bytes())
        burst.append(GAP)
        self.tx.send(burst)


def _build(sim, ports):
    switch = MyrinetSwitch(sim, num_ports=8)
    endpoints = []
    for port in range(ports):
        endpoint = _Endpoint()
        link = Link(sim, f"l{port}", char_period_ps=12_500,
                    propagation_ps=0)
        endpoint.tx = link.attach_a(endpoint)
        switch.attach_link(port, link, "b", flow_transport="symbols")
        endpoints.append(endpoint)
    return switch, endpoints


@settings(max_examples=25, deadline=None)
@given(
    plan=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # source port
            st.integers(min_value=0, max_value=3),   # destination port
            st.binary(min_size=1, max_size=60),      # payload
        ),
        min_size=1, max_size=25,
    )
)
def test_every_valid_packet_is_delivered_intact(plan):
    """Conservation: with clean links, every packet sent to a valid,
    different port arrives exactly once, CRC-intact, at the right
    endpoint, regardless of interleaving or contention."""
    sim = Simulator()
    switch, endpoints = _build(sim, 4)
    expected = {port: [] for port in range(4)}
    for src, dst, payload in plan:
        if src == dst:
            continue
        packet = MyrinetPacket.for_route([dst], PACKET_TYPE_DATA, payload)
        endpoints[src].send_packet(packet)
        expected[dst].append(payload)
    sim.run()
    for port in range(4):
        got = []
        for frame in endpoints[port].frames:
            assert crc8(frame) == 0
            got.append(MyrinetPacket.from_bytes(frame).payload)
        assert sorted(got) == sorted(expected[port])


@settings(max_examples=15, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=1, max_size=40),
                      min_size=1, max_size=30)
)
def test_single_flow_preserves_order(payloads):
    """FIFO per flow: one input to one output never reorders."""
    sim = Simulator()
    switch, endpoints = _build(sim, 2)
    for payload in payloads:
        endpoints[0].send_packet(
            MyrinetPacket.for_route([1], PACKET_TYPE_DATA, payload)
        )
    sim.run()
    got = [MyrinetPacket.from_bytes(f).payload
           for f in endpoints[1].frames]
    assert got == payloads


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_end_to_end_network_determinism(seed):
    """Same seed, same network, same message outcome — twice."""
    from repro.myrinet.network import build_paper_testbed
    from repro.sim.rng import DeterministicRng
    from repro.sim.timebase import MS

    def run():
        sim = Simulator()
        network = build_paper_testbed(sim, rng=DeterministicRng(seed))
        network.settle()
        pc = network.host("pc").interface
        sparc1 = network.host("sparc1").interface
        received = []
        sparc1.set_data_handler(lambda src, p: received.append(p))
        pc.send_to(sparc1.mac, seed.to_bytes(4, "big") * 4)
        sim.run_for(2 * MS)
        return received, sim.events_fired

    assert run() == run()
