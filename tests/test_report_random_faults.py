"""Tests for campaign reports and the random SEU fault plan."""

import pathlib

import pytest

from repro.nftape import (
    CampaignReport,
    Comparison,
    ExperimentResult,
    RandomBitFlipPlan,
    ResultTable,
    Testbed,
    WorkloadConfig,
)
from repro.nftape.experiment import Experiment, TestbedOptions
from repro.sim.timebase import MS, US


class TestComparison:
    def test_ratio_and_band(self):
        comparison = Comparison("loss", paper=0.10, measured=0.12)
        assert comparison.ratio == pytest.approx(1.2)
        assert comparison.within_band

    def test_out_of_band(self):
        comparison = Comparison("loss", paper=0.10, measured=0.45)
        assert not comparison.within_band
        assert "DEV" in comparison.render()

    def test_zero_paper_value(self):
        assert Comparison("x", paper=0, measured=0).within_band
        assert not Comparison("x", paper=0, measured=1).within_band


class TestCampaignReport:
    def _report(self):
        report = CampaignReport("demo campaign")
        table = ResultTable("rows")
        result = ExperimentResult(name="r1", messages_sent=10,
                                  messages_received=9)
        table.add(result, run="r1", loss="10%")
        report.add_table(table, note="a note")
        report.add_comparisons("bands", [
            Comparison("loss", paper=0.10, measured=0.10),
        ])
        report.add_classifications("classes", [result])
        report.add_note("free text")
        return report

    def test_text_rendering(self):
        text = self._report().render_text()
        for needle in ("demo campaign", "rows", "a note", "bands",
                       "[OK ]", "classes", "passive", "free text"):
            assert needle in text

    def test_markdown_rendering(self):
        markdown = self._report().render_markdown()
        assert markdown.startswith("# demo campaign")
        assert "| quantity |" in markdown
        assert "### rows" in markdown

    def test_write_infers_format(self, tmp_path):
        report = self._report()
        md = report.write(tmp_path / "out.md")
        txt = report.write(tmp_path / "out.txt")
        assert md.read_text().startswith("# ")
        assert txt.read_text().startswith("demo campaign")


class TestRandomBitFlipPlan:
    def test_seu_campaign_injects_random_flips(self):
        plan = RandomBitFlipPlan(direction="R",
                                 mean_interval_ps=int(0.3 * MS), seed=5)
        experiment = Experiment(
            "seu", duration_ps=6 * MS, plan=plan,
            workload_config=WorkloadConfig(send_interval_ps=100 * US,
                                           flood_ping=False),
            testbed_options=TestbedOptions(seed=5),
        )
        result = experiment.run()
        assert plan.pulses >= 5
        # Forced injections land on whatever segment is in flight; some
        # pulses hit idle periods (no symbols in the pipeline).
        testbed = result.extras["testbed"]
        assert testbed.device.injector("R").forced_injections >= 1

    def test_seu_campaign_deterministic(self):
        def run():
            plan = RandomBitFlipPlan(direction="R",
                                     mean_interval_ps=int(0.3 * MS),
                                     seed=9)
            experiment = Experiment(
                "seu", duration_ps=4 * MS, plan=plan,
                workload_config=WorkloadConfig(send_interval_ps=100 * US,
                                               flood_ping=False),
                testbed_options=TestbedOptions(seed=9),
            )
            result = experiment.run()
            return plan.pulses, result.messages_received

        assert run() == run()

    def test_requires_device(self):
        plan = RandomBitFlipPlan()
        testbed = Testbed(TestbedOptions(with_device=False))
        with pytest.raises(Exception):
            plan.install(testbed)
