"""Unit tests for the topology oracle, mapping protocol, and MCP."""

import pytest

from repro.errors import RoutingError
from repro.myrinet.mapping import MapEntry, NetworkMap, TopologyOracle
from repro.myrinet.mcp import MAPPER_SILENCE_ROUNDS
from repro.myrinet.addresses import MacAddress, McpAddress
from repro.myrinet.network import MyrinetNetwork, build_paper_testbed
from repro.sim.timebase import MS


class TestTopologyOracle:
    def _single_switch(self):
        oracle = TopologyOracle()
        oracle.add_switch("sw")
        for index, host in enumerate(("h0", "h1", "h2")):
            oracle.add_host(host)
            oracle.connect_host(host, "sw", index)
        return oracle

    def test_single_switch_routes(self):
        oracle = self._single_switch()
        assert oracle.route("h0", "h1") == [1]
        assert oracle.route("h1", "h0") == [0]
        assert oracle.route("h0", "h0") == []

    def test_two_switch_routes(self):
        oracle = TopologyOracle()
        oracle.add_switch("s1")
        oracle.add_switch("s2")
        oracle.add_host("a")
        oracle.add_host("b")
        oracle.connect_host("a", "s1", 0)
        oracle.connect_host("b", "s2", 5)
        oracle.connect_switches("s1", 7, "s2", 6)
        assert oracle.route("a", "b") == [7, 5]
        assert oracle.route("b", "a") == [6, 0]

    def test_route_never_through_host(self):
        """A route must not pass through an intermediate host."""
        oracle = TopologyOracle()
        oracle.add_switch("s1")
        oracle.add_switch("s2")
        for host, switch, port in (("a", "s1", 0), ("b", "s2", 0)):
            oracle.add_host(host)
            oracle.connect_host(host, switch, port)
        # "m" is attached to both switches (dual-homed host).
        oracle.add_host("m")
        oracle.connect_host("m", "s1", 1)
        oracle.connect_host("m", "s2", 1)
        with pytest.raises(RoutingError):
            oracle.route("a", "b")  # only path would go through host m

    def test_no_route_raises(self):
        oracle = TopologyOracle()
        oracle.add_host("lonely")
        oracle.add_host("also-lonely")
        with pytest.raises(RoutingError):
            oracle.route("lonely", "also-lonely")

    def test_probes_cover_all_other_hosts(self):
        oracle = self._single_switch()
        probes = oracle.probes_from("h0")
        assert sorted(p.position for p in probes) == ["h1", "h2"]
        for probe in probes:
            assert probe.forward_route
            assert probe.reply_route


class TestNetworkMap:
    def _map(self, mac=1):
        network_map = NetworkMap(round_index=1, completed_at=0)
        network_map.entries["h1"] = MapEntry(
            "h1", MacAddress(mac), McpAddress(10), (1,)
        )
        return network_map

    def test_consistency(self):
        assert self._map().consistent_with(self._map())
        assert not self._map(1).consistent_with(self._map(2))

    def test_render_contains_entries(self):
        text = self._map().render()
        assert "h1" in text
        assert "route=[1]" in text

    def test_entry_by_mac(self):
        network_map = self._map(5)
        assert network_map.entry_by_mac(MacAddress(5)).position == "h1"
        assert network_map.entry_by_mac(MacAddress(6)) is None


class TestMcpProtocol:
    def test_highest_address_becomes_mapper(self, sim):
        network = build_paper_testbed(sim)
        network.settle()
        assert network.mapper().name == "sparc2"
        assert network.host("sparc2").mcp.is_mapper
        assert not network.host("pc").mcp.is_mapper

    def test_mapping_installs_routing_tables_everywhere(self, sim):
        network = build_paper_testbed(sim)
        network.settle()
        macs = {h.interface.mac for h in network.hosts.values()}
        for name, host in network.hosts.items():
            expected = macs - {host.interface.mac}
            assert set(host.interface.routing_table) == expected

    def test_map_contains_all_other_hosts(self, sim):
        network = build_paper_testbed(sim)
        network.settle()
        network_map = network.mapper().mcp.current_map
        assert network_map is not None
        assert set(network_map.entries) == {"pc", "sparc1"}

    def test_remapping_happens_periodically(self, sim):
        network = build_paper_testbed(sim, map_interval_ps=20 * MS)
        network.settle()
        mapper = network.mapper().mcp
        rounds_before = mapper.rounds_run
        sim.run_for(100 * MS)
        assert mapper.rounds_run >= rounds_before + 4

    def test_dead_node_removed_until_next_round(self, sim):
        """Paper §4.3.2: a node that cannot answer scouts is removed from
        the network until the next mapping packet."""
        network = build_paper_testbed(sim, map_interval_ps=20 * MS)
        network.settle()
        pc = network.host("pc")
        # Silence pc's MCP: it no longer answers scouts.
        pc.interface.set_mapping_handler(lambda payload: None)
        sim.run_for(40 * MS)
        mapper = network.mapper().mcp
        assert "pc" not in mapper.current_map.entries
        sparc1 = network.host("sparc1").interface
        assert pc.interface.mac not in sparc1.routing_table
        # Revive: next round restores the node.
        pc.interface.set_mapping_handler(pc.mcp._on_mapping_payload)
        sim.run_for(40 * MS)
        assert "pc" in mapper.current_map.entries
        assert pc.interface.mac in sparc1.routing_table

    def test_mapper_death_recovery(self, sim):
        """If the mapper dies, the next-highest MCP reclaims mapping."""
        network = build_paper_testbed(sim, map_interval_ps=10 * MS)
        network.settle()
        mapper = network.mapper()
        # Kill the mapper's MCP entirely.
        mapper.interface.set_mapping_handler(lambda payload: None)
        mapper.mcp.run_round = lambda: None  # type: ignore[assignment]
        # Recovery can take a few silence windows: the lowest node may
        # reclaim first, then defer once it hears the higher survivor.
        sim.run_for((4 * MAPPER_SILENCE_ROUNDS + 4) * 10 * MS)
        sparc1 = network.host("sparc1").mcp
        assert sparc1.rounds_run > 0
        # The surviving pair still reaches a consistent view.
        assert "pc" in sparc1.current_map.entries

    def test_malformed_mapping_payload_counted(self, sim):
        network = build_paper_testbed(sim)
        network.settle()
        mcp = network.host("pc").mcp
        before = mcp.malformed_mapping
        mcp._on_mapping_payload(b"")
        mcp._on_mapping_payload(b"\x7f")
        mcp._on_mapping_payload(b"\x01\x00")  # truncated scout
        assert mcp.malformed_mapping == before + 3


class TestNetworkBuilder:
    def test_duplicate_names_rejected(self, sim):
        network = MyrinetNetwork(sim)
        network.add_switch("s")
        network.add_host("h")
        with pytest.raises(Exception):
            network.add_switch("s")
        with pytest.raises(Exception):
            network.add_host("h")

    def test_auto_addresses_unique_and_increasing(self, sim):
        network = MyrinetNetwork(sim)
        network.add_switch("s")
        hosts = [network.add_host(f"h{i}") for i in range(4)]
        macs = [h.interface.mac for h in hosts]
        assert len(set(macs)) == 4
        mcps = [h.interface.mcp_address.value for h in hosts]
        assert mcps == sorted(mcps)

    def test_connection_lookup(self, sim):
        network = build_paper_testbed(sim)
        connection = network.connection_for("pc")
        assert connection.switch == "switch"
        assert connection.port == 0

    def test_two_switch_network_maps(self, sim):
        """Mapping works across a multi-switch topology."""
        network = MyrinetNetwork(sim, map_interval_ps=20 * MS)
        network.add_switch("s1")
        network.add_switch("s2")
        network.add_host("a")
        network.add_host("b")
        network.add_host("c")
        network.connect("a", "s1", 0)
        network.connect("b", "s1", 1)
        network.connect("c", "s2", 0)
        network.connect_switches("s1", 6, "s2", 7)
        network.settle()
        mapper = network.mapper().mcp
        assert set(mapper.current_map.entries) == {"a", "b"}
        a = network.host("a").interface
        c = network.host("c").interface
        received = []
        c.set_data_handler(lambda src, p: received.append(p))
        a.send_to(c.interface_mac if hasattr(c, "interface_mac") else c.mac,
                  b"cross-switch")
        sim.run_for(5 * MS)
        assert received == [b"cross-switch"]
