"""Unit tests for the cut-through Myrinet switch."""

import pytest

from repro.errors import ConfigurationError
from repro.myrinet.crc8 import crc8
from repro.myrinet.link import Link
from repro.myrinet.packet import MyrinetPacket, PACKET_TYPE_DATA, route_byte
from repro.myrinet.switch import FLUSH_QUANTUM, MyrinetSwitch
from repro.myrinet.symbols import GAP, GO, STOP, data_symbols, symbol_bytes

CHAR = 12_500


class _Endpoint:
    """A raw endpoint collecting symbols."""

    def __init__(self):
        self.symbols = []
        self.tx = None

    def on_burst(self, burst, channel):
        self.symbols.extend(burst)

    def frames(self):
        """Split collected symbols into frames on GAPs."""
        frames, current = [], []
        for symbol in self.symbols:
            if symbol.is_data:
                current.append(symbol.value)
            elif symbol == GAP and current:
                frames.append(bytes(current))
                current = []
        return frames

    def send_packet(self, packet):
        burst = data_symbols(packet.to_bytes())
        burst.append(GAP)
        self.tx.send(burst)

    def send_symbols(self, symbols):
        self.tx.send(symbols)


def build_switch(sim, ports=3, **kwargs):
    switch = MyrinetSwitch(sim, num_ports=8, **kwargs)
    endpoints = []
    for port in range(ports):
        endpoint = _Endpoint()
        link = Link(sim, f"l{port}", char_period_ps=CHAR, propagation_ps=0)
        endpoint.tx = link.attach_a(endpoint)
        switch.attach_link(port, link, "b", flow_transport="symbols")
        endpoints.append(endpoint)
    return switch, endpoints


def test_forwards_and_strips_route_byte(sim):
    switch, eps = build_switch(sim)
    packet = MyrinetPacket.for_route([1], PACKET_TYPE_DATA, b"hello")
    eps[0].send_packet(packet)
    sim.run()
    frames = eps[1].frames()
    assert len(frames) == 1
    parsed = MyrinetPacket.from_bytes(frames[0])
    assert parsed.payload == b"hello"
    assert parsed.route == []
    assert crc8(frames[0]) == 0
    assert switch.stats["frames_forwarded"] == 1


def test_multi_hop_crc_recomputed_each_strip(sim):
    """Paper §4.1: the trailing CRC-8 is recomputed after each byte is
    removed."""
    switch, eps = build_switch(sim)
    packet = MyrinetPacket.for_route([2], PACKET_TYPE_DATA, b"payload")
    eps[1].send_packet(packet)
    sim.run()
    frames = eps[2].frames()
    assert len(frames) == 1
    assert crc8(frames[0]) == 0


def test_corruption_syndrome_survives_the_hop(sim):
    """A corrupted packet must NOT arrive with a valid CRC: the per-hop
    update may not launder upstream corruption (§4.3.3 depends on it)."""
    switch, eps = build_switch(sim)
    packet = MyrinetPacket.for_route([1], PACKET_TYPE_DATA, b"corrupt me")
    raw = bytearray(packet.to_bytes())
    raw[5] ^= 0x20  # flip a bit mid-packet, CRC now stale
    burst = data_symbols(bytes(raw))
    burst.append(GAP)
    eps[0].send_symbols(burst)
    sim.run()
    frames = eps[1].frames()
    assert len(frames) == 1
    assert crc8(frames[0]) != 0  # still detectably corrupt


def test_bad_route_byte_discards_frame(sim):
    switch, eps = build_switch(sim)
    packet = MyrinetPacket.for_route([7], PACKET_TYPE_DATA, b"dead end")
    eps[0].send_packet(packet)
    sim.run()
    assert switch.stats["routing_errors"] == 1
    assert eps[1].frames() == []
    assert eps[2].frames() == []


def test_route_back_to_ingress_rejected(sim):
    switch, eps = build_switch(sim)
    packet = MyrinetPacket.for_route([0], PACKET_TYPE_DATA, b"loop")
    eps[0].send_packet(packet)
    sim.run()
    assert switch.stats["routing_errors"] == 1


def test_contention_serializes_frames(sim):
    """Two inputs racing for one output: both frames arrive intact."""
    switch, eps = build_switch(sim)
    a = MyrinetPacket.for_route([2], PACKET_TYPE_DATA, b"from-zero" * 10)
    b = MyrinetPacket.for_route([2], PACKET_TYPE_DATA, b"from-one" * 10)
    eps[0].send_packet(a)
    eps[1].send_packet(b)
    sim.run()
    frames = eps[2].frames()
    assert len(frames) == 2
    payloads = {MyrinetPacket.from_bytes(f).payload for f in frames}
    assert payloads == {a.payload, b.payload}
    assert switch.stats["symbols_dropped"] == 0


def test_many_packets_all_delivered_in_order(sim):
    switch, eps = build_switch(sim)
    for index in range(30):
        eps[0].send_packet(
            MyrinetPacket.for_route([1], PACKET_TYPE_DATA,
                                    bytes([index]) * 20)
        )
    sim.run()
    frames = eps[1].frames()
    assert len(frames) == 30
    for index, frame in enumerate(frames):
        assert MyrinetPacket.from_bytes(frame).payload == bytes([index]) * 20


def test_lost_gap_merges_frames_into_one(sim):
    """Paper §4.3.1: a lost packet-terminating GAP merges packets.  The
    merged frame reaches the destination as ONE packet whose payload has
    the second packet appended — the "misinterpretation of packet tails
    and headers" that loses both messages at the upper layers.  (Because
    CRC-8 with a zero init has residue zero over a concatenation of two
    valid packets, the merge is NOT caught by the link CRC.)"""
    switch, eps = build_switch(sim)
    p1 = MyrinetPacket.for_route([1], PACKET_TYPE_DATA, b"first")
    p2 = MyrinetPacket.for_route([1], PACKET_TYPE_DATA, b"second")
    burst = data_symbols(p1.to_bytes())       # no GAP: the "lost" delimiter
    eps[0].send_symbols(burst)
    eps[0].send_packet(p2)
    sim.run()
    frames = eps[1].frames()
    assert len(frames) == 1                   # merged
    parsed = MyrinetPacket.from_bytes(frames[0])
    assert parsed.payload.startswith(b"first")
    assert b"second" in parsed.payload        # tail swallowed as payload
    assert parsed.payload != p1.payload


def test_long_timeout_frees_occupied_path(sim):
    """A frame whose GAP never arrives holds its output port until the
    long-period timeout tears the path down (paper §4.3.1)."""
    switch, eps = build_switch(sim, long_timeout_periods=8_000)  # 100 us
    headless = MyrinetPacket.for_route([1], PACKET_TYPE_DATA, b"no tail")
    eps[0].send_symbols(data_symbols(headless.to_bytes()))  # no GAP, then quiet
    sim.run_for(20_000 * CHAR)
    blocked = MyrinetPacket.for_route([1], PACKET_TYPE_DATA, b"queued")
    eps[2].send_packet(blocked)
    sim.run()
    assert switch.stats["long_timeouts"] == 1
    payloads = [
        MyrinetPacket.from_bytes(f).payload
        for f in eps[1].frames() if crc8(f) == 0
    ]
    assert b"queued" in payloads


def test_backpressure_via_stop_pauses_output(sim):
    """A STOP from the downstream receiver halts the output port; the
    symbols wait in the outbox until the state decays."""
    switch, eps = build_switch(sim)
    eps[1].send_symbols([STOP])  # endpoint 1 asserts backpressure
    packet = MyrinetPacket.for_route([1], PACKET_TYPE_DATA, b"held")
    eps[0].send_packet(packet)
    sim.run()
    # After the decay the frame is released and delivered.
    assert len(eps[1].frames()) == 1
    assert switch.port_flow(1).tx_state.stops_received == 1


def test_flush_quantum_bounds_burst_size(sim):
    switch, eps = build_switch(sim)
    big = MyrinetPacket.for_route([1], PACKET_TYPE_DATA,
                                  bytes(3 * FLUSH_QUANTUM))
    eps[0].send_packet(big)
    sim.run()
    frames = eps[1].frames()
    assert len(frames) == 1
    assert MyrinetPacket.from_bytes(frames[0]).payload == big.payload


def test_port_validation(sim):
    switch = MyrinetSwitch(sim)
    link = Link(sim, "l")
    endpoint = _Endpoint()
    endpoint.tx = link.attach_a(endpoint)
    switch.attach_link(3, link, "b")
    with pytest.raises(ConfigurationError):
        switch.attach_link(3, Link(sim, "l2"), "b")
    with pytest.raises(ConfigurationError):
        switch.attach_link(4, Link(sim, "l3"), "z")
    with pytest.raises(ConfigurationError):
        MyrinetSwitch(sim, num_ports=1)
    with pytest.raises(ConfigurationError):
        MyrinetSwitch(sim, num_ports=100)


def test_port_stats_are_per_port(sim):
    switch, eps = build_switch(sim)
    eps[0].send_packet(MyrinetPacket.for_route([1], PACKET_TYPE_DATA, b"x"))
    sim.run()
    assert switch.port_stats(0)["frames_forwarded"] == 1
    assert switch.port_stats(1)["frames_forwarded"] == 0


def test_control_symbols_not_forwarded(sim):
    """STOP/GO are link-local: the switch consumes them."""
    switch, eps = build_switch(sim)
    eps[0].send_symbols([STOP, GO, STOP])
    sim.run()
    assert eps[1].symbols == []
    assert eps[2].symbols == []
    assert switch.port_flow(0).tx_state.stops_received == 2
