"""Remaining edge-path coverage across packages."""

import pytest

from repro.core import FaultInjectorDevice, InjectorSession
from repro.core.faults import control_symbol_swap
from repro.errors import ConfigurationError
from repro.hw.registers import MatchMode
from repro.myrinet.network import build_paper_testbed
from repro.myrinet.symbols import GAP, GO
from repro.nftape import (
    DutyCyclePlan,
    FaultPlan,
    Testbed,
    WorkloadConfig,
)
from repro.nftape.experiment import TestbedOptions
from repro.nftape.workload import AllPairsWorkload
from repro.sim.timebase import MS, US


class TestWorkloadEdges:
    def test_forbidding_every_byte_rejected(self):
        testbed = Testbed(TestbedOptions())
        testbed.settle()
        with pytest.raises(ConfigurationError):
            AllPairsWorkload(
                testbed.network,
                WorkloadConfig(forbidden_bytes=set(range(256))),
            )

    def test_stop_prevents_further_sends(self):
        testbed = Testbed(TestbedOptions())
        testbed.settle()
        workload = AllPairsWorkload(
            testbed.network,
            WorkloadConfig(send_interval_ps=500 * US, flood_ping=False),
        )
        workload.start()
        testbed.sim.run_for(2 * MS)
        workload.stop()
        sent = workload.messages_attempted
        testbed.sim.run_for(2 * MS)
        assert workload.messages_attempted == sent


class TestSerialPlans:
    def test_fault_plan_rearm_over_serial(self):
        """The serial re-arm path: MM commands pace once-mode firing."""
        testbed = Testbed(TestbedOptions())
        testbed.settle()
        config = control_symbol_swap(GAP, GO, MatchMode.ONCE)
        plan = FaultPlan("R", config, rearm_interval_ps=5 * MS,
                         use_serial=True)
        plan.install(testbed)
        testbed.drain_session()
        injector = testbed.device.injector("R")
        injector._once_fired = True
        plan.start(testbed)
        testbed.sim.run_for(12 * MS)
        plan.stop(testbed)
        assert testbed.session.commands_sent > 12  # upload + re-arms
        assert testbed.session.errors_seen == 0

    def test_duty_cycle_over_serial(self):
        testbed = Testbed(TestbedOptions())
        testbed.settle()
        plan = DutyCyclePlan("R",
                             control_symbol_swap(GAP, GO, MatchMode.ON),
                             on_ps=5 * MS, off_ps=5 * MS, use_serial=True)
        plan.install(testbed)
        testbed.drain_session()
        plan.start(testbed)
        testbed.sim.run_for(25 * MS)
        plan.stop(testbed)
        modes = [line for command, line in testbed.session.responses
                 if command.startswith("MM R")]
        assert any("mm=on" in line for line in modes)
        assert any("mm=off" in line for line in modes)


class TestSessionEdges:
    def test_unsolicited_line_is_kept(self, sim):
        device = FaultInjectorDevice(sim)
        network = build_paper_testbed(sim, device=device)
        session = InjectorSession(sim, device)
        network.settle()
        # Push a response byte stream with no command in flight.
        device.serial_line.send("b", b"OK spurious\n")
        sim.run_for(5 * MS)
        assert ("<unsolicited>", "OK spurious") in session.responses

    def test_selftest_over_full_serial_path(self, sim):
        device = FaultInjectorDevice(sim)
        network = build_paper_testbed(sim, device=device)
        session = InjectorSession(sim, device)
        network.settle()
        responses = []
        session.send("PT", responses.append)
        sim.run_for(10 * MS)
        assert responses and responses[0].startswith("OK ram=pass")


class TestNetworkBuilderEdges:
    def test_unknown_host_in_connect(self, sim):
        from repro.myrinet.network import MyrinetNetwork
        network = MyrinetNetwork(sim)
        network.add_switch("sw")
        with pytest.raises(KeyError):
            network.connect("ghost", "sw", 0)

    def test_connection_for_unknown_host(self, sim):
        network = build_paper_testbed(sim)
        with pytest.raises(ConfigurationError):
            network.connection_for("ghost")

    def test_settle_is_idempotent(self, sim):
        network = build_paper_testbed(sim)
        network.settle()
        events = sim.events_fired
        network.start()  # second start is a no-op
        assert sim.events_fired == events


class TestTimeScaledLongTimeout:
    def test_scaled_timeout_applies_to_hosts_and_switch(self):
        testbed = Testbed(TestbedOptions(long_timeout_periods=8_000))
        testbed.settle()
        switch = testbed.network.switch("switch")
        assert switch.long_timeout_ps == 8_000 * 12_500
        pc = testbed.network.host("pc").interface
        assert pc.long_timeout_ps == 8_000 * 12_500
