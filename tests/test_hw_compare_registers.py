"""Unit tests for the compare unit and the injector register file."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.compare import CompareUnit
from repro.hw.registers import (
    CorruptMode,
    InjectorConfig,
    MatchMode,
    pattern_for_bytes,
)
from repro.myrinet.symbols import GAP, STOP, data_symbol


class TestCompareUnit:
    def test_window_shifts_newest_to_low_byte(self):
        unit = CompareUnit()
        for value in (0x11, 0x22, 0x33, 0x44):
            unit.shift(data_symbol(value))
        assert unit.window == 0x11223344
        unit.shift(data_symbol(0x55))
        assert unit.window == 0x22334455

    def test_ctl_bits_track_dc(self):
        unit = CompareUnit()
        unit.shift(data_symbol(1))
        unit.shift(STOP)
        unit.shift(data_symbol(2))
        unit.shift(GAP)
        # lane0 = GAP (control=0), lane1 = data(1), lane2 = STOP(0), lane3 = data(1)
        assert unit.ctl_bits == 0b1010

    def test_filled_after_four_symbols(self):
        unit = CompareUnit()
        for index in range(3):
            unit.shift(data_symbol(index))
            assert not unit.filled
        unit.shift(data_symbol(3))
        assert unit.filled

    def test_exact_match(self):
        unit = CompareUnit()
        for byte in b"\x18\x18\xab\xcd":
            unit.shift(data_symbol(byte))
        config = InjectorConfig(compare_data=0x1818ABCD,
                                compare_mask=0xFFFFFFFF)
        assert unit.evaluate(config)
        assert unit.matches == 1

    def test_mask_enables_dont_care_bits(self):
        """Paper §3.3: the mask applies to the XOR result, so any number
        of bits from 0 to 32 can participate."""
        unit = CompareUnit()
        for byte in b"\x00\x00\x18\x18":
            unit.shift(data_symbol(byte))
        config = InjectorConfig(compare_data=0x1818,
                                compare_mask=0x0000FFFF)
        assert unit.evaluate(config)
        config2 = InjectorConfig(compare_data=0x9999 << 16 | 0x1818,
                                 compare_mask=0x0000FFFF)
        assert unit.evaluate(config2)  # upper bits are don't-care

    def test_control_lane_discrimination(self):
        """The same byte value matches differently for data vs control."""
        unit = CompareUnit()
        unit.shift(data_symbol(0))
        unit.shift(data_symbol(0))
        unit.shift(data_symbol(0))
        unit.shift(STOP)  # control 0x0F in lane 0
        config = InjectorConfig(
            compare_data=STOP.value, compare_mask=0xFF,
            compare_ctl=0x0, compare_ctl_mask=0x1,
        )
        assert unit.evaluate(config)
        unit.shift(data_symbol(STOP.value))  # same value, data symbol
        assert not unit.evaluate(config)

    def test_reset_clears_window(self):
        unit = CompareUnit()
        for index in range(4):
            unit.shift(data_symbol(0xFF))
        unit.reset()
        assert unit.window == 0
        assert not unit.filled


class TestInjectorConfig:
    def test_defaults_disarmed(self):
        config = InjectorConfig()
        assert config.match_mode is MatchMode.OFF
        assert not config.armed

    def test_width_validation(self):
        with pytest.raises(ConfigurationError):
            InjectorConfig(compare_data=1 << 32)
        with pytest.raises(ConfigurationError):
            InjectorConfig(compare_ctl=0x10)

    def test_copy_replaces_single_field(self):
        config = InjectorConfig(compare_data=0x1818)
        modified = config.copy(match_mode=MatchMode.ONCE)
        assert modified.compare_data == 0x1818
        assert modified.match_mode is MatchMode.ONCE
        assert config.match_mode is MatchMode.OFF  # original untouched

    def test_describe_mentions_key_fields(self):
        text = InjectorConfig(compare_data=0x1818,
                              corrupt_mode=CorruptMode.REPLACE).describe()
        assert "00001818" in text
        assert "replace" in text


class TestPatternForBytes:
    def test_right_alignment(self):
        data, mask = pattern_for_bytes(b"\x18\x19")
        assert data == 0x1819
        assert mask == 0xFFFF

    def test_full_width(self):
        data, mask = pattern_for_bytes(b"\x01\x02\x03\x04")
        assert data == 0x01020304
        assert mask == 0xFFFFFFFF

    def test_length_validation(self):
        with pytest.raises(ConfigurationError):
            pattern_for_bytes(b"")
        with pytest.raises(ConfigurationError):
            pattern_for_bytes(b"12345")
