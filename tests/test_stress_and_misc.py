"""Stress and miscellaneous coverage: a fully-populated switch, the
exception hierarchy, and capture rendering."""

import pytest

from repro import errors
from repro.core.monitor import CaptureRecord
from repro.hw.injector import InjectionEvent
from repro.hostsim import HostStack, MessageSink, UdpGenerator
from repro.myrinet.network import MyrinetNetwork
from repro.myrinet.symbols import GAP, data_symbols
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import MS, US


class TestFullyPopulatedSwitch:
    def test_seven_hosts_all_pairs(self, sim):
        """Seven hosts saturating a single 8-port switch: every message
        delivered, every routing table complete."""
        network = MyrinetNetwork(sim, rng=DeterministicRng(5),
                                 map_interval_ps=50 * MS)
        network.add_switch("sw")
        names = [f"h{index}" for index in range(7)]
        for port, name in enumerate(names):
            network.add_host(name)
            network.connect(name, "sw", port)
        network.settle(10 * MS)

        for name in names:
            assert len(network.host(name).interface.routing_table) == 6

        stacks = {name: HostStack(sim, network.host(name).interface)
                  for name in names}
        sinks = {name: MessageSink(stacks[name], 5000) for name in names}
        generators = []
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                generator = UdpGenerator(
                    sim, stacks[src], network.host(dst).interface.mac,
                    5000, payload_size=48, interval_ps=500 * US, count=5,
                )
                generator.start()
                generators.append(generator)
        sim.run_for(20 * MS)
        sent = sum(g.sent for g in generators)
        received = sum(s.received for s in sinks.values())
        assert sent == 7 * 6 * 5
        assert received == sent  # clean network loses nothing

    def test_mapper_is_highest_of_seven(self, sim):
        network = MyrinetNetwork(sim, rng=DeterministicRng(5))
        network.add_switch("sw")
        for port in range(7):
            network.add_host(f"h{port}")
            network.connect(f"h{port}", "sw", port)
        network.settle(10 * MS)
        assert network.mapper().name == "h6"
        network_map = network.mapper().mcp.current_map
        assert len(network_map.entries) == 6


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in ("SimulationError", "ConfigurationError",
                     "ProtocolError", "CrcError", "RoutingError",
                     "EncodingError", "ChecksumError", "DeviceError",
                     "CommandError", "CampaignError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_specialization_relationships(self):
        assert issubclass(errors.CrcError, errors.ProtocolError)
        assert issubclass(errors.RoutingError, errors.ProtocolError)
        assert issubclass(errors.EncodingError, errors.ProtocolError)
        assert issubclass(errors.ChecksumError, errors.ProtocolError)
        assert issubclass(errors.CommandError, errors.DeviceError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.CrcError("caught at the base")


class TestCaptureRecord:
    def _record(self):
        event = InjectionEvent(
            segment_index=5, window_before=0x41424344, ctl_before=0xF,
            window_after=0x41FF4344, ctl_after=0xF, lanes_rewritten=1,
            lanes_unreachable=0, forced=False,
        )
        return CaptureRecord(
            time_ps=1000, direction="R", event=event,
            before=data_symbols(b"pre-bytes"),
            after=data_symbols(b"post-bytes"),
        )

    def test_data_bytes_concatenates_window(self):
        record = self._record()
        assert record.data_bytes() == b"pre-bytespost-bytes"

    def test_size_accounts_for_symbols(self):
        record = self._record()
        assert record.size_bytes == 2 * 19 + 16

    def test_control_symbols_excluded_from_data(self):
        record = self._record()
        record.before.append(GAP)
        assert record.data_bytes() == b"pre-bytespost-bytes"
