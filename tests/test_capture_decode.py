"""Decode-pipeline tests: frame reassembly, verdicts, injection marking.

The end-to-end class at the bottom is the PR's acceptance test: a real
fault-injection campaign run under capture + telemetry sessions, written
to a binary ``.rcap``, decoded offline, with every injection joined to a
symbol offset, a §4.4 classification, and a telemetry span id.
"""

import pytest

from repro.capture.decode import (
    analyze_capture,
    analyze_window,
    corruption_window_symbols,
    reassemble_frames,
)
from repro.capture.format import CaptureWindow
from repro.hostsim.ip import HEADER_LEN as IP_HEADER_LEN
from repro.hostsim.ip import IpAddress, IpLiteHeader
from repro.hostsim.udp import UdpDatagram
from repro.myrinet.addresses import MacAddress
from repro.myrinet.packet import PACKET_TYPE_DATA, MyrinetPacket
from repro.myrinet.symbols import GAP, GO, IDLE, STOP, data_symbols


# ----------------------------------------------------------------------
# frame builders
# ----------------------------------------------------------------------

DST = MacAddress(0x0B)
SRC = MacAddress(0x0A)

#: Offset of the first UDP user-payload byte in a routeless data frame:
#: type (4) + MAC header (12) + IP-lite (12) + UDP header (8).
UDP_PAYLOAD_OFFSET = 4 + 12 + IP_HEADER_LEN + 8


def make_udp_wire_bytes(udp_payload=b"abcdwxyz"):
    """A routeless data frame carrying a checksummed UDP datagram,
    byte-identical to what :mod:`repro.hostsim.sockets` transmits."""
    datagram = UdpDatagram(src_port=1111, dst_port=2222,
                           payload=udp_payload)
    ip = IpLiteHeader(src=IpAddress.for_mac(SRC),
                      dst=IpAddress.for_mac(DST))
    udp_bytes = bytearray(datagram.to_bytes(ip))
    ip.total_length = IP_HEADER_LEN + len(udp_bytes)
    return udp_bytes, ip


def frame_from_udp(udp_bytes, ip):
    packet_payload = (
        DST.to_bytes() + SRC.to_bytes() + ip.to_bytes() + bytes(udp_bytes)
    )
    packet = MyrinetPacket(route=[], packet_type=PACKET_TYPE_DATA,
                           payload=packet_payload)
    return packet.to_bytes()


def window_over(clean, corrupted, j, **overrides):
    """A CaptureWindow whose injector state says "the 4 lanes ending at
    byte ``j`` were rewritten from ``clean`` to ``corrupted``"."""
    fields = dict(
        experiment_index=0,
        time_ps=1000,
        direction="R",
        segment_index=j,
        window_before=int.from_bytes(clean[j - 3:j + 1], "big"),
        ctl_before=0xF,
        window_after=int.from_bytes(corrupted[j - 3:j + 1], "big"),
        ctl_after=0xF,
        lanes_rewritten=sum(
            1 for k in range(j - 3, j + 1) if clean[k] != corrupted[k]
        ),
        lanes_unreachable=0,
        forced=False,
        before=[],
        after=data_symbols(bytes(corrupted)) + [GAP],
    )
    fields.update(overrides)
    return CaptureWindow(**fields)


# ----------------------------------------------------------------------
# reassembly
# ----------------------------------------------------------------------


class TestReassembly:
    def test_offsets_and_trailing_partial(self):
        stream = (
            [IDLE] + data_symbols(b"ab") + [STOP, GAP]
            + [GO] + data_symbols(b"cd")
        )
        frames = reassemble_frames(stream)
        assert len(frames) == 2
        first, second = frames
        assert first.data == b"ab"
        assert first.offsets == [1, 2]
        assert first.complete
        assert second.data == b"cd"
        assert second.offsets == [6, 7]
        assert not second.complete

    def test_byte_index_of(self):
        stream = [IDLE] + data_symbols(b"xyz") + [GAP]
        [frame] = reassemble_frames(stream)
        assert frame.byte_index_of(2) == 1
        assert frame.byte_index_of(0) is None

    def test_empty_stream(self):
        assert reassemble_frames([]) == []
        assert reassemble_frames([IDLE, GAP, STOP]) == []


class TestCorruptionWindow:
    def test_stream_order_and_flags(self):
        # Lane 0 is the most recent symbol -> last in stream order;
        # ctl bit k says lane k carried a data symbol.
        symbols = corruption_window_symbols(0xAABBCCDD, 0b0101)
        assert [s.value for s in symbols] == [0xAA, 0xBB, 0xCC, 0xDD]
        assert [s.is_data for s in symbols] == [False, True, False, True]


# ----------------------------------------------------------------------
# verdicts
# ----------------------------------------------------------------------


class TestVerdicts:
    def test_clean_frame_full_udp_decode(self):
        udp_bytes, ip = make_udp_wire_bytes()
        raw = frame_from_udp(udp_bytes, ip)
        j = UDP_PAYLOAD_OFFSET  # identity "corruption" for the analyzer
        analysis = analyze_window(window_over(raw, raw, j))
        [frame] = analysis.frames
        assert frame.crc_ok is True
        assert frame.type_name == "data"
        assert frame.route_len == 0
        udp = frame.udp
        assert udp["src_port"] == 1111
        assert udp["dst_port"] == 2222
        assert udp["checksum_ok"] is True
        assert udp["payload_len"] == 8
        # Identity rewrite: nothing changed, and the analyzer says so.
        assert not analysis.capture.changed
        assert "no lane rewritten" in analysis.effect

    def test_crc_broken_verdict_with_exact_offset(self):
        """A raw byte flip (no CRC fix-up) breaks the frame CRC-8; the
        decoder points at the exact injected symbol."""
        udp_bytes, ip = make_udp_wire_bytes()
        clean = frame_from_udp(udp_bytes, ip)
        j = UDP_PAYLOAD_OFFSET + 2
        corrupted = bytearray(clean)
        corrupted[j] ^= 0x40
        analysis = analyze_window(window_over(clean, corrupted, j))

        assert analysis.mark.matched
        assert analysis.mark.injected_offsets == [j]
        [change] = analysis.mark.changes
        assert change["lane"] == 0
        assert change["offset"] == j
        assert analysis.hit_frames == [0]
        [frame] = analysis.frames
        assert frame.crc_ok is False
        assert frame.packet_type == PACKET_TYPE_DATA
        assert frame.byte_index_of(j) == j  # before==[], offsets align
        assert "CRC-8 broken" in analysis.effect

    def test_crc_ok_udp_checksum_broken(self):
        """Corruption + CRC fix-up (paper §3.3): the link-level CRC is
        valid again but the end-to-end UDP checksum catches it."""
        udp_bytes, ip = make_udp_wire_bytes()
        corrupted_udp = bytearray(udp_bytes)
        corrupted_udp[8] ^= 0x01  # first payload byte, checksum now stale
        clean = frame_from_udp(udp_bytes, ip)
        fixed = frame_from_udp(corrupted_udp, ip)  # CRC-8 recomputed
        j = UDP_PAYLOAD_OFFSET
        analysis = analyze_window(window_over(clean, fixed, j))

        assert analysis.mark.matched
        assert analysis.hit_frames == [0]
        [frame] = analysis.frames
        assert frame.crc_ok is True
        assert frame.udp["checksum_ok"] is False
        assert "UDP checksum broken" in analysis.effect

    def test_aligned_16bit_swap_sails_through(self):
        """Paper §4.3.4: swapping aligned 16-bit words is invisible to
        the one's-complement checksum — the decoder surfaces that."""
        udp_bytes, ip = make_udp_wire_bytes(udp_payload=b"abcdwxyz")
        swapped_udp = bytearray(udp_bytes)
        # UDP payload starts at even offset 8: swap the first two words.
        swapped_udp[8:10], swapped_udp[10:12] = (
            udp_bytes[10:12], udp_bytes[8:10]
        )
        clean = frame_from_udp(udp_bytes, ip)
        fixed = frame_from_udp(swapped_udp, ip)
        j = UDP_PAYLOAD_OFFSET + 3  # lanes 3..0 = the 4 swapped bytes
        analysis = analyze_window(window_over(clean, fixed, j))

        assert analysis.mark.matched
        assert len(analysis.mark.injected_offsets) == 4
        [frame] = analysis.frames
        assert frame.crc_ok is True
        assert frame.udp["checksum_ok"] is True
        assert "STILL VALID" in analysis.effect

    def test_framing_hit_between_frames(self):
        """An injected control symbol between frames hits no frame."""
        clean = bytes([0x10, 0x11, 0x12, 0x0C])  # treated as symbols
        window = CaptureWindow(
            experiment_index=0, time_ps=0, direction="L", segment_index=9,
            window_before=int.from_bytes(clean, "big"),
            ctl_before=0b1110,  # lane 0 was the control symbol
            window_after=int.from_bytes(clean[:3] + b"\x00", "big"),
            ctl_after=0b1110,
            lanes_rewritten=1, lanes_unreachable=0, forced=False,
            before=[],
            after=(
                data_symbols(clean[:3])
                + [GAP]  # corrupted control symbol: GAP value 0x0C -> 0
                + data_symbols(b"zz")
            ),
        )
        # The post window is [D(0x10), D(0x11), D(0x12), C(0x00)] --
        # make the captured stream contain it literally.
        window.after = corruption_window_symbols(
            window.window_after, window.ctl_after
        ) + data_symbols(b"zz") + [GAP]
        analysis = analyze_window(window)
        assert analysis.mark.matched
        assert analysis.hit_frames == []
        assert "between frames" in analysis.effect


# ----------------------------------------------------------------------
# end-to-end acceptance: campaign -> .rcap -> decode -> joined verdicts
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def campaign_analysis(tmp_path_factory):
    """Run a real 2-experiment capture campaign once for the module."""
    from repro.capture import CaptureSession
    from repro.core.faults import control_symbol_swap
    from repro.core.monitor import MonitorConfig
    from repro.hw.registers import MatchMode
    from repro.myrinet.symbols import GAP as GAP_SYMBOL
    from repro.myrinet.symbols import IDLE as IDLE_SYMBOL
    from repro.nftape.campaign import Campaign
    from repro.nftape.experiment import Experiment, TestbedOptions
    from repro.nftape.plan import DutyCyclePlan
    from repro.sim.timebase import MS
    from repro.telemetry import TelemetrySession
    from repro.telemetry.state import STATE

    out_dir = tmp_path_factory.mktemp("capture-e2e")
    duration_ps = 2 * MS
    monitor_config = MonitorConfig(
        enabled=True, pre_symbols=128, post_symbols=128
    )
    campaign = Campaign("capture e2e")
    for index, (source, target) in enumerate(
        [(IDLE_SYMBOL, GAP_SYMBOL), (GAP_SYMBOL, IDLE_SYMBOL)]
    ):
        plan = DutyCyclePlan(
            "RL",
            control_symbol_swap(source, target, MatchMode.ON),
            on_ps=duration_ps // 8,
            off_ps=duration_ps // 2,
            use_serial=False,
        )
        campaign.add(Experiment(
            f"e2e-{index}",
            duration_ps=duration_ps,
            plan=plan,
            testbed_options=TestbedOptions(
                seed=index,
                device_kwargs={"monitor_config": monitor_config},
            ),
        ))

    STATE.deactivate()
    with TelemetrySession(label="capture e2e"):
        with CaptureSession(out_dir=out_dir, label="capture e2e") as session:
            campaign.run()
    assert session.path is not None and session.path.exists()
    return session, analyze_capture(session.path)


class TestEndToEndAcceptance:
    def test_experiments_round_trip_with_classification_and_span(
        self, campaign_analysis
    ):
        session, analysis = campaign_analysis
        assert len(analysis.experiments) == 2
        for experiment in analysis.experiments:
            # Joined verdict: §4.4 class + telemetry span id per marker.
            assert experiment.fault_class in (
                "none", "passive", "active", "crash"
            )
            assert experiment.span_id is not None
            assert experiment.meta["seed"] == experiment.index
            assert experiment.events > 0
            assert experiment.stage_counts.get("host_send", 0) > 0

    def test_at_least_one_experiment_injected_and_captured(
        self, campaign_analysis
    ):
        _session, analysis = campaign_analysis
        injecting = [
            e for e in analysis.experiments
            if e.meta.get("injections", 0) > 0
        ]
        assert injecting, "campaign produced no injections to analyze"
        for experiment in injecting:
            assert len(experiment.windows) == experiment.meta["captures"]
            assert experiment.windows, "injections but no capture windows"
            assert experiment.stage_counts.get("inject", 0) > 0

    def test_every_changed_window_marks_exact_symbol_offsets(
        self, campaign_analysis
    ):
        """The acceptance bar: each InjectionEvent that rewrote the
        stream is matched to decoded symbol offset(s) in its window."""
        _session, analysis = campaign_analysis
        changed = [
            w for e in analysis.experiments for w in e.windows
            if w.capture.changed
        ]
        assert changed, "no changed windows captured"
        for window in changed:
            assert window.mark.matched, window.effect
            assert window.mark.injected_offsets
            total = len(window.capture.symbols)
            for offset in window.mark.injected_offsets:
                assert 0 <= offset < total
            assert len(window.mark.changes) == len(
                window.mark.injected_offsets
            )

    def test_inject_events_match_marker_counts(self, campaign_analysis):
        session, analysis = campaign_analysis
        recorder = session.recorder
        if recorder.events_dropped:  # pragma: no cover - ring overflow
            pytest.skip("ring buffer overflowed; counts not comparable")
        for experiment in analysis.experiments:
            assert experiment.stage_counts.get("inject", 0) == (
                experiment.meta.get("injections", 0)
            )

    def test_report_renders_the_join(self, campaign_analysis):
        _session, analysis = campaign_analysis
        text = analysis.report().render_text()
        assert "Failure analysis" in text
        assert "span_id:" in text
        assert "lifecycle:" in text
        tree = analysis.to_dict()
        assert tree["total_windows"] == sum(
            len(e.windows) for e in analysis.experiments
        )
