"""Additional device, stats, and FC-tap coverage."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FaultInjectorDevice, InjectorSession
from repro.core.faults import replace_bytes
from repro.fc import FcFrame, FcFrameHeader, FcInjectorTap, FcPort
from repro.fc.node import connect_fc
from repro.hw.registers import MatchMode
from repro.myrinet.network import build_paper_testbed
from repro.sim import Simulator
from repro.sim.timebase import MS


class TestDeviceStatsSurface:
    def test_device_stats_as_dict(self, sim):
        device = FaultInjectorDevice(sim)
        network = build_paper_testbed(sim, device=device)
        network.settle()
        pc = network.host("pc").interface
        sparc1 = network.host("sparc1").interface
        pc.send_to(sparc1.mac, b"payload")
        sim.run_for(2 * MS)
        snapshot = device.stats.as_dict()
        assert set(snapshot) == {"R", "L"}
        assert snapshot["R"]["frames_seen"] >= 1
        assert snapshot["R"]["crc_bad_frames"] == 0
        assert "symbols_processed" in snapshot["R"]

    def test_statistics_can_be_disabled(self, sim):
        device = FaultInjectorDevice(sim, gather_statistics=False)
        network = build_paper_testbed(sim, device=device)
        network.settle()
        pc = network.host("pc").interface
        sparc1 = network.host("sparc1").interface
        received = []
        sparc1.set_data_handler(lambda s, p: received.append(p))
        pc.send_to(sparc1.mac, b"still delivered")
        sim.run_for(2 * MS)
        assert received == [b"still delivered"]
        assert device.statistics("R").stats.frames == 0

    def test_monitor_summary_via_serial(self, sim):
        from repro.core.monitor import MonitorConfig
        device = FaultInjectorDevice(
            sim, monitor_config=MonitorConfig(enabled=True, pre_symbols=4,
                                              post_symbols=4),
        )
        network = build_paper_testbed(sim, device=device)
        session = InjectorSession(sim, device)
        network.settle()
        device.configure("R", replace_bytes(b"hit", b"HIT",
                                            match_mode=MatchMode.ONCE,
                                            crc_fixup=True))
        pc = network.host("pc").interface
        sparc1 = network.host("sparc1").interface
        pc.send_to(sparc1.mac, b"a hit here....")
        sim.run_for(2 * MS)
        parsed = []
        session.read_monitor("R", parsed.append)
        sim.run_for(10 * MS)
        assert parsed and parsed[0]["cap"] == 1
        assert parsed[0]["sdram"] > 0

    def test_crcfix_stage_accessor(self, sim):
        device = FaultInjectorDevice(sim)
        assert device.crc_fixup_stage("R").idle
        assert device.crc_fixup_stage("L").idle


class TestFcTapProperties:
    @settings(max_examples=20, deadline=None)
    @given(payloads=st.lists(st.binary(min_size=0, max_size=120),
                             min_size=1, max_size=8))
    def test_disarmed_tap_is_fully_transparent(self, payloads):
        """Arbitrary frames pass the tap byte-identically when the
        injector is disarmed."""
        sim = Simulator()
        device = FaultInjectorDevice(sim, medium="fibre-channel")
        tap = FcInjectorTap(sim, device)
        a = FcPort(sim, "a", 1, bb_credit=4)
        b = FcPort(sim, "b", 2, bb_credit=4)
        connect_fc(sim, a, b, tap=tap)
        got = []
        b.on_frame(lambda f: got.append((f.header.seq_cnt, f.payload)))
        for seq, payload in enumerate(payloads):
            a.send_frame(FcFrame(
                header=FcFrameHeader(d_id=2, s_id=1, seq_cnt=seq),
                payload=payload,
            ))
        sim.run_for(20 * MS)
        assert got == list(enumerate(payloads))
        assert b.crc_errors == 0
        assert b.stats["disparity_errors"] == 0


class TestPingPongUnderFaults:
    def test_pingpong_survives_packet_loss(self, sim):
        """Lost exchanges hit the loss timeout and the measurement
        continues (the paper's 2M-packet runs had to do the same)."""
        from repro.hostsim import HostStack, PingPong
        device = FaultInjectorDevice(sim)
        network = build_paper_testbed(sim, device=device)
        network.settle()
        # Drop the first matching ping payload (no CRC fix-up -> lost).
        device.configure("R", replace_bytes(b"\x00\x00\x00\x01",
                                            b"\x00\x00\x00\xff",
                                            match_mode=MatchMode.ONCE))
        stack_a = HostStack(sim, network.host("pc").interface)
        stack_b = HostStack(sim, network.host("sparc1").interface)
        results = []
        pingpong = PingPong(sim, stack_a, stack_b, count=10,
                            loss_timeout_ps=5 * MS,
                            on_complete=results.append)
        pingpong.start()
        sim.run_for(200 * MS)
        assert results
        assert results[0].exchanges == 10
        assert pingpong.losses >= 1
