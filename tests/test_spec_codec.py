"""The spec codec: lossless round-trips and strict, path-qualified 400s.

``spec_from_json(spec_to_json(s)) == s`` is the service's determinism
anchor — a campaign submitted over HTTP is *the same spec object* the
offline API would run.  The decode side must reject malformed documents
with :class:`ConfigurationError` (the server's 400 body), never a bare
``KeyError``/``ValueError``.
"""

import argparse
import json

import pytest

from repro.cli import _campaign_spec
from repro.core.monitor import MonitorConfig
from repro.errors import ConfigurationError
from repro.nftape.experiment import TestbedOptions
from repro.nftape.paper import table4_spec
from repro.nftape.workload import WorkloadConfig
from repro.runtime.spec import CampaignSpec, ExperimentSpec
from repro.runtime.spec_codec import (
    SPEC_CODEC_VERSION,
    spec_from_json,
    spec_to_json,
)
from repro.sim.timebase import MS

from tests.test_runtime import tiny_spec


def _cli_args(**overrides):
    defaults = dict(experiments=3, duration_ms=2.0, seed=5)
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


class TestRoundTrip:
    @pytest.mark.parametrize("spec", [
        tiny_spec(n=3, base_seed=9, name="roundtrip"),
        table4_spec(duration_ps=2 * MS),
        CampaignSpec.build("bare", [ExperimentSpec("only", 1 * MS)]),
    ], ids=["tiny", "table4", "bare"])
    def test_spec_survives_the_codec(self, spec):
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_cli_campaign_spec_with_capture_survives(self):
        """The server runs exactly what the CLI would: the capture-
        enabled campaign (MonitorConfig in device_kwargs) round-trips."""
        spec = _campaign_spec(_cli_args(), capture_enabled=True)
        restored = spec_from_json(spec_to_json(spec))
        assert restored == spec
        monitor = restored.experiments[0].testbed.device_kwargs[
            "monitor_config"]
        assert isinstance(monitor, MonitorConfig)
        assert monitor.enabled and monitor.pre_symbols == 128

    def test_workload_and_testbed_details_survive(self):
        spec = CampaignSpec.build("detail", [ExperimentSpec(
            "loaded", 1 * MS,
            workload=WorkloadConfig(payload_size=96, flood_ping=True,
                                    forbidden_bytes={3, 1, 2}),
            testbed=TestbedOptions(seed=11, settle_ps=5000,
                                   host_kwargs={"mtu": 4}),
        )], base_seed=4)
        restored = spec_from_json(spec_to_json(spec))
        assert restored == spec
        assert restored.experiments[0].workload.forbidden_bytes == {1, 2, 3}

    def test_document_is_plain_json(self):
        document = spec_to_json(table4_spec(duration_ps=2 * MS))
        assert json.loads(json.dumps(document)) == document
        assert document["version"] == SPEC_CODEC_VERSION


class TestStrictDecode:
    def test_non_mapping_is_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            spec_from_json([1, 2, 3])

    def test_missing_name_is_rejected(self):
        with pytest.raises(ConfigurationError, match="spec.name"):
            spec_from_json({"experiments": []})

    def test_unsupported_version_is_rejected(self):
        with pytest.raises(ConfigurationError, match="version"):
            spec_from_json({"name": "x", "version": 99, "experiments": []})

    def test_unknown_experiment_field_is_path_qualified(self):
        doc = spec_to_json(tiny_spec(n=1))
        doc["experiments"][0]["surprise"] = 1
        with pytest.raises(ConfigurationError,
                           match=r"spec.experiments\[0\].*surprise"):
            spec_from_json(doc)

    def test_bad_enum_value_is_rejected(self):
        doc = spec_to_json(tiny_spec(n=2))
        plan = doc["experiments"][1]["plan"]
        plan["config"]["match_mode"] = "sometimes"
        with pytest.raises(ConfigurationError, match="MatchMode"):
            spec_from_json(doc)

    def test_non_integer_duration_is_rejected(self):
        doc = spec_to_json(tiny_spec(n=1))
        doc["experiments"][0]["duration_ps"] = "fast"
        with pytest.raises(ConfigurationError, match="duration_ps"):
            spec_from_json(doc)

    def test_bool_is_not_an_integer(self):
        doc = spec_to_json(tiny_spec(n=1))
        doc["experiments"][0]["duration_ps"] = True
        with pytest.raises(ConfigurationError, match="duration_ps"):
            spec_from_json(doc)

    def test_missing_duration_is_rejected(self):
        doc = spec_to_json(tiny_spec(n=1))
        del doc["experiments"][0]["duration_ps"]
        with pytest.raises(ConfigurationError, match="duration_ps"):
            spec_from_json(doc)

    def test_non_scalar_kwarg_fails_encode_with_path(self):
        spec = CampaignSpec.build("bad", [ExperimentSpec(
            "x", 1 * MS,
            testbed=TestbedOptions(host_kwargs={"hook": object()}),
        )])
        with pytest.raises(ConfigurationError, match="host_kwargs"):
            spec_to_json(spec)
