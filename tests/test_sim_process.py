"""Tests for the generator-based process API."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import Process, Signal
from repro.sim.timebase import US


class TestSleep:
    def test_process_sleeps_in_sim_time(self, sim):
        trace = []

        def body():
            trace.append(("start", sim.now))
            yield 100
            trace.append(("mid", sim.now))
            yield 250
            trace.append(("end", sim.now))

        Process.spawn(sim, body())
        sim.run()
        assert trace == [("start", 0), ("mid", 100), ("end", 350)]

    def test_spawn_delay(self, sim):
        times = []

        def body():
            times.append(sim.now)
            yield 1

        Process.spawn(sim, body(), delay=500)
        sim.run()
        assert times == [500]

    def test_negative_sleep_rejected(self, sim):
        def body():
            yield -1

        Process.spawn(sim, body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_bad_yieldable_rejected(self, sim):
        def body():
            yield "soon"

        Process.spawn(sim, body())
        with pytest.raises(SimulationError):
            sim.run()


class TestSignals:
    def test_wait_and_fire_passes_value(self, sim):
        signal = Signal("data-ready")
        got = []

        def waiter():
            value = yield signal
            got.append((sim.now, value))

        def firer():
            yield 75
            signal.fire("payload")

        Process.spawn(sim, waiter())
        Process.spawn(sim, firer())
        sim.run()
        assert got == [(75, "payload")]
        assert signal.fires == 1

    def test_fire_wakes_all_waiters_once(self, sim):
        signal = Signal()
        woken = []

        def waiter(tag):
            yield signal
            woken.append(tag)

        for tag in ("a", "b", "c"):
            Process.spawn(sim, waiter(tag))
        sim.run()
        assert woken == []
        assert signal.fire() == 3
        sim.run()
        assert sorted(woken) == ["a", "b", "c"]
        assert signal.fire() == 0  # waiters are one-shot


class TestJoin:
    def test_process_waits_for_process(self, sim):
        order = []

        def child():
            yield 100
            order.append("child-done")
            return 42

        def parent():
            value = yield Process.spawn(sim, child())
            order.append(("parent-saw", value, sim.now))

        Process.spawn(sim, parent())
        sim.run()
        assert order == ["child-done", ("parent-saw", 42, 100)]

    def test_join_after_finish_fires_immediately(self, sim):
        def quick():
            return 7
            yield  # pragma: no cover - makes this a generator

        process = Process.spawn(sim, quick())
        sim.run()
        assert process.finished
        got = []
        process.join(got.append)
        assert got == [7]

    def test_exception_propagates_and_is_recorded(self, sim):
        def exploder():
            yield 10
            raise ValueError("boom")

        process = Process.spawn(sim, exploder())
        with pytest.raises(ValueError):
            sim.run()
        assert process.finished
        assert isinstance(process.error, ValueError)


class TestWithNetwork:
    def test_process_drives_real_traffic(self, sim):
        """The process API composes with the full network stack."""
        from repro.hostsim import HostStack, MessageSink
        from repro.myrinet.network import build_paper_testbed

        network = build_paper_testbed(sim)
        network.settle()
        pc = HostStack(sim, network.host("pc").interface)
        sparc1 = HostStack(sim, network.host("sparc1").interface)
        sink = MessageSink(sparc1, 7000)

        def sender():
            for seq in range(5):
                pc.send_udp(sparc1.interface.mac, 7000, b"seq %d" % seq)
                yield 100 * US
            return "sent-all"

        process = Process.spawn(sim, sender())
        sim.run_for(5_000 * US)
        assert process.result == "sent-all"
        assert sink.received == 5
