"""Chaos harness for the campaign fabric (fault-injection tests).

Every test in this package injects one concrete infrastructure failure
into a live fabric run — a killed worker, a hang past the lease
deadline, a torn sqlite store, a duplicate lease delivery, a truncated
work queue — and asserts the one invariant that matters: the campaign
**converges to the serial run's digests** (table bytes, merged capture
bytes, merged telemetry counters).

``REPRO_CHAOS_ROUNDS`` (default 1) repeats each injection that many
times with a rotating target experiment; CI runs the suite at 10.
"""
