"""Fault-injection chaos suite: every failure converges to serial.

The fabric's failure-model table (``repro/runtime/fabric.py`` module
docstring) promises five recoveries.  Each class here injects exactly
one of those failures deterministically — via the worker-side chaos
params (:data:`CRASH_PARAM` & friends), the executor's
``chaos_duplicate_delivery`` hook, or direct file surgery — and then
asserts **convergence**: the chaos run's table render, merged capture
bytes, and merged telemetry counters equal the serial baseline's.

Set ``REPRO_CHAOS_ROUNDS=N`` to repeat each injection N times with a
rotating target experiment (CI runs 10; the default 1 keeps local runs
fast).  Failures never depend on wall-clock luck: crashes fire on a
param check, hangs are bounded by a short lease deadline, and the
torn-store and torn-queue modes damage the files from the test itself.
"""

import os
import sqlite3
import threading
import time

import pytest

from repro.nftape.campaign import Campaign
from repro.runtime import FabricExecutor, SerialExecutor
from repro.runtime.artifacts import merged_capture_path, \
    merged_metrics_path
from repro.runtime.store import spec_digest
from repro.runtime.worker import (
    CRASH_PARAM,
    HANG_PARAM,
    HANG_UNTIL_PARAM,
)
from tests.test_fabric import counter_series, fabric_spec

#: Injection repetitions; CI exports REPRO_CHAOS_ROUNDS=10.
ROUNDS = max(1, int(os.environ.get("REPRO_CHAOS_ROUNDS", "1")))

#: Experiments per chaos campaign — enough that every failure strikes
#: mid-run, small enough that a round stays subsecond.
EXPERIMENTS = 6


def chaos_spec(per_index_params=None):
    return fabric_spec(n=EXPERIMENTS, name="chaos campaign",
                       per_index_params=per_index_params)


def rotating_targets():
    """One target experiment per round, rotating over the campaign."""
    return [round_index % EXPERIMENTS for round_index in range(ROUNDS)]


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The serial run every chaos run must converge to."""
    home = tmp_path_factory.mktemp("baseline")
    table = Campaign.from_spec(chaos_spec()).run(
        executor=SerialExecutor(artifacts_dir=home))
    return {
        "render": table.render(),
        "capture": merged_capture_path(home).read_bytes(),
        "counters": counter_series(merged_metrics_path(home)),
    }


def assert_converged(baseline, table, home):
    """The one invariant: chaos output is byte-identical to serial."""
    assert table.render() == baseline["render"]
    assert merged_capture_path(home).read_bytes() == baseline["capture"]
    assert counter_series(merged_metrics_path(home)) \
        == baseline["counters"]


# ----------------------------------------------------------------------
# 1. worker killed mid-lease
# ----------------------------------------------------------------------

class TestWorkerKilledMidLease:
    @pytest.mark.parametrize("target", rotating_targets())
    def test_dead_holder_is_forfeited_and_reissued(
            self, tmp_path, baseline, target):
        """The worker claims the lease, then ``os._exit``\\ s before
        running — the coordinator must spot the dead holder, re-issue
        with the same seed, and respawn a replacement."""
        home = tmp_path / "run"
        executor = FabricExecutor(workers=2, poll_s=0.01,
                                  artifacts_dir=home)
        table = Campaign.from_spec(chaos_spec(
            {target: {CRASH_PARAM: 1}}
        )).run(executor=executor)
        assert executor.reissues == {target: 1}
        assert_converged(baseline, table, home)

    def test_every_worker_crashing_at_once_still_converges(
            self, tmp_path, baseline):
        """All experiments crash their first attempt — a worse storm
        than any single kill; the respawn budget absorbs it."""
        home = tmp_path / "run"
        executor = FabricExecutor(workers=2, poll_s=0.01,
                                  artifacts_dir=home)
        table = Campaign.from_spec(chaos_spec(
            {index: {CRASH_PARAM: 1} for index in range(EXPERIMENTS)}
        )).run(executor=executor)
        assert sum(executor.reissues.values()) == EXPERIMENTS
        assert_converged(baseline, table, home)


# ----------------------------------------------------------------------
# 2. worker hangs past the lease deadline
# ----------------------------------------------------------------------

class TestWorkerHangsPastDeadline:
    @pytest.mark.parametrize("target", rotating_targets())
    def test_expired_lease_is_reissued_and_the_late_result_loses(
            self, tmp_path, baseline, target):
        """The first attempt sleeps far past the lease deadline; the
        re-issued attempt wins and the sleeper (terminated at campaign
        end) never perturbs the output."""
        home = tmp_path / "run"
        executor = FabricExecutor(workers=2, poll_s=0.01,
                                  lease_timeout_s=0.4,
                                  artifacts_dir=home)
        table = Campaign.from_spec(chaos_spec(
            {target: {HANG_PARAM: 60.0, HANG_UNTIL_PARAM: 1}}
        )).run(executor=executor)
        assert executor.reissues.get(target, 0) >= 1
        assert_converged(baseline, table, home)


# ----------------------------------------------------------------------
# 3. torn sqlite write (copy-under-write / kill -9 mid-commit)
# ----------------------------------------------------------------------

class TestTornSqliteWrite:
    @pytest.mark.parametrize("round_index", range(ROUNDS))
    def test_truncated_store_is_quarantined_and_rerun(
            self, tmp_path, baseline, round_index):
        """A completed store torn at the file level (truncation rotates
        with the round) is quarantined at the next open; the resumed
        campaign re-runs everything and converges."""
        home = tmp_path / "run"
        first = FabricExecutor(workers=2, poll_s=0.01,
                               artifacts_dir=home)
        Campaign.from_spec(chaos_spec()).run(executor=first)

        store_file = home / "results.sqlite"
        whole = store_file.read_bytes()
        keep = max(100, len(whole) // (2 + round_index))
        store_file.write_bytes(whole[:keep])
        for sidecar in ("-wal", "-shm"):
            path = home / ("results.sqlite" + sidecar)
            if path.exists():
                path.unlink()

        resumed = FabricExecutor(workers=2, poll_s=0.01, resume=True,
                                 artifacts_dir=home)
        table = Campaign.from_spec(chaos_spec()).run(executor=resumed)
        assert resumed.skipped == []  # nothing trustworthy survived
        assert sorted(resumed.executed) == list(range(EXPERIMENTS))
        assert (home / "results.sqlite.corrupt-0").exists()
        assert_converged(baseline, table, home)

    def test_garbage_store_at_first_open_is_quarantined(
            self, tmp_path, baseline):
        """Not even a valid sqlite header: the fabric must quarantine
        and start fresh rather than crash or trust it."""
        home = tmp_path / "run"
        home.mkdir()
        (home / "results.sqlite").write_bytes(b"\x00garbage" * 200)
        executor = FabricExecutor(workers=2, poll_s=0.01,
                                  artifacts_dir=home)
        table = Campaign.from_spec(chaos_spec()).run(executor=executor)
        assert (home / "results.sqlite.corrupt-0").exists()
        assert_converged(baseline, table, home)


# ----------------------------------------------------------------------
# 4. duplicate lease delivery
# ----------------------------------------------------------------------

class TestDuplicateLeaseDelivery:
    @pytest.mark.parametrize("target", rotating_targets())
    def test_rogue_double_execution_is_absorbed(
            self, tmp_path, baseline, target):
        """A rogue worker executes the target experiment *without*
        claiming its lease — a partitioned queue delivering one lease
        twice.  The store's one-winner transaction and the atomic shard
        promotion keep exactly one of everything."""
        home = tmp_path / "run"
        executor = FabricExecutor(workers=2, poll_s=0.01,
                                  artifacts_dir=home,
                                  chaos_duplicate_delivery=target)
        table = Campaign.from_spec(chaos_spec()).run(executor=executor)
        assert_converged(baseline, table, home)


# ----------------------------------------------------------------------
# 5. queue-file truncation
# ----------------------------------------------------------------------

class TestQueueTruncation:
    @pytest.mark.parametrize("round_index", range(ROUNDS))
    def test_truncated_queue_parks_workers_until_repaired(
            self, tmp_path, baseline, round_index):
        """Mid-run the queue file is torn (cut point rotates with the
        round).  Parked workers must make no progress on a damaged
        queue; the coordinator detects and atomically rewrites it."""
        home = tmp_path / "run"
        spec = chaos_spec()
        digest = spec_digest(spec)
        queue_file = home / "fabric" / "queue.jsonl"
        store_file = home / "results.sqlite"

        def winners_so_far():
            try:
                conn = sqlite3.connect(store_file, timeout=5.0)
                (count,) = conn.execute(
                    "SELECT COUNT(*) FROM results WHERE spec_digest = ? "
                    "AND winner = 1", (digest,)).fetchone()
                conn.close()
                return count
            except sqlite3.Error:
                return 0

        def tear_queue_mid_run():
            # Strike while >= 4 experiments are still outstanding, so
            # completion *requires* the coordinator's repair.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if queue_file.exists() and winners_so_far() >= 1:
                    whole = queue_file.read_text()
                    cut = max(10, len(whole) // (2 + round_index))
                    queue_file.write_text(whole[:cut])
                    return
                time.sleep(0.002)

        saboteur = threading.Thread(target=tear_queue_mid_run,
                                    daemon=True)
        executor = FabricExecutor(workers=2, poll_s=0.01,
                                  artifacts_dir=home)
        saboteur.start()
        table = Campaign.from_spec(spec).run(executor=executor)
        saboteur.join(timeout=30)
        assert executor.queue_repairs >= 1
        assert_converged(baseline, table, home)
