"""Exporter tests: Prometheus text format, Chrome trace JSON, JSONL.

The Prometheus checks use a minimal line-format validator rather than a
client library (the container must stay dependency-free); the Chrome
trace checks pin down the keys Perfetto / ``chrome://tracing`` require.
"""

import json
import re

import pytest

from repro.telemetry.exporters import (
    PROMETHEUS_CONTENT_TYPE,
    parse_spans_jsonl,
    spans_to_jsonl,
    to_chrome_trace,
    to_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracker

# One Prometheus exposition line: name{labels} value
_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[0-9eE.+-]+|\+Inf|-Inf|NaN)$"
)
_PROM_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def _validate_prometheus(text: str) -> dict:
    """Tiny line-format checker; returns {series_line: value}."""
    series = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            assert len(parts) == 4, line
            assert parts[3] in ("counter", "gauge", "histogram"), line
            continue
        match = _PROM_LINE.match(line)
        assert match, f"malformed exposition line: {line!r}"
        labels = match.group("labels")
        if labels:
            for pair in labels[1:-1].split(","):
                assert _PROM_LABEL.match(pair), f"bad label pair: {pair!r}"
        series[match.group("name") + (labels or "")] = match.group("value")
    return series


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("sim.events_fired").inc(12345)
    registry.counter("device.bursts", direction="R").inc(7)
    registry.counter("device.bursts", direction="L").inc(9)
    gauge = registry.gauge("device.fifo.depth", direction="R")
    gauge.set(3)
    gauge.set(1)
    histogram = registry.histogram(
        "device.added_latency_ns", buckets=(100, 250, 500)
    )
    for value in (80, 240, 260, 9001):
        histogram.observe(value)
    return registry


class TestPrometheusExporter:
    def test_every_line_is_well_formed(self):
        series = _validate_prometheus(to_prometheus(_sample_registry()))
        assert series  # non-empty

    def test_counter_gets_total_suffix_and_prefix(self):
        series = _validate_prometheus(to_prometheus(_sample_registry()))
        assert series["repro_sim_events_fired_total"] == "12345"
        assert series['repro_device_bursts_total{direction="R"}'] == "7"
        assert series['repro_device_bursts_total{direction="L"}'] == "9"

    def test_gauge_current_value(self):
        series = _validate_prometheus(to_prometheus(_sample_registry()))
        assert series['repro_device_fifo_depth{direction="R"}'] == "1"

    def test_histogram_expands_cumulative_buckets(self):
        series = _validate_prometheus(to_prometheus(_sample_registry()))
        base = "repro_device_added_latency_ns"
        assert series[base + '_bucket{le="100"}'] == "1"
        assert series[base + '_bucket{le="250"}'] == "2"
        assert series[base + '_bucket{le="500"}'] == "3"
        assert series[base + '_bucket{le="+Inf"}'] == "4"
        assert series[base + "_count"] == "4"
        assert float(series[base + "_sum"]) == pytest.approx(
            80 + 240 + 260 + 9001
        )

    def test_type_lines_precede_samples(self):
        text = to_prometheus(_sample_registry())
        seen_types = set()
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                seen_types.add(line.split()[2])
            elif line:
                name = line.split("{")[0].split(" ")[0]
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                assert name in seen_types or base in seen_types, line

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("odd.labels", note='say "hi"\nback\\slash').inc()
        text = to_prometheus(registry)
        assert '\\"hi\\"' in text
        assert "\\n" in text
        assert "\\\\slash" in text
        _validate_prometheus(text)

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_histogram_bucket_counts_are_cumulative_not_per_bucket(self):
        """Regression pin: each le line carries the running total, and
        the +Inf line always equals _count."""
        registry = MetricsRegistry()
        histogram = registry.histogram("audit.lat", buckets=(10, 20, 30))
        for value in (5, 15, 25, 999):
            histogram.observe(value)
        series = _validate_prometheus(to_prometheus(registry))
        buckets = [
            int(series[f'repro_audit_lat_bucket{{le="{le}"}}'])
            for le in ("10", "20", "30", "+Inf")
        ]
        assert buckets == sorted(buckets)  # cumulative => monotonic
        assert buckets == [1, 2, 3, 4]
        assert series["repro_audit_lat_count"] == str(buckets[-1])

    def test_inf_bucket_present_even_when_empty_tail(self):
        registry = MetricsRegistry()
        registry.histogram("audit.lat", buckets=(10,)).observe(5)
        series = _validate_prometheus(to_prometheus(registry))
        assert series['repro_audit_lat_bucket{le="+Inf"}'] == "1"

    def test_label_escaping_round_trips(self):
        """Unescaping the rendered label value recovers the original —
        i.e. backslash is escaped before quote/newline, not after."""
        original = 'say "hi"\nback\\slash\\n'
        registry = MetricsRegistry()
        registry.counter("odd.labels", note=original).inc()
        text = to_prometheus(registry)
        match = re.search(r'note="((?:[^"\\]|\\.)*)"', text)
        assert match
        decoded = []
        chars = iter(match.group(1))
        for ch in chars:
            if ch == "\\":
                decoded.append({"n": "\n", '"': '"', "\\": "\\"}[next(chars)])
            else:
                decoded.append(ch)
        assert "".join(decoded) == original


class TestPrometheusExposition:
    """Regression pins for the HTTP-facing exposition contract.

    ``repro.server``'s ``GET /metrics`` serves :func:`to_prometheus`
    output under :data:`PROMETHEUS_CONTENT_TYPE`; these tests keep both
    halves of that contract stable without starting a server.
    """

    def test_content_type_is_text_exposition_0_0_4(self):
        assert PROMETHEUS_CONTENT_TYPE \
            == "text/plain; version=0.0.4; charset=utf-8"

    def test_server_self_metrics_render_well_formed(self):
        """The exact series shapes the server scrape emits all pass the
        line-format validator (counter _total suffixes, bare gauges)."""
        registry = MetricsRegistry()
        registry.counter("server.campaigns_submitted").inc(3)
        registry.counter("server.campaigns_completed").inc(2)
        registry.counter("server.campaigns_failed").inc(0)
        registry.counter("server.campaigns_rejected").inc(1)
        registry.gauge("server.queue_depth").set(1)
        registry.gauge("server.queue_limit").set(8)
        registry.gauge("server.tenants").set(2)
        registry.counter("events.published").inc(42)
        registry.counter("events.dropped").inc(0)
        registry.gauge("process.uptime_s").set(12.5)
        registry.gauge("process.rss_bytes").set(40 * 1024 * 1024)
        series = _validate_prometheus(to_prometheus(registry))
        assert series["repro_server_campaigns_submitted_total"] == "3"
        assert series["repro_server_queue_depth"] == "1"
        assert series["repro_events_dropped_total"] == "0"
        assert series["repro_process_uptime_s"] == "12.5"
        assert series["repro_process_rss_bytes"] == str(40 * 1024 * 1024)

    def test_zero_valued_counters_are_still_exposed(self):
        """Absence-vs-zero matters to scrapers: a server that has never
        dropped an event must still expose events_dropped_total 0."""
        registry = MetricsRegistry()
        registry.counter("events.dropped").inc(0)
        series = _validate_prometheus(to_prometheus(registry))
        assert series == {"repro_events_dropped_total": "0"}


class TestChromeTraceExporter:
    def _records(self):
        tracker = SpanTracker()
        with tracker.span("campaign", name="t"):
            with tracker.span("experiment", run=1):
                pass
        return tracker.records

    def test_required_keys_on_every_event(self):
        document = to_chrome_trace(self._records(), label="unit")
        assert "traceEvents" in document
        for event in document["traceEvents"]:
            for key in ("ph", "ts", "pid", "name"):
                assert key in event, f"missing {key!r}: {event}"

    def test_complete_events_have_duration_and_tid(self):
        document = to_chrome_trace(self._records())
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 2
        for event in xs:
            assert event["dur"] >= 0
            assert event["ts"] >= 0
            assert "tid" in event
            assert event["args"]["path"].startswith("campaign")

    def test_metadata_event_names_the_process(self):
        document = to_chrome_trace(self._records(), label="my-campaign")
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "my-campaign"

    def test_timestamps_relative_to_earliest_span(self):
        document = to_chrome_trace(self._records())
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0

    def test_document_is_json_serializable(self):
        document = to_chrome_trace(self._records())
        parsed = json.loads(json.dumps(document))
        assert parsed["displayTimeUnit"] == "ms"

    def test_open_spans_are_excluded(self):
        tracker = SpanTracker()
        context = tracker.span("never-closed")
        context.__enter__()
        document = to_chrome_trace(tracker.records + tracker._stack)
        names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
        assert "never-closed" not in names


class TestChromeTraceShardMerge:
    """Regression: merged multi-shard records must not collapse onto one
    process row — overlapping wall-clock stacks from different shards
    render as malformed nesting unless each shard gets its own pid."""

    def _sharded_records(self, shards=2):
        records = []
        for shard in range(shards):
            tracker = SpanTracker()
            with tracker.span("experiment", run=shard):
                with tracker.span("workload"):
                    pass
            for record in tracker.records:
                record.shard = shard
                records.append(record)
        return records

    def test_each_shard_gets_a_distinct_pid(self):
        document = to_chrome_trace(self._sharded_records(2))
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        by_shard = {}
        for event in xs:
            by_shard.setdefault(event["args"]["shard"], set()).add(
                event["pid"]
            )
        assert set(by_shard) == {0, 1}
        assert by_shard[0] != by_shard[1]
        assert all(len(pids) == 1 for pids in by_shard.values())

    def test_per_shard_process_name_metadata(self):
        document = to_chrome_trace(
            self._sharded_records(2), label="merged"
        )
        meta = {
            e["pid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        names = set(meta.values())
        assert "merged [shard 0]" in names
        assert "merged [shard 1]" in names
        # Shard pids never collide with the unsharded base process.
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        base = [e["pid"] for e in document["traceEvents"]
                if e["ph"] == "M" and e["args"]["name"] == "merged"]
        assert base and all(e["pid"] != base[0] for e in xs)

    def test_unsharded_records_keep_the_legacy_pid(self):
        tracker = SpanTracker()
        with tracker.span("experiment"):
            pass
        document = to_chrome_trace(tracker.records)
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert [e["pid"] for e in xs] == [1]
        assert all("shard" not in e.get("args", {}) for e in xs)


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self):
        tracker = SpanTracker()
        with tracker.span("campaign", experiments=2):
            with tracker.span("experiment", name="e0", seed=7):
                pass
        text = spans_to_jsonl(tracker.records)
        assert text.endswith("\n")
        assert len(text.splitlines()) == 2
        rebuilt = parse_spans_jsonl(text)
        assert [r.to_dict() for r in rebuilt] == [
            r.to_dict() for r in tracker.records
        ]

    def test_each_line_is_standalone_json(self):
        tracker = SpanTracker()
        with tracker.span("a"):
            pass
        for line in spans_to_jsonl(tracker.records).splitlines():
            record = json.loads(line)
            assert {"span_id", "name", "path", "start_wall_ns"} <= set(record)

    def test_empty_and_blank_lines(self):
        assert spans_to_jsonl([]) == ""
        assert parse_spans_jsonl("") == []
        assert parse_spans_jsonl("\n   \n") == []
