"""Unit tests for correlation ids and the lifecycle flight recorder."""

from repro.capture.provenance import (
    ExperimentCapture,
    FlightRecorder,
    Stage,
    packet_key,
)


class TestPacketKey:
    def test_route_invariance(self):
        """The fingerprint ignores everything switches rewrite."""
        # Same type+payload -> same key, regardless of who computes it.
        assert packet_key(0x0004, b"hello") == packet_key(0x0004, b"hello")

    def test_corruption_breaks_the_match(self):
        assert packet_key(0x0004, b"hello") != packet_key(0x0004, b"hellp")
        assert packet_key(0x0004, b"hello") != packet_key(0x0005, b"hello")

    def test_key_is_compact_hex(self):
        key = packet_key(0x0004, b"payload")
        assert len(key) == 16
        int(key, 16)  # hex-parseable


class TestFlightRecorder:
    def test_corr_ids_are_monotone(self):
        recorder = FlightRecorder()
        assert [recorder.next_corr_id() for _ in range(3)] == [0, 1, 2]
        assert recorder.corr_ids_assigned == 3

    def test_key_registry_round_trip(self):
        recorder = FlightRecorder()
        recorder.register_key("k1", 7)
        assert recorder.lookup_key("k1") == 7
        assert recorder.lookup_key("nope") is None

    def test_key_registry_is_bounded(self):
        recorder = FlightRecorder(key_limit=2)
        recorder.register_key("a", 0)
        recorder.register_key("b", 1)
        recorder.register_key("c", 2)  # evicts the oldest ("a")
        assert recorder.lookup_key("a") is None
        assert recorder.lookup_key("b") == 1
        assert recorder.lookup_key("c") == 2

    def test_retransmission_tracks_newest(self):
        recorder = FlightRecorder(key_limit=2)
        recorder.register_key("a", 0)
        recorder.register_key("b", 1)
        recorder.register_key("a", 5)  # refresh, not insert
        recorder.register_key("c", 2)  # evicts "b", the actual oldest
        assert recorder.lookup_key("a") == 5
        assert recorder.lookup_key("b") is None

    def test_ring_buffer_bounded_with_eviction_count(self):
        recorder = FlightRecorder(max_events=3)
        for t in range(5):
            recorder.record(t, Stage.HOST_SEND, "pc", "tx")
        assert len(recorder.events) == 3
        assert recorder.events_dropped == 2
        # The survivors are the newest, and their per-lane sequence
        # numbers survive eviction.
        assert [e.time_ps for e in recorder.events] == [2, 3, 4]
        assert [e.seq for e in recorder.events] == [2, 3, 4]

    def test_sequence_numbers_are_per_node_and_direction(self):
        recorder = FlightRecorder()
        recorder.record(0, Stage.HOST_SEND, "pc", "tx")
        recorder.record(1, Stage.HOST_SEND, "pc", "tx")
        recorder.record(2, Stage.HOST_SEND, "sparc1", "tx")
        recorder.record(3, Stage.DEVICE_TRANSIT, "pc", "rx")
        seqs = [(e.node, e.direction, e.seq) for e in recorder.events]
        assert seqs == [
            ("pc", "tx", 0), ("pc", "tx", 1),
            ("sparc1", "tx", 0), ("pc", "rx", 0),
        ]

    def test_events_scoped_to_current_experiment(self):
        recorder = FlightRecorder()
        recorder.record(0, Stage.HOST_SEND, "pc")
        recorder.finish_experiment(ExperimentCapture(index=0, name="first"))
        recorder.record(1, Stage.HOST_SEND, "pc")
        indices = [e.experiment_index for e in recorder.events]
        assert indices == [0, 1]
        assert recorder.experiments[0].index == 0
        assert recorder.current_experiment_index == 1

    def test_events_for_and_stage_counts(self):
        recorder = FlightRecorder()
        recorder.record(0, Stage.HOST_SEND, "pc", corr_id=4)
        recorder.record(1, Stage.SWITCH_HOP, "switch")
        recorder.record(2, Stage.DELIVER, "sparc1", corr_id=4)
        assert [e.stage for e in recorder.events_for(4)] == [
            Stage.HOST_SEND, Stage.DELIVER,
        ]
        assert recorder.stage_counts() == {
            Stage.HOST_SEND: 1, Stage.SWITCH_HOP: 1, Stage.DELIVER: 1,
        }

    def test_event_dict_round_trip(self):
        from repro.capture.provenance import LifecycleEvent

        recorder = FlightRecorder()
        event = recorder.record(
            12, Stage.INJECT, "injector", "R", corr_id=3, lanes=2
        )
        clone = LifecycleEvent.from_dict(event.to_dict())
        assert clone == event
