"""Unit tests for span tracking and the global telemetry state switch."""

import pytest

from repro.sim.kernel import Simulator
from repro.telemetry.session import TelemetrySession
from repro.telemetry.spans import NOOP_SPAN, SpanRecord, SpanTracker, span
from repro.telemetry.state import STATE, telemetry_active


@pytest.fixture(autouse=True)
def _clean_state():
    """Every test starts and ends with telemetry disabled."""
    STATE.deactivate()
    yield
    STATE.deactivate()


class TestSpanTracker:
    def test_nesting_builds_paths_and_parents(self):
        tracker = SpanTracker()
        with tracker.span("campaign") as outer:
            with tracker.span("experiment") as middle:
                with tracker.span("workload") as inner:
                    assert tracker.open_depth == 3
        assert tracker.open_depth == 0
        assert outer.path == "campaign"
        assert middle.path == "campaign/experiment"
        assert inner.path == "campaign/experiment/workload"
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert [r.name for r in tracker.records] == [
            "workload", "experiment", "campaign",  # completion order
        ]

    def test_wall_times_are_monotonic(self):
        tracker = SpanTracker()
        with tracker.span("a") as record:
            pass
        assert record.end_wall_ns is not None
        assert record.end_wall_ns >= record.start_wall_ns
        assert record.wall_ns >= 0

    def test_sim_time_marks(self):
        tracker = SpanTracker()
        sim = Simulator()
        sim.schedule_at(1_000, lambda: None, label="tick")
        with tracker.span("workload", sim=sim) as record:
            sim.run_until(5_000)
        assert record.start_sim_ps == 0
        assert record.end_sim_ps == 5_000
        assert record.sim_ps == 5_000

    def test_no_sim_means_no_sim_marks(self):
        tracker = SpanTracker()
        with tracker.span("a") as record:
            pass
        assert record.start_sim_ps is None
        assert record.sim_ps is None

    def test_name_is_positional_only_so_attrs_may_shadow(self):
        tracker = SpanTracker()
        with tracker.span("experiment", name="exp-3", run=3) as record:
            pass
        assert record.name == "experiment"
        assert record.attrs == {"name": "exp-3", "run": 3}

    def test_exception_marks_error_and_unwinds(self):
        tracker = SpanTracker()
        with pytest.raises(ValueError):
            with tracker.span("boom"):
                raise ValueError("x")
        assert tracker.open_depth == 0
        assert tracker.records[0].attrs["error"] == "ValueError"

    def test_find_by_name(self):
        tracker = SpanTracker()
        for _ in range(3):
            with tracker.span("experiment"):
                pass
        with tracker.span("drain"):
            pass
        assert len(tracker.find("experiment")) == 3
        assert len(tracker.find("drain")) == 1


class TestGlobalSpanHelper:
    def test_disabled_returns_shared_noop(self):
        assert not telemetry_active()
        first = span("anything", name="ignored")
        second = span("other")
        assert first is NOOP_SPAN and second is NOOP_SPAN
        with first:  # must be a usable context manager
            pass

    def test_enabled_records_into_session_tracker(self):
        with TelemetrySession() as session:
            assert telemetry_active()
            with span("campaign", name="t"):
                with span("experiment", run=1):
                    pass
        assert not telemetry_active()
        paths = sorted(r.path for r in session.spans.records)
        assert paths == ["campaign", "campaign/experiment"]

    def test_noop_swallows_nothing(self):
        with pytest.raises(RuntimeError):
            with span("x"):
                raise RuntimeError("propagates")


class TestSpanRecordSerialization:
    def test_round_trip(self):
        tracker = SpanTracker()
        sim = Simulator()
        with tracker.span("experiment", sim=sim, seed=7) as record:
            pass
        data = record.to_dict()
        rebuilt = SpanRecord.from_dict(data)
        assert rebuilt.to_dict() == data
        assert rebuilt.attrs == {"seed": 7}

    def test_open_span_durations_degrade(self):
        record = SpanRecord(
            span_id=1, name="open", path="open", depth=0,
            parent_id=None, start_wall_ns=100,
        )
        assert record.wall_ns == 0
        assert record.sim_ps is None

    def test_shard_absent_from_live_sessions_but_round_trips(self):
        """The merge-time shard stamp must not change live output: no
        ``shard`` key unless one was assigned, lossless when it was."""
        tracker = SpanTracker()
        with tracker.span("experiment") as record:
            pass
        assert "shard" not in record.to_dict()
        record.shard = 3
        data = record.to_dict()
        assert data["shard"] == 3
        rebuilt = SpanRecord.from_dict(data)
        assert rebuilt.shard == 3
        assert rebuilt.to_dict() == data


class TestTelemetrySessionLifecycle:
    def test_state_restored_after_session(self):
        assert STATE.registry is None
        with TelemetrySession() as session:
            assert STATE.registry is session.registry
            assert STATE.spans is session.spans
        assert STATE.registry is None
        assert STATE.spans is None

    def test_sessions_nest_and_restore_outer(self):
        with TelemetrySession() as outer:
            with TelemetrySession() as inner:
                assert STATE.registry is inner.registry
            assert STATE.registry is outer.registry
        assert not STATE.active

    def test_exception_still_restores_and_records_wall(self):
        session = TelemetrySession()
        with pytest.raises(RuntimeError):
            with session:
                raise RuntimeError("boom")
        assert not STATE.active
        assert session.wall_s is not None and session.wall_s >= 0

    def test_derived_session_metrics(self):
        with TelemetrySession() as session:
            session.registry.counter("sim.events_fired").inc(1000)
        assert session.registry.value("sim.events_per_s") > 0
        assert session.registry.value("session.wall_s") == pytest.approx(
            session.wall_s
        )
