"""simlint engine and rule-pack tests.

Each rule ID is demonstrated by at least one fixture file with a known
violation, plus suppression handling and clean-file zero-finding cases.
Fixture trees are written under ``tmp_path`` in a fake ``repro/``
package layout so the package-scoping of each rule is exercised too.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import default_engine, rule_table, run_lint
from repro.analysis.engine import Finding, parse_module


def write_tree(tmp_path: Path, files: dict) -> Path:
    """Write ``{relative_path: source}`` under tmp_path; return the root."""
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path / "repro"


def lint_tree(tmp_path: Path, files: dict):
    root = write_tree(tmp_path, files)
    return default_engine().run(root, tmp_path)


def rule_ids(findings) -> list:
    return [finding.rule_id for finding in findings]


# ----------------------------------------------------------------------
# SIM001 — wall clock
# ----------------------------------------------------------------------

def test_sim001_flags_wall_clock_in_sim_code(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/sim/bad_clock.py": """\
            import time

            def stamp():
                return time.time()
            """,
    })
    assert rule_ids(findings) == ["SIM001"]
    assert "time.time" in findings[0].message


def test_sim001_flags_datetime_and_perf_counter(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/hw/bad2.py": """\
            import time
            from datetime import datetime

            def stamps():
                return time.perf_counter(), datetime.now()
            """,
    })
    assert rule_ids(findings) == ["SIM001", "SIM001"]


def test_sim001_covers_the_whole_repro_tree(tmp_path):
    """Any repro package may run inside a simulated callback, so the
    wall-clock ban covers everything, not just repro.sim/hw/myrinet."""
    findings = lint_tree(tmp_path, {
        "repro/nftape/report_tool.py": """\
            import time

            def stamp():
                return time.time()
            """,
    })
    assert rule_ids(findings) == ["SIM001"]


def test_sim001_allows_the_telemetry_boundary(tmp_path):
    """repro.telemetry is the sanctioned wall-clock observer (spans,
    session wall_s); it carries a scoped SIM001 allowance."""
    findings = lint_tree(tmp_path, {
        "repro/telemetry/spans_like.py": """\
            import time

            def now_wall_ns():
                return time.time_ns()
            """,
    })
    assert findings == []


def test_sim001_allows_the_runtime_boundary(tmp_path):
    """repro.runtime times and kills *host-side* worker processes
    (per-experiment wall-clock timeouts); workers rebuild simulators
    from derived seeds alone, so the allowance is sound."""
    findings = lint_tree(tmp_path, {
        "repro/runtime/executors_like.py": """\
            import time

            def deadline(timeout_s):
                return time.monotonic() + timeout_s
            """,
    })
    assert findings == []


def test_sim001_ignores_code_outside_repro(tmp_path):
    findings = lint_tree(tmp_path, {
        "tools/report_tool.py": """\
            import time

            def stamp():
                return time.time()
            """,
    })
    assert findings == []


# ----------------------------------------------------------------------
# SIM002 — bare random
# ----------------------------------------------------------------------

def test_sim002_flags_bare_random_import(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/nftape/bad_random.py": """\
            import random

            def pick():
                return random.random()
            """,
    })
    assert "SIM002" in rule_ids(findings)


def test_sim002_flags_from_random_import(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/core/bad_random2.py": """\
            from random import choice
            """,
    })
    assert rule_ids(findings) == ["SIM002"]


def test_sim002_allows_the_rng_wrapper_module(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/sim/rng.py": """\
            import random

            class DeterministicRng:
                pass
            """,
    })
    assert findings == []


# ----------------------------------------------------------------------
# SIM003 — float time arithmetic
# ----------------------------------------------------------------------

def test_sim003_flags_float_literal_delay(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/sim/bad_delay.py": """\
            def arm(sim, cb):
                sim.schedule(1.5, cb)
            """,
    })
    assert rule_ids(findings) == ["SIM003"]


def test_sim003_flags_true_division_into_schedule_at(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/hw/bad_div.py": """\
            def arm(sim, cb, period):
                sim.schedule_at(period / 2, cb)
            """,
    })
    assert rule_ids(findings) == ["SIM003"]


def test_sim003_allows_integer_arithmetic(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/hw/good_div.py": """\
            def arm(sim, cb, period):
                sim.schedule(period // 2, cb)
                sim.run_for(3 * period)
            """,
    })
    assert findings == []


# ----------------------------------------------------------------------
# SIM004 — unordered iteration
# ----------------------------------------------------------------------

def test_sim004_flags_set_iteration_with_method_calls(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/myrinet/bad_set.py": """\
            def flush(self_like):
                touched = set()
                touched.add(1)
                for out in touched:
                    self_like.flush(out)
            """,
    })
    assert "SIM004" in rule_ids(findings)


def test_sim004_accepts_sorted_iteration(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/myrinet/good_set.py": """\
            def flush(self_like):
                touched = set()
                touched.add(1)
                for out in sorted(touched):
                    self_like.flush(out)
            """,
    })
    assert findings == []


def test_sim004_flags_set_annotated_parameter(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/myrinet/bad_param.py": """\
            def flush(sim, touched: set) -> None:
                for out in touched:
                    sim.schedule(1, out)
            """,
    })
    assert rule_ids(findings) == ["SIM004"]


# ----------------------------------------------------------------------
# FSM001 — exhaustive state dispatch
# ----------------------------------------------------------------------

_FSM_FIXTURE = """\
    from enum import Enum

    class _State(Enum):
        IDLE = "idle"
        RUN = "run"
        DRAIN = "drain"

    class Machine:
        def __init__(self):
            self._state = _State.IDLE

        def step(self):
            if self._state is _State.IDLE:
                return 0
            if self._state is _State.RUN:
                return 1
            return None
    """


def test_fsm001_flags_unhandled_state(tmp_path):
    findings = lint_tree(tmp_path, {"repro/hw/bad_fsm.py": _FSM_FIXTURE})
    assert rule_ids(findings) == ["FSM001"]
    assert "_State.DRAIN" in findings[0].message


def test_fsm001_quiet_when_all_states_handled(tmp_path):
    source = textwrap.dedent(_FSM_FIXTURE) + textwrap.dedent("""\

        def extra(machine):
            return machine._state is _State.DRAIN
        """)
    findings = lint_tree(tmp_path, {"repro/hw/good_fsm.py": source})
    assert findings == []


def test_fsm001_quiet_for_data_only_enum(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/nftape/states.py": """\
            from enum import Enum

            class ResultState(Enum):
                PASS = "pass"
                FAIL = "fail"
            """,
    })
    assert findings == []


# ----------------------------------------------------------------------
# REG001 — grammar / register cross-check
# ----------------------------------------------------------------------

_REGISTERS_FIXTURE = """\
    SEGMENT_BITS = 32
    SEGMENT_LANES = 4
    _MASK32 = (1 << SEGMENT_BITS) - 1
    _MASK4 = (1 << SEGMENT_LANES) - 1

    class InjectorConfig:
        compare_data: int = 0
        compare_ctl: int = 0
        crc_fixup: bool = False

        def __post_init__(self):
            for name in ("compare_data",):
                value = getattr(self, name)
                if not 0 <= value <= _MASK32:
                    raise ValueError(name)
            for name in ("compare_ctl",):
                value = getattr(self, name)
                if not 0 <= value <= _MASK4:
                    raise ValueError(name)
    """


def _decoder_fixture(body: str) -> str:
    return textwrap.dedent("""\
        class CommandDecoder:
        %s

        _HANDLERS = {
            "CD": CommandDecoder._cmd_cd,
        }
        """) % textwrap.indent(textwrap.dedent(body), "    ")


def test_reg001_clean_pair_passes(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/hw/registers.py": _REGISTERS_FIXTURE,
        "repro/hw/decoder.py": _decoder_fixture("""\
            def _cmd_cd(self, tokens):
                self._hex_command(tokens, "compare_data", 8)
            """),
    })
    assert findings == []


def test_reg001_flags_width_mismatch(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/hw/registers.py": _REGISTERS_FIXTURE,
        "repro/hw/decoder.py": _decoder_fixture("""\
            def _cmd_cd(self, tokens):
                self._hex_command(tokens, "compare_ctl", 8)
            """),
    })
    assert rule_ids(findings) == ["REG001"]
    assert "4-bit" in findings[0].message


def test_reg001_flags_unknown_register_field(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/hw/registers.py": _REGISTERS_FIXTURE,
        "repro/hw/decoder.py": _decoder_fixture("""\
            def _cmd_cd(self, tokens):
                self._hex_command(tokens, "no_such_reg", 8)
            """),
    })
    assert rule_ids(findings) == ["REG001"]
    assert "no_such_reg" in findings[0].message


def test_reg001_flags_unregistered_handler(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/hw/registers.py": _REGISTERS_FIXTURE,
        "repro/hw/decoder.py": _decoder_fixture("""\
            def _cmd_cd(self, tokens):
                self._hex_command(tokens, "compare_data", 8)

            def _cmd_zz(self, tokens):
                pass
            """),
    })
    assert rule_ids(findings) == ["REG001"]
    assert "_cmd_zz" in findings[0].message


def test_reg001_flags_bad_opcode_shape(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/hw/registers.py": _REGISTERS_FIXTURE,
        "repro/hw/decoder.py": textwrap.dedent("""\
            class CommandDecoder:
                def _cmd_cd(self, tokens):
                    self._hex_command(tokens, "compare_data", 8)

            _HANDLERS = {
                "CMD": CommandDecoder._cmd_cd,
            }
            """),
    })
    assert rule_ids(findings) == ["REG001"]
    assert "'CMD'" in findings[0].message


def test_reg001_flags_unknown_copy_keyword(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/hw/registers.py": _REGISTERS_FIXTURE,
        "repro/hw/decoder.py": _decoder_fixture("""\
            def _cmd_cd(self, tokens):
                self._hex_command(tokens, "compare_data", 8)

            def _cmd_cf(self, injector):
                injector.configure(injector.config.copy(crc_fixupp=True))
            """),
    })
    # _cmd_cf is also unregistered in the fixture: expect both findings.
    assert sorted(rule_ids(findings)) == ["REG001", "REG001"]
    assert any("crc_fixupp" in finding.message for finding in findings)


# ----------------------------------------------------------------------
# ERR001 — silent except
# ----------------------------------------------------------------------

def test_err001_flags_silent_except_pass(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/core/bad_except.py": """\
            def f(items, x):
                try:
                    items.remove(x)
                except ValueError:
                    pass
            """,
    })
    assert rule_ids(findings) == ["ERR001"]


def test_err001_allows_handled_except(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/core/good_except.py": """\
            def f(items, x, stats):
                try:
                    items.remove(x)
                except ValueError:
                    stats["missing"] = stats.get("missing", 0) + 1
            """,
    })
    assert findings == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

def test_line_suppression_hides_one_finding(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/core/suppressed.py": """\
            def f(items, x):
                try:
                    items.remove(x)
                except ValueError:
                    pass  # simlint: disable=ERR001 -- absence is expected here
            """,
    })
    assert findings == []


def test_line_suppression_is_rule_specific(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/core/suppressed2.py": """\
            def f(items, x):
                try:
                    items.remove(x)
                except ValueError:
                    pass  # simlint: disable=SIM001 -- wrong rule id
            """,
    })
    assert rule_ids(findings) == ["ERR001"]


def test_file_level_suppression(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/nftape/whole_file.py": """\
            # simlint: disable-file=SIM002 -- legacy shim, tracked in docs
            import random
            from random import choice
            """,
    })
    assert findings == []


def test_pragma_inside_string_does_not_suppress(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/nftape/stringy.py": """\
            PRAGMA = "# simlint: disable-file=SIM002"
            import random
            """,
    })
    assert rule_ids(findings) == ["SIM002"]


# ----------------------------------------------------------------------
# engine plumbing
# ----------------------------------------------------------------------

def test_clean_file_produces_zero_findings(tmp_path):
    findings = lint_tree(tmp_path, {
        "repro/sim/clean.py": """\
            from enum import Enum

            def double(value: int) -> int:
                return value * 2
            """,
    })
    assert findings == []


def test_finding_format_is_single_line_parseable():
    finding = Finding(
        path="src/repro/x.py", line=3, col=7,
        rule_id="SIM001", message="wall-clock call",
    )
    assert finding.format() == "src/repro/x.py:3:7 SIM001 wall-clock call"
    assert "\n" not in finding.format()


def test_parse_module_computes_package_relative_names(tmp_path):
    path = tmp_path / "repro" / "sim" / "kernel.py"
    path.parent.mkdir(parents=True)
    path.write_text("X = 1\n", encoding="utf-8")
    info = parse_module(path, tmp_path)
    assert info.module == "repro.sim.kernel"
    assert info.in_package("repro.sim")
    assert not info.in_package("repro.hw")


def test_rule_table_covers_all_seven_rules():
    table = rule_table()
    assert set(table) == {
        "SIM001", "SIM002", "SIM003", "SIM004",
        "FSM001", "REG001", "ERR001",
    }


def test_real_tree_is_lint_clean():
    """The shipped source tree must stay at zero findings (CI gate)."""
    assert run_lint() == []


def test_findings_sorted_and_deterministic(tmp_path):
    files = {
        "repro/core/z_bad.py": """\
            def f(items, x):
                try:
                    items.remove(x)
                except ValueError:
                    pass
            """,
        "repro/core/a_bad.py": """\
            import random
            """,
    }
    first = lint_tree(tmp_path, files)
    second = lint_tree(tmp_path, files)
    assert [f.format() for f in first] == [f.format() for f in second]
    assert [f.path for f in first] == sorted(f.path for f in first)
