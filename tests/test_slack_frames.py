"""Unit tests for slack buffers (Figure 9) and frame assembly."""

import pytest

from repro.errors import ConfigurationError
from repro.myrinet.frames import FrameAssembler
from repro.myrinet.slack import QueueSlackBuffer, RateDrainedSlackBuffer
from repro.myrinet.symbols import GAP, GO, IDLE, STOP, control_symbol, data_symbol


class TestQueueSlackBuffer:
    def test_watermark_callbacks(self):
        events = []
        buffer = QueueSlackBuffer(capacity=10, high_water=6, low_water=2,
                                  on_backpressure=events.append)
        for index in range(6):
            buffer.push(data_symbol(index))
        assert events == [True]
        assert buffer.pressured
        while buffer.occupancy > 2:
            buffer.pop()
        assert events == [True, False]
        assert not buffer.pressured

    def test_overflow_drops(self):
        buffer = QueueSlackBuffer(capacity=4, high_water=3, low_water=1)
        for index in range(6):
            buffer.push(data_symbol(index))
        assert buffer.occupancy == 4
        assert buffer.symbols_dropped == 2
        assert buffer.overflow_events == 2

    def test_fifo_order(self):
        buffer = QueueSlackBuffer(capacity=8, high_water=6, low_water=2)
        for index in range(5):
            buffer.push(data_symbol(index))
        assert [s.value for s in buffer.pop_all()] == [0, 1, 2, 3, 4]
        assert len(buffer) == 0

    def test_watermark_validation(self):
        with pytest.raises(ConfigurationError):
            QueueSlackBuffer(capacity=4, high_water=5, low_water=1)
        with pytest.raises(ConfigurationError):
            QueueSlackBuffer(capacity=8, high_water=2, low_water=3)

    def test_crossing_counters(self):
        buffer = QueueSlackBuffer(capacity=10, high_water=4, low_water=2)
        for _cycle in range(3):
            for index in range(4):
                buffer.push(data_symbol(0))
            while buffer.occupancy:
                buffer.pop()
        assert buffer.stop_crossings == 3
        assert buffer.go_crossings == 3


class TestRateDrainedSlackBuffer:
    def test_occupancy_drains_over_time(self, sim):
        buffer = RateDrainedSlackBuffer(sim, drain_period_ps=100,
                                        capacity=100, high_water=50,
                                        low_water=10)
        buffer.push_burst(40)
        assert buffer.occupancy == pytest.approx(40)
        sim.run_for(2000)  # drains 20 symbols
        assert buffer.occupancy == pytest.approx(20, abs=1)

    def test_overflow_reports_drop_count(self, sim):
        buffer = RateDrainedSlackBuffer(sim, drain_period_ps=100,
                                        capacity=50, high_water=30,
                                        low_water=10)
        accepted = buffer.push_burst(80)
        assert accepted == 50
        assert buffer.symbols_dropped == 30

    def test_backpressure_release_is_scheduled(self, sim):
        events = []
        buffer = RateDrainedSlackBuffer(sim, drain_period_ps=100,
                                        capacity=100, high_water=40,
                                        low_water=10,
                                        on_backpressure=events.append)
        buffer.push_burst(60)
        assert events == [True]
        sim.run()  # the scheduled release check fires after draining
        assert events == [True, False]
        assert not buffer.pressured

    def test_invalid_drain_period(self, sim):
        with pytest.raises(ConfigurationError):
            RateDrainedSlackBuffer(sim, drain_period_ps=0)


class TestFrameAssembler:
    def _assembler(self, max_frame=64):
        frames = []
        controls = []
        assembler = FrameAssembler(frames.append, controls.append,
                                   max_frame=max_frame)
        return assembler, frames, controls

    def test_frames_split_on_gap(self):
        assembler, frames, _ = self._assembler()
        for byte in b"abc":
            assembler.push(data_symbol(byte))
        assembler.push(GAP)
        for byte in b"de":
            assembler.push(data_symbol(byte))
        assembler.push(GAP)
        assert frames == [b"abc", b"de"]
        assert assembler.frames_emitted == 2

    def test_multiple_gaps_between_packets(self):
        """Paper: any positive number of GAPs may separate packets."""
        assembler, frames, _ = self._assembler()
        assembler.push_burst([data_symbol(1), GAP, GAP, GAP, data_symbol(2),
                              GAP])
        assert frames == [b"\x01", b"\x02"]

    def test_control_symbols_do_not_break_frames(self):
        """Paper Fig. 8: control symbols interleave with packet data."""
        assembler, frames, controls = self._assembler()
        assembler.push_burst([
            data_symbol(1), STOP, data_symbol(2), GO, data_symbol(3), GAP,
        ])
        assert frames == [b"\x01\x02\x03"]
        assert controls == [STOP, GO]

    def test_idle_ignored(self):
        assembler, frames, controls = self._assembler()
        assembler.push_burst([IDLE, data_symbol(9), IDLE, GAP])
        assert frames == [b"\x09"]
        assert controls == []

    def test_undecodable_control_dropped_and_counted(self):
        assembler, frames, _ = self._assembler()
        assembler.push_burst([data_symbol(1), control_symbol(0xFF), GAP])
        assert frames == [b"\x01"]
        assert assembler.undecodable_controls == 1

    def test_oversize_frame_discarded(self):
        assembler, frames, _ = self._assembler(max_frame=4)
        assembler.push_burst([data_symbol(0)] * 10 + [GAP])
        assert frames == []
        assert assembler.oversize_frames == 1
        # The assembler recovers for the next frame.
        assembler.push_burst([data_symbol(1), GAP])
        assert frames == [b"\x01"]

    def test_partial_length_and_reset(self):
        assembler, frames, _ = self._assembler()
        assembler.push_burst([data_symbol(1), data_symbol(2)])
        assert assembler.partial_length == 2
        assembler.reset()
        assembler.push(GAP)
        assert frames == []

    def test_fused_burst_equals_per_symbol(self):
        stream = ([data_symbol(b) for b in b"hello"] + [STOP, GAP]
                  + [data_symbol(b) for b in b"world"] + [GO]
                  + [control_symbol(0xAA), GAP, IDLE])
        a1, f1, c1 = self._assembler()
        a2, f2, c2 = self._assembler()
        a1.push_burst(stream)
        for symbol in stream:
            a2.push(symbol)
        assert f1 == f2
        assert c1 == c2
        assert a1.undecodable_controls == a2.undecodable_controls
