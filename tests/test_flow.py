"""Unit tests for link-level flow control (paper §4.3.1 semantics)."""

import pytest

from repro.errors import ConfigurationError
from repro.myrinet.flow import (
    LONG_TIMEOUT_PERIODS,
    SHORT_TIMEOUT_PERIODS,
    PortFlowControl,
    StopRefresher,
    TxFlowState,
    long_timeout_ps,
    short_timeout_ps,
)
from repro.myrinet.link import Channel, Link
from repro.myrinet.symbols import GAP, GO, STOP

CHAR = 12_500
DECAY = SHORT_TIMEOUT_PERIODS * CHAR


def test_paper_timeout_constants():
    assert SHORT_TIMEOUT_PERIODS == 16
    assert LONG_TIMEOUT_PERIODS == 4_000_000
    assert short_timeout_ps(CHAR) == 200_000           # 200 ns
    assert long_timeout_ps(CHAR) == 50_000_000_000     # 50 ms at 80 MB/s


class TestTxFlowState:
    def test_initially_unblocked(self, sim):
        state = TxFlowState(sim, CHAR)
        assert not state.blocked()
        assert state.earliest_resume() == sim.now

    def test_stop_blocks(self, sim):
        state = TxFlowState(sim, CHAR)
        state.on_stop_symbol()
        assert state.blocked()
        assert state.stops_received == 1

    def test_go_resumes_immediately(self, sim):
        state = TxFlowState(sim, CHAR)
        state.on_stop_symbol()
        state.on_go_symbol()
        assert not state.blocked()
        assert state.gos_received == 1

    def test_decay_on_quiet_link(self, sim):
        """Erroneous STOP on a quiet link recovers in 16 char periods."""
        state = TxFlowState(sim, CHAR)
        state.on_stop_symbol()
        sim.run_for(DECAY)
        assert state.blocked()  # exactly at the boundary: still stopped
        sim.run_for(1)
        assert not state.blocked()
        assert state.timeout_recoveries == 1

    def test_activity_resets_the_counter(self, sim):
        """Paper: "If a symbol is received, the counter is reset" — a
        STOP is sticky while the reverse channel carries traffic."""
        state = TxFlowState(sim, CHAR)
        state.on_stop_symbol()
        for _ in range(5):
            sim.run_for(DECAY // 2)
            state.note_activity()
        assert state.blocked()
        sim.run_for(DECAY + 1)
        assert not state.blocked()

    def test_activity_without_stop_is_harmless(self, sim):
        state = TxFlowState(sim, CHAR)
        state.note_activity()
        assert not state.blocked()

    def test_direct_hold_and_release(self, sim):
        state = TxFlowState(sim, CHAR)
        state.hold()
        assert state.blocked()
        assert state.earliest_resume() is None
        sim.run_for(10 * DECAY)
        assert state.blocked()  # direct holds never decay
        state.release()
        assert not state.blocked()

    def test_unblock_callback_on_go(self, sim):
        state = TxFlowState(sim, CHAR)
        fired = []
        state.notify_unblocked(lambda: fired.append(sim.now))
        state.on_stop_symbol()
        state.on_go_symbol()
        assert fired == [0]

    def test_unblock_callback_on_release(self, sim):
        state = TxFlowState(sim, CHAR)
        fired = []
        state.notify_unblocked(lambda: fired.append(1))
        state.hold()
        state.release()
        assert fired == [1]

    def test_control_symbol_dispatch(self, sim):
        state = TxFlowState(sim, CHAR)
        state.on_control_symbol(STOP)
        assert state.blocked()
        state.on_control_symbol(GO)
        assert not state.blocked()
        state.on_control_symbol(GAP)  # not flow control: ignored
        assert not state.blocked()

    def test_earliest_resume_tracks_last_activity(self, sim):
        state = TxFlowState(sim, CHAR)
        state.on_stop_symbol()
        resume1 = state.earliest_resume()
        sim.run_for(DECAY // 2)
        state.note_activity()
        assert state.earliest_resume() > resume1


class _Sink:
    def __init__(self):
        self.symbols = []

    def on_burst(self, burst, channel):
        self.symbols.extend(burst)


class TestStopRefresher:
    def test_bursts_hold_remote_stopped(self, sim):
        link = Link(sim, "l", char_period_ps=CHAR, propagation_ps=0)
        sink = _Sink()
        tx = link.attach_a(_Sink())
        link.attach_b(sink)
        refresher = StopRefresher(sim, tx, burst_length=16)
        refresher.start()
        sim.run_for(10 * DECAY)
        stops = [s for s in sink.symbols if s == STOP]
        # One 16-symbol burst per decay interval: continuous coverage.
        assert len(stops) >= 16 * 9
        assert refresher.active

    def test_stop_sends_single_go(self, sim):
        link = Link(sim, "l", char_period_ps=CHAR, propagation_ps=0)
        sink = _Sink()
        tx = link.attach_a(_Sink())
        link.attach_b(sink)
        refresher = StopRefresher(sim, tx, burst_length=16)
        refresher.start()
        sim.run_for(2 * DECAY)
        refresher.stop()
        sim.run_for(2 * DECAY)
        gos = [s for s in sink.symbols if s == GO]
        assert len(gos) == 1
        assert not refresher.active
        assert refresher.gos_sent == 1

    def test_start_stop_idempotent(self, sim):
        link = Link(sim, "l", char_period_ps=CHAR, propagation_ps=0)
        tx = link.attach_a(_Sink())
        link.attach_b(_Sink())
        refresher = StopRefresher(sim, tx)
        refresher.stop()  # never started: no GO
        assert refresher.gos_sent == 0
        refresher.start()
        refresher.start()
        refresher.stop()
        refresher.stop()
        assert refresher.gos_sent == 1

    def test_burst_length_validated(self, sim):
        link = Link(sim, "l")
        tx = link.attach_a(_Sink())
        with pytest.raises(ConfigurationError):
            StopRefresher(sim, tx, burst_length=0)


class TestPortFlowControl:
    def test_symbols_transport_backpressure(self, sim):
        link = Link(sim, "l", char_period_ps=CHAR, propagation_ps=0)
        sink = _Sink()
        tx = link.attach_a(_Sink())
        link.attach_b(sink)
        flow = PortFlowControl(sim, tx, transport="symbols")
        flow.set_backpressure(True)
        sim.run_for(2 * DECAY)
        assert any(s == STOP for s in sink.symbols)
        flow.set_backpressure(False)
        sim.run_for(2 * DECAY)
        assert any(s == GO for s in sink.symbols)

    def test_direct_transport_flips_remote_state(self, sim):
        link = Link(sim, "l")
        tx = link.attach_a(_Sink())
        remote = TxFlowState(sim, CHAR)
        flow = PortFlowControl(sim, tx, transport="direct",
                               remote_tx_state=remote)
        flow.set_backpressure(True)
        assert remote.blocked()
        flow.set_backpressure(False)
        assert not remote.blocked()

    def test_direct_transport_via_getter(self, sim):
        link = Link(sim, "l")
        tx = link.attach_a(_Sink())
        remote = TxFlowState(sim, CHAR)
        flow = PortFlowControl(sim, tx, transport="direct",
                               remote_tx_state_getter=lambda: remote)
        flow.set_backpressure(True)
        assert remote.blocked()

    def test_direct_needs_remote(self, sim):
        link = Link(sim, "l")
        tx = link.attach_a(_Sink())
        with pytest.raises(ConfigurationError):
            PortFlowControl(sim, tx, transport="direct")

    def test_unknown_transport_rejected(self, sim):
        link = Link(sim, "l")
        tx = link.attach_a(_Sink())
        with pytest.raises(ConfigurationError):
            PortFlowControl(sim, tx, transport="smoke-signals")

    def test_backpressure_idempotent(self, sim):
        link = Link(sim, "l", char_period_ps=CHAR, propagation_ps=0)
        sink = _Sink()
        tx = link.attach_a(_Sink())
        link.attach_b(sink)
        flow = PortFlowControl(sim, tx, transport="symbols")
        flow.set_backpressure(True)
        flow.set_backpressure(True)
        assert flow.backpressure_active
        flow.set_backpressure(False)
        flow.set_backpressure(False)
        sim.run_for(3 * DECAY)
        assert sum(1 for s in sink.symbols if s == GO) == 1
