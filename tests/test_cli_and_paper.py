"""Tests for the CLI and smoke tests for the fast paper experiments."""

import pathlib

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_synthesis_subcommand(self, capsys):
        assert main(["synthesis"]) == 0
        out = capsys.readouterr().out
        assert "fifo_inject" in out
        assert "model/paper" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_fast_experiment_with_report(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["run", "sec434", "--out", str(out_file)]) == 0
        stdout = capsys.readouterr().out
        assert "16-bit-apart swap" in stdout
        text = out_file.read_text()
        assert text.startswith("# DSN 2002 reproduction")
        assert "veHa" not in text  # tables carry counts, not payloads
        assert "checksum_drops" in text

    def test_parser_structure(self):
        parser = build_parser()
        args = parser.parse_args(["run", "all", "--scale", "0.5"])
        assert args.experiments == ["all"]
        assert args.scale == 0.5

    def test_capture_parser_structure(self):
        parser = build_parser()
        args = parser.parse_args(
            ["campaign", "--capture-dir", "out/cap", "--no-progress"]
        )
        assert args.capture_dir == "out/cap"
        args = parser.parse_args(["capture", "decode", "--input", "x"])
        assert args.capture_command == "decode"
        assert args.input == "x"

    def test_capture_missing_artifact_fails(self, tmp_path, capsys):
        assert main(
            ["capture", "summarize", "--input", str(tmp_path)]
        ) == 2
        assert "no capture artifact" in capsys.readouterr().err

    def test_campaign_artifacts_dir_parallel(self, tmp_path, capsys):
        """--workers N --artifacts-dir DIR: journal + merged artifacts."""
        root = tmp_path / "art"
        assert main([
            "campaign", "--experiments", "2", "--duration-ms", "1",
            "--workers", "2", "--artifacts-dir", str(root), "--no-progress",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 experiment(s) executed with 2 worker(s)" in out
        assert "artifacts merged" in out
        assert (root / "journal.jsonl").exists()
        assert (root / "telemetry" / "metrics.json").exists()
        assert (root / "capture" / "capture.rcap").exists()
        assert (root / "experiments").is_dir()

    def test_campaign_resume_requires_artifacts_dir(self, capsys):
        assert main(["campaign", "--resume", "--no-progress"]) == 2
        assert "--artifacts-dir" in capsys.readouterr().err

    def test_retired_flags_fail_with_pinned_hint(self, tmp_path, capsys):
        """The PR-4 aliases are retired: exit 2, exact replacement hint.

        The message text is pinned because migration tooling (and
        humans) grep for it; change it deliberately or not at all.
        """
        with pytest.raises(SystemExit) as err:
            main([
                "campaign", "--telemetry-dir", str(tmp_path / "t"),
                "--no-progress",
            ])
        assert err.value.code == 2
        stderr = capsys.readouterr().err
        assert stderr.startswith("DeprecationWarning: --telemetry-dir ")
        assert (
            "has been removed; use --artifacts-dir DIR "
            "(writes DIR/telemetry/ and DIR/capture/ — see "
            "docs/runtime.md)"
        ) in stderr

    def test_retired_flags_fail_together_naming_both(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as err:
            main([
                "campaign", "--telemetry-dir", str(tmp_path / "t"),
                "--capture-dir", str(tmp_path / "c"), "--no-progress",
            ])
        assert err.value.code == 2
        stderr = capsys.readouterr().err
        assert "--telemetry-dir/--capture-dir" in stderr

    def test_retired_flags_fail_on_run_too(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as err:
            main([
                "run", "sec434", "--capture-dir", str(tmp_path / "c"),
            ])
        assert err.value.code == 2
        assert "DeprecationWarning" in capsys.readouterr().err

    def test_artifacts_dir_umbrella_on_run(self, tmp_path, capsys):
        root = tmp_path / "art"
        assert main([
            "run", "sec434", "--artifacts-dir", str(root),
        ]) == 0
        captured = capsys.readouterr()
        assert "deprecated" not in captured.err
        assert (root / "telemetry" / "metrics.json").exists()
        assert (root / "capture" / "capture.rcap").exists()

    def test_campaign_capture_then_decode(self, tmp_path, capsys):
        """CLI acceptance: campaign --artifacts-dir, then summarize/decode."""
        root = tmp_path / "art"
        assert main([
            "campaign", "--experiments", "1", "--duration-ms", "1",
            "--seed", "1", "--artifacts-dir", str(root), "--no-progress",
        ]) == 0
        cap_dir = str(root / "capture")
        out = capsys.readouterr().out
        assert "capture shard(s)" in out

        assert main(["capture", "summarize", "--input", cap_dir]) == 0
        out = capsys.readouterr().out
        assert "lifecycle events" in out

        json_out = tmp_path / "analysis.json"
        assert main([
            "capture", "decode", "--input", cap_dir,
            "--json", str(json_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "Failure analysis" in out
        assert json_out.exists()


class TestPaperExperimentsFast:
    """The fast regeneration functions run inside the unit suite too, so
    a regression is caught before the benchmark stage."""

    def test_sec434(self):
        from repro.nftape.paper import sec434_udp_checksum
        table = sec434_udp_checksum(messages=10)
        swap = table.rows[0]
        assert swap["corrupted_delivered"] == 10
        plain = table.rows[1]
        assert plain["checksum_drops"] == 10

    def test_sec432(self):
        from repro.nftape.paper import sec432_packet_types
        table = sec432_packet_types()
        assert len(table.rows) == 5
        assert "node removed=True" in table.rows[0]["observed"]

    def test_sec433(self):
        from repro.nftape.paper import sec433_addresses
        table, artifacts = sec433_addresses()
        assert len(table.rows) == 4
        assert artifacts["fig11_before"]
        assert artifacts["fig11_after"]

    def test_sec35(self):
        from repro.nftape.paper import sec35_passthrough
        from repro.sim.timebase import MS
        table = sec35_passthrough(duration_ps=5 * MS)
        direct, with_device = table.rows
        assert direct["received"] == with_device["received"]

    def test_table2_small(self):
        from repro.nftape.paper import table2_latency
        table = table2_latency(exchanges=60, experiments=2)
        for row in table.rows:
            assert 220_000 < float(row["without_ns"]) < 250_000
