"""CFG builder tests (simflow).

Each modelling decision documented in ``repro.analysis.flow.cfg`` is
pinned here: branch joins, loop back-edges and ``else`` clauses,
``try``/``finally`` interposition on normal and jump exits, ``with``
unwinding edges, ``match`` arm fan-out, and the statement-level
placement of comprehensions.
"""

import ast
import textwrap

from repro.analysis.flow.cfg import CFG, LoopBind, build_cfg


def cfg_of(source: str) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def labels_reaching(cfg: CFG, index: int) -> set:
    """Labels of blocks with an edge into ``index``."""
    return {
        block.label for block in cfg.blocks if index in block.succs
    }


def block_by_label(cfg: CFG, label: str, nth: int = 0):
    matches = [b for b in cfg.blocks if b.label == label]
    return matches[nth]


def paths_exist(cfg: CFG, src: int, dst: int) -> bool:
    seen = set()
    stack = [src]
    while stack:
        index = stack.pop()
        if index == dst:
            return True
        if index in seen:
            continue
        seen.add(index)
        stack.extend(cfg.successors(index))
    return False


# ----------------------------------------------------------------------
# Straight line + if
# ----------------------------------------------------------------------

def test_straight_line_single_path():
    cfg = cfg_of("""\
        def f():
            a = 1
            b = a + 1
            return b
        """)
    # entry holds all three statements, return routes to exit.
    assert len(cfg.block(cfg.entry).stmts) == 3
    assert paths_exist(cfg, cfg.entry, cfg.exit)


def test_if_else_branches_join():
    cfg = cfg_of("""\
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
        """)
    then = block_by_label(cfg, "then")
    orelse = block_by_label(cfg, "else")
    join = block_by_label(cfg, "if-join")
    assert join.index in then.succs
    assert join.index in orelse.succs
    # Without an else the test block itself edges to the join.
    cfg2 = cfg_of("""\
        def f(x):
            if x:
                a = 1
            return x
        """)
    join2 = block_by_label(cfg2, "if-join")
    assert join2.index in cfg2.block(cfg2.entry).succs


# ----------------------------------------------------------------------
# Loops: back-edges, else, break/continue
# ----------------------------------------------------------------------

def test_for_loop_backedge_and_loopbind():
    cfg = cfg_of("""\
        def f(items):
            total = 0
            for item in items:
                total += item
            return total
        """)
    header = block_by_label(cfg, "loop-header")
    body = block_by_label(cfg, "loop-body")
    # The for-target binding is a synthetic LoopBind in the header.
    binds = [s for s in header.stmts if isinstance(s, LoopBind)]
    assert len(binds) == 1
    assert isinstance(binds[0].target, ast.Name)
    assert binds[0].target.id == "item"
    # Back edge: body flows back to the header.
    assert header.index in body.succs
    # Exhaustion: header flows to loop-after.
    after = block_by_label(cfg, "loop-after")
    assert after.index in header.succs


def test_while_else_entered_from_header_break_skips_it():
    cfg = cfg_of("""\
        def f(x):
            while x:
                if x > 10:
                    break
                x += 1
            else:
                x = -1
            return x
        """)
    header = block_by_label(cfg, "loop-header")
    loop_else = block_by_label(cfg, "loop-else")
    after = block_by_label(cfg, "loop-after")
    # else is entered only from the header (normal exhaustion)...
    assert loop_else.index in header.succs
    assert after.index not in header.succs  # exhaustion goes via else
    # ...while break jumps straight past it to loop-after.
    break_blocks = [
        b for b in cfg.blocks
        if any(isinstance(s, ast.Break) for s in b.stmts)
    ]
    assert break_blocks and after.index in break_blocks[0].succs
    assert all(loop_else.index not in b.succs for b in break_blocks)


def test_continue_returns_to_header():
    cfg = cfg_of("""\
        def f(items):
            for item in items:
                if item is None:
                    continue
                item.use()
        """)
    header = block_by_label(cfg, "loop-header")
    continue_blocks = [
        b for b in cfg.blocks
        if any(isinstance(s, ast.Continue) for s in b.stmts)
    ]
    assert continue_blocks
    assert header.index in continue_blocks[0].succs


# ----------------------------------------------------------------------
# try / except / else / finally
# ----------------------------------------------------------------------

def test_try_except_every_body_block_reaches_each_handler():
    cfg = cfg_of("""\
        def f():
            try:
                a = risky()
                if a:
                    b = risky_two()
            except ValueError:
                a = -1
            except KeyError:
                a = -2
            return a
        """)
    handlers = [b for b in cfg.blocks if b.label == "except"]
    assert len(handlers) == 2
    body_blocks = [
        b for b in cfg.blocks
        if b.label in ("try-body", "then", "if-join")
    ]
    # A raise can happen anywhere in the body: every body block has an
    # exceptional edge to every handler.
    for body in body_blocks:
        for handler in handlers:
            assert handler.index in body.succs


def test_try_finally_interposed_on_normal_and_return_exits():
    cfg = cfg_of("""\
        def f(x):
            try:
                if x:
                    return 1
                a = 2
            finally:
                cleanup()
            return a
        """)
    final = block_by_label(cfg, "finally")
    # The return inside the body routes THROUGH the finally, not
    # directly to exit; the finally then reaches the function exit.
    return_blocks = [
        b for b in cfg.blocks
        if any(isinstance(s, ast.Return) for s in b.stmts)
        and b.label != "finally"
    ]
    inner_return = next(
        b for b in return_blocks if paths_exist(cfg, cfg.entry, b.index)
        and final.index in b.succs
    )
    assert cfg.exit not in inner_return.succs
    assert paths_exist(cfg, final.index, cfg.exit)
    # The normal fall-through exit also transits the finally.
    join = block_by_label(cfg, "try-join")
    assert paths_exist(cfg, final.index, join.index)


def test_try_except_else_runs_only_after_normal_body():
    cfg = cfg_of("""\
        def f():
            try:
                a = risky()
            except ValueError:
                a = -1
            else:
                a = a + 1
            return a
        """)
    # The else statements are appended to the body's fall-out block, so
    # the handler never flows through them: handler -> join directly.
    handler = block_by_label(cfg, "except")
    join = block_by_label(cfg, "try-join")
    assert join.index in handler.succs


def test_finally_without_handlers_reaches_function_exit():
    cfg = cfg_of("""\
        def f():
            try:
                risky()
            finally:
                cleanup()
        """)
    final_blocks = [b for b in cfg.blocks if b.label == "finally"]
    assert final_blocks
    # An unhandled exception transits the finally and leaves the
    # function: some finally-subgraph block edges to exit.
    assert paths_exist(cfg, final_blocks[0].index, cfg.exit)


# ----------------------------------------------------------------------
# with — unwinding
# ----------------------------------------------------------------------

def test_with_body_blocks_all_reach_join():
    cfg = cfg_of("""\
        def f(path):
            with open(path) as handle:
                a = handle.read()
                if a:
                    b = 1
            return 1
        """)
    join = block_by_label(cfg, "with-join")
    body_blocks = [
        b for b in cfg.blocks
        if b.label in ("with-body", "then", "if-join")
    ]
    # __exit__ may suppress an exception raised anywhere in the body.
    for body in body_blocks:
        assert join.index in body.succs


def test_with_as_binding_is_an_assignment_in_the_entry_block():
    cfg = cfg_of("""\
        def f(path):
            with open(path) as handle:
                pass
        """)
    entry_stmts = cfg.block(cfg.entry).stmts
    assigns = [s for s in entry_stmts if isinstance(s, ast.Assign)]
    assert len(assigns) == 1
    assert isinstance(assigns[0].targets[0], ast.Name)
    assert assigns[0].targets[0].id == "handle"


# ----------------------------------------------------------------------
# match
# ----------------------------------------------------------------------

def test_match_arms_fan_out_and_rejoin():
    cfg = cfg_of("""\
        def f(cmd):
            match cmd:
                case "start":
                    a = 1
                case "stop":
                    a = 2
                case other:
                    a = 3
            return a
        """)
    arms = [b for b in cfg.blocks if b.label == "case"]
    assert len(arms) == 3
    join = block_by_label(cfg, "match-join")
    for arm in arms:
        assert paths_exist(cfg, arm.index, join.index)
    # Conservative no-case-matched fall-through from the subject block.
    assert join.index in cfg.block(cfg.entry).succs
    # The capture arm binds `other` from the subject.
    capture_arm = arms[2]
    binds = [s for s in capture_arm.stmts if isinstance(s, ast.Assign)]
    assert binds and binds[0].targets[0].id == "other"


# ----------------------------------------------------------------------
# Comprehensions stay statement-local
# ----------------------------------------------------------------------

def test_nested_comprehension_creates_no_blocks():
    plain = cfg_of("""\
        def f(rows):
            return 1
        """)
    with_comp = cfg_of("""\
        def f(rows):
            return [c for row in rows for c in row if c]
        """)
    # Same block count: the nested comprehension lives inside its
    # Return statement, no loop blocks are created for it.
    assert len(with_comp.blocks) == len(plain.blocks)
    assert not any(
        isinstance(s, LoopBind) for s in with_comp.statements()
    )


# ----------------------------------------------------------------------
# Dead code and reachability
# ----------------------------------------------------------------------

def test_dead_code_after_return_is_placed_but_unreachable():
    cfg = cfg_of("""\
        def f():
            return 1
            x = 2
        """)
    dead = block_by_label(cfg, "dead")
    placed = cfg.statements()
    assert any(
        isinstance(s, ast.Assign) for s in dead.stmts
    )
    assert dead.index not in cfg.reachable()
    assert any(isinstance(s, ast.Assign) for s in placed)
