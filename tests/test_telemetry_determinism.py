"""Telemetry must not perturb the simulation — golden-digest proof.

The determinism sanitizer's probe digests the kernel's entire fired-event
stream.  The golden digests below were captured on the tree *before* the
telemetry subsystem existed, so these tests prove two things at once:

* the disabled fast path is a true no-op — same seed, same digest as the
  pre-telemetry code;
* an *enabled* telemetry session only observes: metrics and spans are
  recorded, yet the event stream is still bit-identical.

CI runs this file as its telemetry digest gate.
"""

import pytest

from repro.analysis.sanitize import run_probe
from repro.sim.timebase import MS
from repro.telemetry import TelemetrySession
from repro.telemetry.state import STATE

#: Kernel event-stream digests captured before the telemetry subsystem
#: was introduced (probe duration 2 ms, default probe campaign).
GOLDEN_DIGESTS = {
    7: "9be2c11d056cd6d0a230152dc7659e17",
    0: "675fc3dcb6c8a1f96a0324e7f0c5ada8",
}

DURATION_PS = 2 * MS


@pytest.fixture(autouse=True)
def _clean_state():
    STATE.deactivate()
    yield
    STATE.deactivate()


@pytest.mark.parametrize("seed", sorted(GOLDEN_DIGESTS))
def test_disabled_telemetry_reproduces_pre_telemetry_digest(seed):
    """With telemetry off, the event stream matches the pre-PR tree."""
    result = run_probe(seed=seed, duration_ps=DURATION_PS)
    assert result.digest == GOLDEN_DIGESTS[seed], (
        "the kernel event stream diverged from the pre-telemetry golden "
        f"digest for seed={seed}: {result.summary()}"
    )


def test_enabled_telemetry_is_observation_only():
    """With telemetry *on*, the digest is still the pre-telemetry one."""
    with TelemetrySession() as session:
        result = run_probe(seed=7, duration_ps=DURATION_PS)
    assert result.digest == GOLDEN_DIGESTS[7], (
        "an active telemetry session perturbed the event stream: "
        f"{result.summary()}"
    )
    # ... while actually having observed the run.
    assert session.registry.value("sim.events_fired") > 0
    assert result.events_fired >= session.registry.value("sim.events_fired")


def test_enabled_and_disabled_events_fired_agree():
    """Kernel batch accounting matches the kernel's own event counter."""
    with TelemetrySession() as session:
        result = run_probe(seed=0, duration_ps=DURATION_PS)
    fired = session.registry.value("sim.events_fired")
    # The session wraps the whole probe, so every run()/run_until() batch
    # is accounted and the registry total matches the kernel's counter.
    assert fired == result.events_fired
