"""Unit and property tests for the host protocol stack and workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChecksumError, ProtocolError
from repro.hostsim import (
    EchoResponder,
    FloodPing,
    HostStack,
    IpAddress,
    IpLiteHeader,
    MessageSink,
    PingPong,
    UdpDatagram,
    UdpGenerator,
    internet_checksum,
    verify_checksum,
)
from repro.hostsim.checksum import ones_complement_sum
from repro.myrinet.addresses import MacAddress
from repro.myrinet.network import build_paper_testbed
from repro.sim.timebase import MS, US


class TestChecksum:
    def test_rfc1071_example(self):
        # RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert ones_complement_sum(data) == 0xDDF2
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_zero_checksum_transmitted_as_ffff(self):
        assert internet_checksum(b"\xff\xff") == 0xFFFF

    @given(st.binary(min_size=0, max_size=100))
    def test_verify_accepts_correct_checksum(self, data):
        if len(data) % 2:
            data += b"\x00"
        checksum = internet_checksum(data)
        framed = data + checksum.to_bytes(2, "big")
        assert verify_checksum(framed)

    @given(st.binary(min_size=2, max_size=100),
           st.integers(min_value=0), st.integers(min_value=0))
    def test_swap_16_bits_apart_is_invisible(self, data, i, j):
        """The §4.3.4 blind spot: exchanging two aligned 16-bit words
        leaves the one's-complement checksum unchanged."""
        if len(data) % 2:
            data += b"\x00"
        words = [data[k:k + 2] for k in range(0, len(data), 2)]
        i %= len(words)
        j %= len(words)
        words[i], words[j] = words[j], words[i]
        swapped = b"".join(words)
        assert internet_checksum(swapped) == internet_checksum(data)

    def test_have_a_lot_of_fun(self):
        """The paper's exact example string."""
        original = b"Have a lot of fun"
        swapped = b"veHa a lot of fun"
        assert internet_checksum(original) == internet_checksum(swapped)
        # Whereas an arbitrary corruption changes it.
        assert internet_checksum(b"HAVE a lot of fun") != \
            internet_checksum(original)


class TestIpUdp:
    def _header(self):
        return IpLiteHeader(src=IpAddress.for_mac(MacAddress(0x0A)),
                            dst=IpAddress.for_mac(MacAddress(0x0B)))

    def test_ip_address_for_mac(self):
        address = IpAddress.for_mac(MacAddress(0x02_00_5E_00_01_02))
        assert str(address) == "10.0.1.2"

    def test_ip_header_roundtrip(self):
        header = self._header()
        header.total_length = 42
        parsed = IpLiteHeader.from_bytes(header.to_bytes())
        assert parsed.src == header.src
        assert parsed.dst == header.dst
        assert parsed.total_length == 42

    def test_bad_version_rejected(self):
        raw = bytearray(self._header().to_bytes())
        raw[0] = 0x60
        with pytest.raises(ProtocolError):
            IpLiteHeader.from_bytes(bytes(raw))

    @given(st.binary(max_size=200),
           st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_udp_roundtrip(self, payload, src_port, dst_port):
        header = IpLiteHeader(src=IpAddress(1), dst=IpAddress(2))
        datagram = UdpDatagram(src_port, dst_port, payload)
        parsed = UdpDatagram.from_bytes(datagram.to_bytes(header), header)
        assert parsed.payload == payload
        assert parsed.src_port == src_port
        assert parsed.dst_port == dst_port

    def test_corruption_fails_checksum(self):
        header = self._header()
        raw = bytearray(UdpDatagram(1, 2, b"payload").to_bytes(header))
        raw[-1] ^= 0x01
        with pytest.raises(ChecksumError):
            UdpDatagram.from_bytes(bytes(raw), header)

    def test_pseudo_header_binds_addresses(self):
        """A datagram re-parsed under different IP addresses fails."""
        header = self._header()
        raw = UdpDatagram(1, 2, b"x").to_bytes(header)
        other = IpLiteHeader(src=IpAddress(9), dst=IpAddress(10))
        with pytest.raises(ChecksumError):
            UdpDatagram.from_bytes(raw, other)

    def test_length_field_checked(self):
        header = self._header()
        raw = UdpDatagram(1, 2, b"abc").to_bytes(header)
        with pytest.raises(ProtocolError):
            UdpDatagram.from_bytes(raw + b"extra", header)


@pytest.fixture
def network(sim):
    net = build_paper_testbed(sim)
    net.settle()
    return net


def stacks_for(sim, network, names=("pc", "sparc1")):
    return [HostStack(sim, network.host(n).interface) for n in names]


class TestHostStack:
    def test_udp_end_to_end(self, sim, network):
        pc, sparc1 = stacks_for(sim, network)
        got = []
        sparc1.bind(7777, lambda mac, ip, port, payload: got.append(
            (str(ip), payload)))
        pc.send_udp(sparc1.interface.mac, 7777, b"datagram")
        sim.run_for(2 * MS)
        assert got == [(str(pc.ip), b"datagram")]
        assert pc.udp_sent == 1
        assert sparc1.udp_delivered == 1

    def test_unbound_port_drops(self, sim, network):
        pc, sparc1 = stacks_for(sim, network)
        pc.send_udp(sparc1.interface.mac, 9999, b"nobody home")
        sim.run_for(2 * MS)
        assert sparc1.unbound_drops == 1

    def test_timestamp_quantized_to_tick(self, sim, network):
        stack = HostStack(sim, network.host("pc").interface,
                          timer_tick_ps=1 * US, timer_phase_ps=0)
        sim.run_for(1_500_000)  # advance off the tick boundary
        stamp = stack.timestamp()
        assert stamp % (1 * US) == 0
        assert 0 <= sim.now - stamp < 1 * US

    def test_per_port_send_accounting(self, sim, network):
        pc, sparc1 = stacks_for(sim, network)
        sparc1.bind(1111, lambda *a: None)
        pc.send_udp(sparc1.interface.mac, 1111, b"a")
        pc.send_udp(sparc1.interface.mac, 2222, b"b")
        sim.run_for(2 * MS)
        assert pc.udp_sent_by_port[1111] == 1
        assert pc.udp_sent_by_port[2222] == 1


class TestApps:
    def test_generator_and_sink(self, sim, network):
        pc, sparc1 = stacks_for(sim, network)
        sink = MessageSink(sparc1, 5000, store_limit=5)
        generator = UdpGenerator(sim, pc, sparc1.interface.mac, 5000,
                                 payload_size=32, interval_ps=100 * US,
                                 count=10)
        generator.start()
        sim.run_for(5 * MS)
        assert generator.sent == 10
        assert sink.received == 10
        assert len(sink.messages) == 5
        assert all(len(m) == 32 for m in sink.messages)

    def test_generator_respects_forbidden_bytes(self, sim, network):
        """Table 4: 'the symbol mask we corrupted did not appear in the
        message itself'."""
        pc, sparc1 = stacks_for(sim, network)
        sink = MessageSink(sparc1, 5000, store_limit=20)
        generator = UdpGenerator(sim, pc, sparc1.interface.mac, 5000,
                                 payload_size=64, interval_ps=50 * US,
                                 count=20, forbidden_bytes={0x41, 0x42})
        generator.start()
        sim.run_for(5 * MS)
        for message in sink.messages:
            assert 0x41 not in message
            assert 0x42 not in message

    def test_generator_stop(self, sim, network):
        pc, sparc1 = stacks_for(sim, network)
        generator = UdpGenerator(sim, pc, sparc1.interface.mac, 5000,
                                 interval_ps=100 * US)
        generator.start()
        sim.run_for(1 * MS)
        generator.stop()
        sent = generator.sent
        sim.run_for(2 * MS)
        assert generator.sent == sent

    def test_echo_and_flood_ping(self, sim, network):
        pc, sparc1 = stacks_for(sim, network)
        echo = EchoResponder(sparc1, 7)
        ping = FloodPing(sim, pc, sparc1.interface.mac, count=25)
        ping.start()
        sim.run_for(20 * MS)
        assert ping.sent == 25
        assert ping.replies == 25
        assert ping.timeouts == 0
        assert echo.echoed == 25

    def test_flood_ping_timeout_recovery(self, sim, network):
        pc, _ = stacks_for(sim, network)
        # Ping a host with no echo responder: every round times out.
        ping = FloodPing(sim, pc,
                         network.host("sparc2").interface.mac,
                         count=3, loss_timeout_ps=2 * MS)
        ping.start()
        sim.run_for(30 * MS)
        assert ping.sent == 3
        assert ping.timeouts == 3
        assert ping.replies == 0

    def test_pingpong_measures_per_packet_time(self, sim, network):
        pc, sparc1 = stacks_for(sim, network)
        results = []
        pingpong = PingPong(sim, pc, sparc1, count=50,
                            on_complete=results.append, record_rtts=True)
        pingpong.start()
        sim.run_for(100 * MS)
        assert results
        result = results[0]
        assert result.exchanges == 50
        # Per-packet time is dominated by host overheads (~40 us with
        # test defaults) and is strictly positive.
        assert result.avg_time_per_packet_ps > 10 * US
        assert len(result.rtts_ps) == 50
        assert pingpong.losses == 0
