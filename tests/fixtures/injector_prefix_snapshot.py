"""Vendored pre-fix snapshot of the FifoInjector scalar/fast pair.

This is NOT importable production code: it is the mid-development state
of ``repro.hw.injector`` from the PR-5 fast path, vendored as a static
fixture so ``tests/test_flow_regressions.py`` can prove the FLOW3xx
effect-contract analysis would have caught both bugs the dynamic
conformance harness found:

* the fused-loop FIFO **watermark off-by-one** — this snapshot's
  ``_process_burst_fused`` ends with ``note_occupancy(min(count,
  depth))`` where the per-step transient reaches ``depth + 1``
  (FLOW302 against the contract's canonical signature);
* the **burst-scoped rewrite positions** — ``_apply_corruption``
  records ``last_burst_rewrites`` but this snapshot's
  ``_corrupt_pipeline_tail`` does not, so fused-path CRC/provenance
  accounting silently lacked rewrite positions (FLOW301).

Everything else matches the shipped code (telemetry hooks trimmed).
The file is parsed, never imported — the undefined names are fine.
"""


class FifoInjector:  # pragma: no cover - parsed only, never executed

    def _odd_cycle(self, symbol):
        self.clock.tick()
        self.clock.expect(ClockPhase.ODD)
        self.fifo.push(symbol)
        self.compare.shift(symbol)
        self.symbols_processed += 1
        self._segment_index += 1
        if self.fifo.occupancy > self.pipeline_depth:
            return self.fifo.pop()
        return None

    def _even_cycle(self):
        self.clock.tick()
        self.clock.expect(ClockPhase.EVEN)
        forced = self._inject_now
        if forced:
            self._inject_now = False
        triggered = forced
        if not triggered and self.config.match_mode is not MatchMode.OFF:
            if self.config.match_mode is MatchMode.ONCE and self._once_fired:
                triggered = False
            else:
                triggered = self.compare.evaluate(self.config)
        if not triggered:
            return
        if self.config.match_mode is MatchMode.ONCE and not forced:
            self._once_fired = True
        self._apply_corruption(forced)

    def _apply_corruption(self, forced):
        window_before, ctl_before = self.compare.snapshot()
        config = self.config
        if config.corrupt_mode is CorruptMode.TOGGLE:
            window_after = window_before ^ config.corrupt_data
        else:
            window_after = (
                (window_before & ~config.corrupt_mask)
                | (config.corrupt_data & config.corrupt_mask)
            ) & _MASK32
        ctl_after = (
            (ctl_before & ~config.corrupt_ctl_mask)
            | (config.corrupt_ctl & config.corrupt_ctl_mask)
        ) & 0xF
        lanes_rewritten = 0
        lanes_unreachable = 0
        for lane in range(SEGMENT_LANES):
            old_byte = (window_before >> (8 * lane)) & 0xFF
            new_byte = (window_after >> (8 * lane)) & 0xFF
            old_ctl = (ctl_before >> lane) & 1
            new_ctl = (ctl_after >> lane) & 1
            if old_byte == new_byte and old_ctl == new_ctl:
                continue
            if lane >= self.fifo.occupancy:
                lanes_unreachable += 1
                continue
            replacement = (
                data_symbol(new_byte) if new_ctl else control_symbol(new_byte)
            )
            self.fifo.rewrite_from_tail(lane, replacement)
            lanes_rewritten += 1
            self.last_burst_rewrites.append(
                self._segment_index - 1 - lane - self._rewrite_origin
            )
        self.injections += 1
        if forced:
            self.forced_injections += 1
        event = InjectionEvent(
            segment_index=self._segment_index,
            window_before=window_before,
            ctl_before=ctl_before,
            window_after=window_after,
            ctl_after=ctl_after,
            lanes_rewritten=lanes_rewritten,
            lanes_unreachable=lanes_unreachable,
            forced=forced,
        )
        if len(self.events) < self.events_limit:
            self.events.append(event)
        if self._on_injection is not None:
            self._on_injection(event)

    def _process_burst_fused(self, burst):
        config = self.config
        window, ctl = self.compare.snapshot()
        filled = self.compare._filled
        mode_on = config.match_mode is MatchMode.ON
        mode_once = config.match_mode is MatchMode.ONCE
        cd = config.compare_data
        cm = config.compare_mask
        cc = config.compare_ctl
        ccm = config.compare_ctl_mask
        pipeline = []
        output = []
        out_append = output.append
        pipe_append = pipeline.append
        depth = self.pipeline_depth
        segment = self._segment_index
        matches = 0
        evaluations = 0
        pop_at = 0
        for symbol in burst:
            pipe_append(symbol)
            if len(pipeline) - pop_at > depth:
                out_append(pipeline[pop_at])
                pop_at += 1
            window = ((window << 8) | symbol.value) & 0xFFFFFFFF
            ctl = ((ctl << 1) | (1 if symbol.is_data else 0)) & 0xF
            if filled < SEGMENT_LANES:
                filled += 1
            segment += 1
            forced = self._inject_now
            if forced:
                self._inject_now = False
                triggered = True
            elif mode_on or (mode_once and not self._once_fired):
                evaluations += 1
                if ((window ^ cd) & cm) == 0 and ((ctl ^ cc) & ccm) == 0:
                    matches += 1
                    triggered = True
                else:
                    triggered = False
            else:
                triggered = False
            if not triggered:
                continue
            if mode_once and not forced:
                self._once_fired = True
            self._corrupt_pipeline_tail(
                pipeline, pop_at, window, ctl, forced, segment
            )
        output.extend(pipeline[pop_at:])
        count = len(burst)
        self.symbols_processed += count
        self._segment_index = segment
        self.clock._cycles += 2 * count
        self.compare._window = window
        self.compare._ctl = ctl
        self.compare._filled = filled
        self.compare.shifts += count
        self.compare.evaluations += evaluations
        self.compare.matches += matches
        self.fifo.ram.writes += count
        self.fifo.ram.reads += count
        self.fifo.note_occupancy(min(count, depth))
        return output

    def _corrupt_pipeline_tail(
        self, pipeline, pop_at, window, ctl, forced, segment
    ):
        config = self.config
        if config.corrupt_mode is CorruptMode.TOGGLE:
            window_after = window ^ config.corrupt_data
        else:
            window_after = (
                (window & ~config.corrupt_mask)
                | (config.corrupt_data & config.corrupt_mask)
            ) & _MASK32
        ctl_after = (
            (ctl & ~config.corrupt_ctl_mask)
            | (config.corrupt_ctl & config.corrupt_ctl_mask)
        ) & 0xF
        lanes_rewritten = 0
        lanes_unreachable = 0
        occupancy = len(pipeline) - pop_at
        for lane in range(SEGMENT_LANES):
            old_byte = (window >> (8 * lane)) & 0xFF
            new_byte = (window_after >> (8 * lane)) & 0xFF
            old_ctl = (ctl >> lane) & 1
            new_ctl = (ctl_after >> lane) & 1
            if old_byte == new_byte and old_ctl == new_ctl:
                continue
            if lane >= occupancy:
                lanes_unreachable += 1
                continue
            replacement = (
                data_symbol(new_byte) if new_ctl else control_symbol(new_byte)
            )
            pipeline[len(pipeline) - 1 - lane] = replacement
            lanes_rewritten += 1
            self.fifo.in_place_rewrites += 1
        self.injections += 1
        if forced:
            self.forced_injections += 1
        event = InjectionEvent(
            segment_index=segment,
            window_before=window,
            ctl_before=ctl,
            window_after=window_after,
            ctl_after=ctl_after,
            lanes_rewritten=lanes_rewritten,
            lanes_unreachable=lanes_unreachable,
            forced=forced,
        )
        if len(self.events) < self.events_limit:
            self.events.append(event)
        if self._on_injection is not None:
            self._on_injection(event)
