"""Tests for trunk splicing, data-link chatter monitoring, and live
reconfiguration — §1/§3.2 capabilities beyond the basic campaigns."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FaultInjectorDevice, InjectorSession
from repro.core.crcfix import CrcFixupStage
from repro.core.faults import replace_bytes
from repro.hw.registers import MatchMode
from repro.myrinet.crc8 import crc8
from repro.myrinet.network import MyrinetNetwork, build_paper_testbed
from repro.myrinet.packet import PACKET_TYPE_DATA, PACKET_TYPE_MAPPING, MyrinetPacket
from repro.myrinet.symbols import GAP, data_symbols, symbol_bytes
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import MS


def _two_switch_network(sim, device=None):
    network = MyrinetNetwork(sim, rng=DeterministicRng(3),
                             map_interval_ps=50 * MS)
    network.add_switch("s1")
    network.add_switch("s2")
    network.add_host("a")
    network.add_host("b")
    network.connect("a", "s1", 0)
    network.connect("b", "s2", 0)
    network.connect_switches("s1", 7, "s2", 7, device=device)
    network.settle(10 * MS)
    return network


class TestTrunkSplice:
    def test_mapping_crosses_trunk_device(self, sim):
        device = FaultInjectorDevice(sim)
        network = _two_switch_network(sim, device=device)
        mapper = network.mapper().mcp
        assert set(mapper.current_map.entries) == {"a"}
        # Both hosts hold cross-trunk routes.
        a = network.host("a").interface
        b = network.host("b").interface
        assert b.mac in a.routing_table
        assert a.mac in b.routing_table

    def test_cross_trunk_injection(self, sim):
        device = FaultInjectorDevice(sim)
        network = _two_switch_network(sim, device=device)
        a = network.host("a").interface
        b = network.host("b").interface
        received = []
        b.set_data_handler(lambda s, p: received.append(p))
        device.configure("R", replace_bytes(b"runk", b"RUNK",
                                            match_mode=MatchMode.ONCE,
                                            crc_fixup=True))
        a.send_to(b.mac, b"over the trunk link")
        sim.run_for(3 * MS)
        assert received == [b"over the tRUNK link"]

    def test_trunk_device_sees_interswitch_route_bytes(self, sim):
        """At the trunk, frames still carry a route byte — the injector
        can target the routing header itself."""
        device = FaultInjectorDevice(sim)
        network = _two_switch_network(sim, device=device)
        a = network.host("a").interface
        b = network.host("b").interface
        a.send_to(b.mac, b"observe me")
        sim.run_for(3 * MS)
        stats = device.statistics("R").stats
        assert stats.frames >= 1
        # The device's passive parser skipped the remaining route byte
        # and still classified the packet.
        assert stats.packet_types[PACKET_TYPE_DATA] >= 1


class TestDeviceChatterMonitoring:
    def test_statistics_count_mapping_chatter(self, sim):
        """§3.2: 'Information that is only accessible on the data-link
        layer (e.g., device chatter to set up routing tables) can also
        be monitored.'"""
        device = FaultInjectorDevice(sim)
        network = build_paper_testbed(sim, device=device,
                                      map_interval_ps=20 * MS)
        network.settle()
        sim.run_for(60 * MS)  # several mapping rounds
        chatter = device.statistics("R").stats.packet_types
        assert chatter[PACKET_TYPE_MAPPING] >= 3  # pc's scout replies

    def test_control_symbol_census(self, sim):
        device = FaultInjectorDevice(sim)
        network = build_paper_testbed(sim, device=device)
        network.settle()
        pc = network.host("pc").interface
        sparc1 = network.host("sparc1").interface
        for _index in range(4):
            pc.send_to(sparc1.mac, b"traffic")
        sim.run_for(3 * MS)
        controls = device.statistics("R").stats.control_symbols
        assert controls["GAP"] >= 4  # one trailing GAP per packet


class TestLiveReconfiguration:
    def test_reconfigure_while_inserted_in_the_network(self, sim):
        """§3.2: 'the FPGA can be reprogrammed while inserted in the
        network' — traffic keeps flowing during a serial upload."""
        device = FaultInjectorDevice(sim)
        network = build_paper_testbed(sim, device=device)
        session = InjectorSession(sim, device)
        network.settle()
        pc = network.host("pc").interface
        sparc1 = network.host("sparc1").interface
        received = []
        sparc1.set_data_handler(lambda s, p: received.append(p))

        session.configure("R", replace_bytes(b"zz", b"ZZ",
                                             match_mode=MatchMode.ONCE,
                                             crc_fixup=True))
        # Send continuously while the upload is in flight.
        for index in range(30):
            pc.send_to(sparc1.mac, b"live %02d" % index)
            sim.run_for(2 * MS)
        assert len(received) == 30  # nothing lost during reprogramming
        assert session.idle

        pc.send_to(sparc1.mac, b"now zz hits")
        sim.run_for(2 * MS)
        assert received[-1] == b"now ZZ hits"


class TestCrcFixupProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        payload=st.binary(min_size=1, max_size=80),
        position=st.integers(min_value=0, max_value=79),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_dirty_frames_always_leave_crc_valid(self, payload, position,
                                                 flip):
        """Whatever the injector did to a frame, the fix-up stage emits
        a frame whose trailing CRC-8 verifies."""
        packet = MyrinetPacket(route=[], packet_type=PACKET_TYPE_DATA,
                               payload=payload)
        raw = bytearray(packet.to_bytes())
        raw[position % (len(raw) - 1)] ^= flip  # corrupt anywhere but CRC
        stage = CrcFixupStage()
        burst = data_symbols(bytes(raw))
        burst.append(GAP)
        out = stage.feed(burst, enabled=True, dirty=True)
        assert crc8(symbol_bytes(out)) == 0
