"""End-to-end correlation tests: real campaign artifacts in, verdicts out.

These tests run the actual campaign CLI (in-process) to produce genuine
artifact directories — engine layout via ``--artifacts-dir`` at two
worker counts, flat layout via the deprecated per-artifact flags — then
drive :func:`repro.insight.analyze_artifacts` through its contract:

* the top-ranked cause names the actually-injected fault;
* the blast radius lists exactly the host pairs routed across the
  corrupted segment;
* reports are byte-stable across worker counts;
* every damaged-input edge (missing files, torn JSONL tails, orphan
  spans, orphan windows) degrades into a partial report — and bumps the
  ``insight.degraded`` counter — instead of crashing.
"""

import json
import shutil

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.insight import analyze_artifacts, load_artifacts
from repro.telemetry import TelemetrySession

EXPECTED_RL_PAIRS = [
    ("pc", "sparc1"), ("pc", "sparc2"),
    ("sparc1", "pc"), ("sparc2", "pc"),
]


@pytest.fixture(scope="module")
def engine_root(tmp_path_factory):
    """A 3-experiment sharded campaign's merged artifact directory."""
    root = tmp_path_factory.mktemp("insight") / "engine"
    assert main([
        "campaign", "--experiments", "3", "--duration-ms", "1",
        "--workers", "2", "--artifacts-dir", str(root), "--no-progress",
    ]) == 0
    return root


@pytest.fixture(scope="module")
def engine_root_serial(tmp_path_factory):
    """The same campaign executed with one worker (stability witness)."""
    root = tmp_path_factory.mktemp("insight") / "engine-w1"
    assert main([
        "campaign", "--experiments", "3", "--duration-ms", "1",
        "--workers", "1", "--artifacts-dir", str(root), "--no-progress",
    ]) == 0
    return root


@pytest.fixture(scope="module")
def flat_root(tmp_path_factory, run_flat_campaign):
    """A legacy flat-layout artifact directory (serial ambient session)."""
    root = tmp_path_factory.mktemp("insight") / "flat"
    run_flat_campaign(root, experiments=1)
    return root


def _mutable_copy(source, tmp_path, name):
    target = tmp_path / name
    shutil.copytree(source, target)
    return target


class TestHappyPath:
    def test_engine_layout_full_verdict(self, engine_root):
        report = analyze_artifacts(engine_root)
        assert report.campaign["source"] == "engine"
        assert report.campaign["spec_present"] is True
        assert [i.index for i in report.incidents] == [0, 1, 2]
        assert [i.name for i in report.incidents] == [
            "IDLE->GAP", "GAP->IDLE", "STOP->GO",
        ]
        faulted = [
            i for i in report.incidents
            if i.features["injections"] or i.features["marks_matched"]
        ]
        assert faulted, "campaign injected faults but none were observed"
        for incident in faulted:
            assert incident.top_cause == f"injected-fault:{incident.name}"

    def test_blast_radius_is_exactly_the_routed_pairs(self, engine_root):
        report = analyze_artifacts(engine_root)
        faulted = [
            i for i in report.incidents
            if i.features["injections"] or i.features["marks_matched"]
        ]
        for incident in faulted:
            pairs = [
                (p["src"], p["dst"]) for p in incident.blast_radius.pairs
            ]
            assert pairs == EXPECTED_RL_PAIRS

    def test_spans_join_on_shard_and_span_id(self, engine_root):
        report = analyze_artifacts(engine_root)
        joined = [i for i in report.incidents if i.span.get("joined")]
        assert joined
        for incident in joined:
            names = {p["name"] for p in incident.span["phases"]}
            assert "workload" in names

    def test_flat_layout_joins_without_shards(self, flat_root):
        report = analyze_artifacts(flat_root)
        assert report.campaign["source"] == "flat"
        assert len(report.incidents) == 1
        incident = report.incidents[0]
        assert incident.span.get("joined")
        assert incident.span["shard"] is None

    def test_no_wall_clock_leaks_into_the_report(self, engine_root):
        text = analyze_artifacts(engine_root).canonical_json()
        assert "wall_ns" not in text
        assert "wall_s" not in text


class TestByteStability:
    def test_same_input_same_bytes(self, engine_root):
        first = analyze_artifacts(engine_root)
        second = analyze_artifacts(engine_root)
        assert first.canonical_json() == second.canonical_json()
        assert first.digest() == second.digest()

    def test_worker_count_does_not_change_the_digest(
        self, engine_root, engine_root_serial
    ):
        parallel = analyze_artifacts(engine_root)
        serial = analyze_artifacts(engine_root_serial)
        assert parallel.digest() == serial.digest()


class TestDegradedInputs:
    def test_missing_spans_jsonl_degrades(self, engine_root, tmp_path):
        root = _mutable_copy(engine_root, tmp_path, "no-spans")
        (root / "telemetry" / "spans.jsonl").unlink()
        report = analyze_artifacts(root)
        assert "spans.jsonl missing" in report.degradations
        assert len(report.incidents) == 3  # capture plane still drives
        assert not any(i.span.get("joined") for i in report.incidents)

    def test_torn_final_line_degrades_and_keeps_the_rest(
        self, engine_root, tmp_path
    ):
        root = _mutable_copy(engine_root, tmp_path, "torn")
        spans = root / "telemetry" / "spans.jsonl"
        text = spans.read_text()
        spans.write_text(text + '{"span_id": 42, "name": "experi')
        report = analyze_artifacts(root)
        assert any("torn final line" in d for d in report.degradations)
        assert any(i.span.get("joined") for i in report.incidents)

    def test_window_without_span_degrades_not_crashes(
        self, engine_root, tmp_path
    ):
        """Capture windows exist but their experiment spans are gone."""
        root = _mutable_copy(engine_root, tmp_path, "orphan-windows")
        spans = root / "telemetry" / "spans.jsonl"
        kept = [
            line for line in spans.read_text().splitlines()
            if json.loads(line).get("name") != "experiment"
        ]
        spans.write_text("\n".join(kept) + "\n")
        report = analyze_artifacts(root)
        assert any(
            "not found in spans.jsonl" in d for d in report.degradations
        )
        assert len(report.incidents) == 3
        assert all(not i.span.get("joined") for i in report.incidents)
        # The capture evidence still produces a ranked verdict.
        assert all(i.hypotheses for i in report.incidents)

    def test_span_without_capture_experiment_degrades(
        self, engine_root, tmp_path
    ):
        """A telemetry span the capture plane has no record of."""
        root = _mutable_copy(engine_root, tmp_path, "orphan-span")
        spans = root / "telemetry" / "spans.jsonl"
        rows = [json.loads(line) for line in spans.read_text().splitlines()]
        ghost = dict(next(r for r in rows if r.get("name") == "experiment"))
        ghost["span_id"] = 999_983
        ghost["shard"] = 97
        ghost.setdefault("attrs", {})
        ghost["attrs"] = dict(ghost["attrs"], name="ghost-run")
        rows.append(ghost)
        spans.write_text(
            "\n".join(json.dumps(r) for r in rows) + "\n"
        )
        report = analyze_artifacts(root)
        assert any(
            "ghost-run" in d and "no matching capture experiment" in d
            for d in report.degradations
        )

    def test_missing_capture_falls_back_to_the_spec(
        self, engine_root, tmp_path
    ):
        root = _mutable_copy(engine_root, tmp_path, "no-capture")
        (root / "capture" / "capture.rcap").unlink()
        report = analyze_artifacts(root)
        assert "capture.rcap missing" in report.degradations
        assert [i.index for i in report.incidents] == [0, 1, 2]
        assert all(
            any("absent from the capture artifact" in d
                for d in report.degradations)
            for _ in report.incidents
        )
        assert report.counts["windows"] == 0

    def test_degradations_bump_the_insight_counter(
        self, engine_root, tmp_path
    ):
        root = _mutable_copy(engine_root, tmp_path, "counted")
        (root / "telemetry" / "metrics.json").unlink()
        with TelemetrySession() as session:
            report = analyze_artifacts(root)
        assert report.degradations
        assert session.registry.value("insight.degraded") == len(
            report.degradations
        )

    def test_no_counter_without_an_active_session(
        self, engine_root, tmp_path
    ):
        root = _mutable_copy(engine_root, tmp_path, "uncounted")
        (root / "telemetry" / "metrics.json").unlink()
        report = analyze_artifacts(root)  # must simply not raise
        assert report.degradations

    def test_not_a_directory_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_artifacts(tmp_path / "nowhere")

    def test_unparsable_metrics_json_degrades(self, engine_root, tmp_path):
        root = _mutable_copy(engine_root, tmp_path, "bad-metrics")
        (root / "telemetry" / "metrics.json").write_text("{nope")
        report = analyze_artifacts(root)
        assert any(
            "metrics.json unparsable" in d for d in report.degradations
        )
        assert report.campaign["features"] == {}


class TestReportShape:
    def test_counts_block_is_consistent(self, engine_root):
        report = analyze_artifacts(engine_root)
        assert report.counts["incidents"] == len(report.incidents)
        assert report.counts["degradations"] == len(report.degradations)
        assert report.counts["spans"] > 0

    def test_latency_quantile_features_present(self, engine_root):
        report = analyze_artifacts(engine_root)
        features = report.campaign["features"]
        assert set(features) == {
            "latency_p50_ns", "latency_p95_ns", "latency_p99_ns",
        }
        assert features["latency_p50_ns"] <= features["latency_p99_ns"]

    def test_label_override_wins(self, engine_root):
        report = analyze_artifacts(engine_root, label="override")
        assert report.label == "override"

    def test_render_text_names_every_incident(self, engine_root):
        report = analyze_artifacts(engine_root)
        text = report.render_text()
        for incident in report.incidents:
            assert incident.name in text
        assert report.digest() in text
