"""Ranking and blast-radius units: the deterministic verdict core.

Two properties carry the whole ``repro.insight`` contract:

* hypothesis ranking is **lexicographic over evidence tiers** — one
  injection mark beats any flood of CRC verdicts, which beat any flood
  of UDP anomalies, which beat any flood of drop deltas;
* the blast radius over the Figure 10 route graph lists **exactly** the
  host pairs whose conversations cross the instrumented segment in the
  affected direction.
"""

import pytest

from repro.errors import ConfigurationError
from repro.insight.model import Hypothesis, TimelineEntry, canonical_json
from repro.insight.rank import TIER_ORDER, build_hypotheses, scalar_score
from repro.insight.correlate import _blast_radius
from repro.myrinet.mapping import paper_oracle


class TestScalarScore:
    def test_tier_weights_respect_the_order(self):
        """One unit of a higher tier outscores a saturated lower tier."""
        for stronger, weaker in zip(TIER_ORDER, TIER_ORDER[1:]):
            assert scalar_score({stronger: 1}) > scalar_score({weaker: 10**9})

    def test_counts_saturate(self):
        assert scalar_score({"drops": 10**9}) == scalar_score({"drops": 99})

    def test_negative_counts_clamp_to_zero(self):
        assert scalar_score({"crc": -5}) == 0


class TestHypothesisOrdering:
    def test_one_mark_beats_any_number_of_crc_verdicts(self):
        ranked = build_hypotheses({
            "injections": 0,
            "marks_matched": 1,
            "crc_broken_frames": 5000,
        }, fault_label="IDLE->GAP")
        assert ranked[0].cause == "injected-fault:IDLE->GAP"
        assert ranked[1].cause == "link-crc-corruption"

    def test_drop_flood_cannot_beat_one_udp_anomaly(self):
        ranked = build_hypotheses({
            "udp_broken_frames": 1,
            "stage_drops": 10**6,
        })
        assert ranked[0].cause == "udp-payload-corruption"
        assert ranked[1].cause == "congestion-loss"

    def test_quiet_incident_yields_benign_verdict(self):
        ranked = build_hypotheses({})
        assert [h.cause for h in ranked] == ["no-fault-observed"]
        assert ranked[0].score == 0

    def test_injection_without_marks_still_ranks_first(self):
        """Inject events are direct evidence even when no capture window
        located the lane rewrite."""
        ranked = build_hypotheses(
            {"injections": 3, "crc_broken_frames": 2},
            fault_label="GAP->GO",
        )
        assert ranked[0].cause == "injected-fault:GAP->GO"
        assert ranked[0].tier_counts["marks"] == 1

    def test_plan_context_lands_in_the_description(self):
        ranked = build_hypotheses(
            {"marks_matched": 2},
            fault_label="X",
            plan={"kind": "duty_cycle", "direction": "RL"},
        )
        assert "duty_cycle plan" in ranked[0].description
        assert "direction RL" in ranked[0].description

    def test_ties_break_on_cause_string(self):
        a = Hypothesis("b-cause", "", {"crc": 1}, 0)
        b = Hypothesis("a-cause", "", {"crc": 1}, 0)
        ordered = sorted(
            [a, b],
            key=lambda h: (tuple(-c for c in h.sort_key()), h.cause),
        )
        assert [h.cause for h in ordered] == ["a-cause", "b-cause"]


class TestModelPrimitives:
    def test_canonical_json_is_minimal_and_sorted(self):
        text = canonical_json({"b": 1, "a": [1, 2]})
        assert text == '{"a":[1,2],"b":1}'

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_unplaced_timeline_entries_sort_first(self):
        placed = TimelineEntry(time_ps=5, kind="phase", label="settle")
        unplaced = TimelineEntry(time_ps=None, kind="phase", label="late")
        ordered = sorted([placed, unplaced], key=lambda e: e.sort_key())
        assert ordered[0] is unplaced


class TestPaperOracle:
    def test_node_path_runs_through_the_switch(self):
        oracle = paper_oracle()
        path = oracle.node_path("pc", "sparc1")
        assert path[0] == "pc"
        assert path[-1] == "sparc1"
        assert ("sw", "switch") in path

    def test_edge_path_pairs_up_the_node_path(self):
        oracle = paper_oracle()
        edges = oracle.edge_path("pc", "sparc2")
        assert edges[0][0] == "pc"
        assert edges[-1][1] == "sparc2"
        nodes = oracle.node_path("pc", "sparc2")
        assert edges == list(zip(nodes, nodes[1:]))

    def test_pairs_crossing_the_host_to_switch_edge(self):
        oracle = paper_oracle()
        pairs = oracle.pairs_crossing(("pc", ("sw", "switch")))
        assert pairs == [("pc", "sparc1"), ("pc", "sparc2")]

    def test_pairs_crossing_the_switch_to_host_edge(self):
        oracle = paper_oracle()
        pairs = oracle.pairs_crossing((("sw", "switch"), "pc"))
        assert pairs == [("sparc1", "pc"), ("sparc2", "pc")]

    def test_unknown_instrumented_host_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_oracle("mainframe")


class TestBlastRadius:
    def test_r_direction_is_host_to_switch_traffic(self):
        radius = _blast_radius("R", "pc", paper_oracle())
        assert [(p["src"], p["dst"]) for p in radius.pairs] == [
            ("pc", "sparc1"), ("pc", "sparc2"),
        ]
        assert all(p["direction"] == "pc->switch" for p in radius.pairs)

    def test_l_direction_is_switch_to_host_traffic(self):
        radius = _blast_radius("L", "pc", paper_oracle())
        assert [(p["src"], p["dst"]) for p in radius.pairs] == [
            ("sparc1", "pc"), ("sparc2", "pc"),
        ]
        assert all(p["direction"] == "switch->pc" for p in radius.pairs)

    def test_rl_covers_both_directions_sorted(self):
        radius = _blast_radius("RL", "pc", paper_oracle())
        assert [(p["src"], p["dst"]) for p in radius.pairs] == [
            ("pc", "sparc1"), ("pc", "sparc2"),
            ("sparc1", "pc"), ("sparc2", "pc"),
        ]
        assert radius.segment["directions"] == ["L", "R"]

    def test_pairs_carry_source_routes(self):
        radius = _blast_radius("R", "pc", paper_oracle())
        for pair in radius.pairs:
            route = pair["route"]
            assert isinstance(route, list) and route
