"""Differential conformance tests: scalar vs fast pipeline."""
