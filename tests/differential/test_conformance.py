"""Scalar-vs-fast differential conformance (the fastpath contract).

Every scenario in :mod:`repro.fastpath.conformance` runs under both
pipelines; delivered streams, statistics, telemetry (minus the
``fastpath.*`` namespace and wall-clock series) and ``.rcap`` bytes
must be *identical*.  ``REPRO_DIFF_ROUNDS=N`` widens the fuzz sweep
with N extra seeds (CI runs 25; the default keeps local runs quick).
"""

from __future__ import annotations

import os

import pytest

from repro.fastpath.conformance import (
    SCENARIOS,
    compare_runs,
    fuzz_scenario,
    run_scenario,
    verify_scenario,
)

#: Extra fuzz seeds beyond the three registered ones.
EXTRA_ROUNDS = int(os.environ.get("REPRO_DIFF_ROUNDS", "0"))

DEVICE_SCENARIOS = [
    s.name for s in SCENARIOS.values() if s.kind == "device"
]
PAPER_SCENARIOS = [
    s.name for s in SCENARIOS.values() if s.kind == "paper"
]


def _assert_conformant(mismatches) -> None:
    assert not mismatches, "pipelines diverged:\n" + "\n".join(
        f"  {m}" for m in mismatches
    )


@pytest.mark.parametrize("name", DEVICE_SCENARIOS)
def test_device_scenarios_conform(name: str) -> None:
    _assert_conformant(verify_scenario(name))


@pytest.mark.parametrize("name", PAPER_SCENARIOS)
def test_paper_campaigns_conform(name: str) -> None:
    """The §4.3.1–§4.3.4 nftape campaigns, both pipelines, end to end."""
    _assert_conformant(verify_scenario(name))


@pytest.mark.parametrize("seed", [100 + i for i in range(EXTRA_ROUNDS)])
def test_fuzz_rounds_conform(seed: int) -> None:
    """The widened seeded sweep (REPRO_DIFF_ROUNDS, CI runs 25)."""
    scenario = fuzz_scenario(seed)
    scalar = scenario.runner("scalar")
    fast = scenario.runner("fast")
    _assert_conformant(compare_runs(scalar, fast))


def test_fast_pipeline_actually_runs_fast() -> None:
    """Guard against vacuous conformance: the engine must take its bulk
    path (chunks or guard splits), not fall back scalar on every burst."""
    run = run_scenario("fuzz_soup_1", "fast")
    totals = {
        key: sum(stats[key] for stats in run.fastpath.values())
        for key in ("bursts_fast", "guard_splits", "symbols_bulk")
    }
    assert totals["bursts_fast"] + totals["guard_splits"] > 0, run.fastpath
    assert totals["symbols_bulk"] > 0, run.fastpath


def test_back_to_back_forces_fallbacks() -> None:
    """The pathological scenario must actually hit the guard fallback
    (otherwise it is not testing the scalar re-entry seam)."""
    run = run_scenario("back_to_back", "fast")
    reasons: dict = {}
    for stats in run.fastpath.values():
        for reason, count in stats["fallback_reasons"].items():
            reasons[reason] = reasons.get(reason, 0) + count
    assert reasons.get("match", 0) > 0, run.fastpath
    splits = sum(s["guard_splits"] for s in run.fastpath.values())
    assert splits > 0, run.fastpath


def test_mid_reconfig_exercises_both_pipelines() -> None:
    """The PL-switch scenario must spend bursts in both implementations."""
    run = run_scenario("mid_burst_reconfig", "fast")
    engine_bursts = sum(
        s["bursts_fast"] + s["bursts_scalar"] + s["guard_splits"]
        for s in run.fastpath.values()
    )
    device_bursts = run.stats["bursts_forwarded"]
    assert engine_bursts > 0, run.fastpath
    # Some bursts bypassed the engine entirely (scalar epochs): the PL
    # switch really moved the device between implementations.
    assert engine_bursts < device_bursts, (engine_bursts, device_bursts)
