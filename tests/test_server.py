"""The monitoring-as-a-service HTTP server, end to end over sockets.

Every test drives a real :class:`MonitorServer` bound to an ephemeral
localhost port through stdlib ``http.client`` — no mocked transport.
Covered contracts:

* submit -> 202 -> live NDJSON/SSE stream -> completed status with the
  auto-run insight verdict;
* bounded back-pressure: a paused runner plus a full queue answers
  ``429`` (with ``Retry-After``) and recovers on resume;
* tenant isolation: listings are per-tenant, cross-tenant ids 404, and
  artifact trees never share a directory;
* ``/metrics`` speaks the Prometheus text exposition content type and
  carries the ``server.*`` / ``process.*`` self-metrics;
* **offline equivalence** — a spec submitted over HTTP produces the
  byte-identical merged table and insight digest of the same spec run
  offline through :mod:`repro.api`.
"""

import http.client
import json
import time

import pytest

from repro.nftape.campaign import Campaign
from repro.runtime.events import EVENTS
from repro.runtime.executors import SerialExecutor
from repro.runtime.spec_codec import spec_to_json
from repro.server import MonitorServer
from repro.telemetry.exporters import PROMETHEUS_CONTENT_TYPE

from tests.test_runtime import tiny_spec

#: Wall-clock ceiling for one tiny campaign to finish on a loaded CI box.
DEADLINE_S = 60.0


@pytest.fixture(autouse=True)
def _clean_events_state():
    EVENTS.deactivate()
    yield
    EVENTS.deactivate()


@pytest.fixture()
def server(tmp_path):
    instance = MonitorServer(root=str(tmp_path / "srv"), queue_limit=3)
    instance.start()
    yield instance
    instance.stop()


class Client:
    """A minimal per-request HTTP client against the test server."""

    def __init__(self, server, tenant="default"):
        self.host, self.port = server.address
        self.tenant = tenant

    def request(self, method, path, body=None, headers=None, timeout=30):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout)
        merged = {"X-Tenant": self.tenant}
        merged.update(headers or {})
        connection.request(method, path, body=body, headers=merged)
        response = connection.getresponse()
        payload = response.read()
        connection.close()
        return response, payload

    def get_json(self, path, expect=200):
        response, payload = self.request("GET", path)
        assert response.status == expect, payload
        return json.loads(payload)

    def submit(self, spec, expect=202, **extra):
        document = {"spec": spec_to_json(spec), **extra}
        response, payload = self.request(
            "POST", "/campaigns", body=json.dumps(document))
        assert response.status == expect, payload
        return response, json.loads(payload)

    def wait_done(self, campaign_id):
        deadline = time.monotonic() + DEADLINE_S
        while time.monotonic() < deadline:
            status = self.get_json(f"/campaigns/{campaign_id}")
            if status["state"] in ("completed", "failed"):
                return status
            time.sleep(0.02)
        raise AssertionError(f"campaign {campaign_id} never finished")

    def stream_lines(self, campaign_id, headers=None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=DEADLINE_S)
        merged = {"X-Tenant": self.tenant}
        merged.update(headers or {})
        connection.request(
            "GET", f"/campaigns/{campaign_id}/events", headers=merged)
        response = connection.getresponse()
        assert response.status == 200
        content_type = response.getheader("Content-Type")
        lines = [line.decode("utf-8").rstrip("\n")
                 for line in response.fp if line.strip()]
        connection.close()
        return content_type, lines


# ----------------------------------------------------------------------
# submit / status / stream / report
# ----------------------------------------------------------------------

class TestLifecycle:
    def test_scenario_document_compiled_server_side(self, server):
        """``POST /campaigns`` with ``{"scenario": ...}`` compiles and
        runs the document exactly as the offline compiler would."""
        from repro.scenario import (
            compile_scenario, load_scenario, scenario_to_json,
        )

        doc = load_scenario("paper-sec35")
        client = Client(server)
        response, submitted = client.request(
            "POST", "/campaigns",
            body=json.dumps({"scenario": scenario_to_json(doc)}))
        assert response.status == 202
        submitted = json.loads(submitted)
        assert submitted["name"] == "paper-sec35"
        assert submitted["experiments"] == len(
            compile_scenario(doc).experiments)
        status = client.wait_done(submitted["id"])
        assert status["state"] == "completed"

    def test_submit_stream_and_report(self, server):
        client = Client(server)
        _, submitted = client.submit(tiny_spec(n=2, name="svc campaign"))
        campaign_id = submitted["id"]
        assert submitted["state"] == "queued"
        assert submitted["links"]["events"] \
            == f"/campaigns/{campaign_id}/events"

        content_type, lines = client.stream_lines(campaign_id)
        assert content_type == "application/x-ndjson"
        events = [json.loads(line) for line in lines]
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "campaign_queued"
        assert "campaign_started" in kinds
        assert kinds.count("experiment_finished") == 2
        assert "campaign_finished" in kinds
        assert kinds[-1] == "insight_ready"
        # Replayed from seq 0, gapless, all keyed by the server id.
        assert [event["seq"] for event in events] \
            == list(range(len(events)))
        assert {event["campaign"] for event in events} == {campaign_id}

        status = client.wait_done(campaign_id)
        assert status["state"] == "completed"
        assert status["report_digest"]

        report = client.get_json(f"/campaigns/{campaign_id}/report")
        assert report["digest"] == status["report_digest"]
        assert report["report"]["campaign"]["name"] == "svc campaign"
        assert len(report["report"]["incidents"]) == 2

    def test_sse_stream_when_accept_asks_for_it(self, server):
        client = Client(server)
        _, submitted = client.submit(tiny_spec(n=1, name="sse campaign"))
        content_type, lines = client.stream_lines(
            submitted["id"], headers={"Accept": "text/event-stream"})
        assert content_type == "text/event-stream"
        assert any(line == "event: campaign_finished" for line in lines)
        data_lines = [line for line in lines if line.startswith("data: ")]
        first = json.loads(data_lines[0][len("data: "):])
        assert first["kind"] == "campaign_queued"

    def test_stream_of_finished_campaign_replays_and_closes(self, server):
        client = Client(server)
        _, submitted = client.submit(tiny_spec(n=1, name="late follower"))
        client.wait_done(submitted["id"])
        _, lines = client.stream_lines(submitted["id"])
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds[0] == "campaign_queued"
        assert kinds[-1] == "insight_ready"

    def test_artifacts_served(self, server):
        client = Client(server)
        _, submitted = client.submit(tiny_spec(n=1, name="artifact run"))
        client.wait_done(submitted["id"])
        response, payload = client.request(
            "GET", f"/campaigns/{submitted['id']}/artifacts/table")
        assert response.status == 200
        assert "artifact run" in payload.decode("utf-8")
        response, payload = client.request(
            "GET", f"/campaigns/{submitted['id']}/artifacts/capture")
        assert response.status == 200
        assert response.getheader("Content-Type") \
            == "application/octet-stream"
        response, _ = client.request(
            "GET", f"/campaigns/{submitted['id']}/artifacts/insight")
        assert response.status == 200

    def test_listing_and_healthz(self, server):
        client = Client(server)
        _, submitted = client.submit(tiny_spec(n=1, name="listed"))
        listing = client.get_json("/campaigns")
        assert [c["id"] for c in listing["campaigns"]] == [submitted["id"]]
        health = client.get_json("/healthz")
        assert health["status"] == "ok"
        assert health["queue_limit"] == 3


# ----------------------------------------------------------------------
# error paths: 400 / 404 / 405 / 429
# ----------------------------------------------------------------------

class TestErrors:
    def test_malformed_json_is_400(self, server):
        response, payload = Client(server).request(
            "POST", "/campaigns", body="{nope")
        assert response.status == 400
        assert "JSON" in json.loads(payload)["error"]

    def test_bad_spec_is_400_with_path(self, server):
        document = spec_to_json(tiny_spec(n=1))
        document["experiments"][0]["duration_ps"] = "fast"
        response, payload = Client(server).request(
            "POST", "/campaigns",
            body=json.dumps({"spec": document}))
        assert response.status == 400
        assert "duration_ps" in json.loads(payload)["error"]

    def test_bad_scenario_is_400_with_pointer(self, server):
        document = {"scenario": {
            "scenario": 1, "name": "x",
            "topology": {"kind": "torus"},
            "experiments": [{"name": "e"}],
        }}
        response, payload = Client(server).request(
            "POST", "/campaigns", body=json.dumps(document))
        assert response.status == 400
        assert "/topology/kind" in json.loads(payload)["error"]

    def test_spec_and_scenario_together_is_400(self, server):
        document = {"spec": spec_to_json(tiny_spec(n=1)), "scenario": {}}
        response, payload = Client(server).request(
            "POST", "/campaigns", body=json.dumps(document))
        assert response.status == 400
        assert "exactly one" in json.loads(payload)["error"]

    def test_unknown_routes_and_methods(self, server):
        client = Client(server)
        response, _ = client.request("GET", "/nope")
        assert response.status == 404
        response, _ = client.request("DELETE", "/campaigns")
        assert response.status == 405
        response, _ = client.request("GET", "/campaigns/c9999")
        assert response.status == 404

    def test_back_pressure_answers_429_until_resumed(self, server):
        client = Client(server)
        server.pause()
        accepted = []
        for index in range(server.queue_limit):
            _, doc = client.submit(tiny_spec(n=1, name=f"queued-{index}"))
            accepted.append(doc["id"])

        response, payload = client.request(
            "POST", "/campaigns",
            body=json.dumps({"spec": spec_to_json(tiny_spec(n=1))}))
        assert response.status == 429
        assert response.getheader("Retry-After") == "1"
        assert "queue full" in json.loads(payload)["error"]

        server.resume()
        for campaign_id in accepted:
            assert client.wait_done(campaign_id)["state"] == "completed"
        # Capacity is back: the next submission is accepted.
        client.submit(tiny_spec(n=1, name="after resume"))


# ----------------------------------------------------------------------
# tenancy
# ----------------------------------------------------------------------

class TestTenancy:
    def test_two_tenants_are_isolated(self, server, tmp_path):
        alice = Client(server, tenant="alice")
        bob = Client(server, tenant="bob")
        _, doc_a = alice.submit(tiny_spec(n=1, name="shared name"))
        _, doc_b = bob.submit(tiny_spec(n=1, name="shared name"))
        alice.wait_done(doc_a["id"])
        bob.wait_done(doc_b["id"])

        # Listings are per-tenant.
        assert [c["id"] for c in alice.get_json("/campaigns")["campaigns"]] \
            == [doc_a["id"]]
        assert [c["id"] for c in bob.get_json("/campaigns")["campaigns"]] \
            == [doc_b["id"]]

        # Cross-tenant access is indistinguishable from absence.
        response, _ = alice.request("GET", f"/campaigns/{doc_b['id']}")
        assert response.status == 404
        response, _ = bob.request(
            "GET", f"/campaigns/{doc_a['id']}/events")
        assert response.status == 404

        # Artifact namespaces never overlap on disk.
        root = tmp_path / "srv"
        assert (root / "alice" / doc_a["id"] / "table.txt").exists()
        assert (root / "bob" / doc_b["id"] / "table.txt").exists()
        assert not (root / "alice" / doc_b["id"]).exists()

    def test_invalid_tenant_name_is_400(self, server):
        client = Client(server, tenant="../escape")
        response, payload = client.request(
            "POST", "/campaigns",
            body=json.dumps({"spec": spec_to_json(tiny_spec(n=1))}))
        assert response.status == 400
        assert "tenant" in json.loads(payload)["error"]


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------

class TestMetrics:
    def test_prometheus_content_type_and_self_metrics(self, server):
        client = Client(server)
        _, submitted = client.submit(tiny_spec(n=1, name="metered"))
        client.wait_done(submitted["id"])
        response, payload = client.request("GET", "/metrics")
        assert response.status == 200
        assert response.getheader("Content-Type") == PROMETHEUS_CONTENT_TYPE
        text = payload.decode("utf-8")
        for series in (
            "repro_server_campaigns_submitted_total 1",
            "repro_server_campaigns_completed_total 1",
            "repro_server_queue_depth 0",
            "repro_events_dropped_total",
            "repro_process_uptime_s",
            "repro_process_rss_bytes",
        ):
            assert any(line.startswith(series)
                       for line in text.splitlines()), series
        # rss is a real, positive reading.
        rss = next(line for line in text.splitlines()
                   if line.startswith("repro_process_rss_bytes"))
        assert int(float(rss.split()[-1])) > 0


# ----------------------------------------------------------------------
# offline equivalence — the service only observes
# ----------------------------------------------------------------------

class TestOfflineEquivalence:
    def test_http_run_matches_offline_api_run(self, server, tmp_path):
        from repro.insight import analyze_artifacts

        spec = tiny_spec(n=2, name="equivalence campaign")

        client = Client(server)
        _, submitted = client.submit(spec)
        status = client.wait_done(submitted["id"])
        assert status["state"] == "completed"
        _, served_table = client.request(
            "GET", f"/campaigns/{submitted['id']}/artifacts/table")

        offline_root = tmp_path / "offline"
        offline_table = Campaign.from_spec(spec).run(
            executor=SerialExecutor(
                journal_path=offline_root / "journal.jsonl",
                artifacts_dir=offline_root,
            ))
        assert served_table.decode("utf-8") \
            == offline_table.render() + "\n"

        offline_digest = analyze_artifacts(offline_root).digest()
        assert status["report_digest"] == offline_digest

        # And the merged capture artifact is byte-identical too.
        _, served_capture = client.request(
            "GET", f"/campaigns/{submitted['id']}/artifacts/capture")
        offline_capture = (
            offline_root / "capture" / "capture.rcap").read_bytes()
        assert served_capture == offline_capture
