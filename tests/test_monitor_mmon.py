"""Tests for the mmon view and the known-good-state predicate."""

from repro.core import FaultInjectorDevice
from repro.core.faults import control_symbol_swap
from repro.hw.registers import MatchMode
from repro.myrinet.monitor import Mmon
from repro.myrinet.network import build_paper_testbed
from repro.myrinet.symbols import GAP, GO
from repro.sim.timebase import MS


def test_snapshot_structure(sim):
    network = build_paper_testbed(sim)
    network.settle()
    mmon = Mmon(network)
    snap = mmon.snapshot()
    assert set(snap.host_stats) == {"pc", "sparc1", "sparc2"}
    assert "switch" in snap.switch_stats
    assert snap.network_map is not None
    # Every host holds routes to both peers in the good state.
    for name, table in snap.routing_tables.items():
        assert len(table) == 2


def test_snapshot_does_not_alias_live_state(sim):
    """A snapshot is frozen: advancing the network or mutating the
    snapshot must not make the two views bleed into each other."""
    network = build_paper_testbed(sim, map_interval_ps=20 * MS)
    network.settle()
    mmon = Mmon(network)
    snap = mmon.snapshot()
    mapper = network.mapper()

    # The snapshot owns fresh objects, not the mapper's live map.
    assert snap.network_map is not None
    assert snap.network_map is not mapper.mcp.current_map
    frozen_round = snap.network_map.round_index
    frozen_stats = {name: dict(stats)
                    for name, stats in snap.host_stats.items()}

    # Advance the network past further traffic and mapping rounds.
    pc = network.host("pc").interface
    sparc1 = network.host("sparc1").interface
    for _index in range(4):
        pc.send_to(sparc1.mac, b"later traffic")
    sim.run_for(45 * MS)

    assert mapper.mcp.current_map.round_index > frozen_round
    assert snap.network_map.round_index == frozen_round
    assert snap.host_stats == frozen_stats

    # Mutating the snapshot must not corrupt the live mapper state.
    snap.network_map.entries.clear()
    snap.host_stats["pc"]["packets_sent"] = 10**9
    assert mapper.mcp.current_map.entries
    assert mmon.all_nodes_in_network()
    assert mmon.snapshot().host_stats["pc"]["packets_sent"] < 10**9


def test_total_helper(sim):
    network = build_paper_testbed(sim)
    network.settle()
    pc = network.host("pc").interface
    sparc1 = network.host("sparc1").interface
    received = []
    sparc1.set_data_handler(lambda s, p: received.append(p))
    pc.send_to(sparc1.mac, b"one")
    sim.run_for(2 * MS)
    snap = Mmon(network).snapshot()
    assert snap.total("packets_received") >= 1


def test_known_good_state_predicate(sim):
    network = build_paper_testbed(sim)
    mmon = Mmon(network)
    assert not mmon.all_nodes_in_network()  # before any mapping round
    network.settle()
    assert mmon.all_nodes_in_network()


def test_known_good_state_fails_when_node_missing(sim):
    network = build_paper_testbed(sim, map_interval_ps=20 * MS)
    network.settle()
    mmon = Mmon(network)
    pc = network.host("pc")
    pc.interface.set_mapping_handler(lambda payload: None)  # pc goes deaf
    sim.run_for(40 * MS)
    assert not mmon.all_nodes_in_network()


def test_render_is_informative(sim):
    network = build_paper_testbed(sim)
    network.settle()
    text = Mmon(network).render()
    for needle in ("mmon @", "host pc", "host sparc1", "switch switch",
                   "route", "map round"):
        assert needle in text


def test_render_reflects_fault_damage(sim):
    device = FaultInjectorDevice(sim)
    network = build_paper_testbed(sim, device=device)
    network.settle()
    device.configure("RL"[0], control_symbol_swap(GAP, GO, MatchMode.ON))
    pc = network.host("pc").interface
    sparc1 = network.host("sparc1").interface
    for _index in range(5):
        pc.send_to(sparc1.mac, b"doomed")
    sim.run_for(3 * MS)
    snap = Mmon(network).snapshot()
    # GAP corruption merged the frames: at most one arrived as data.
    assert snap.host_stats["sparc1"]["packets_received"] <= 1
