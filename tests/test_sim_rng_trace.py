"""Unit tests for the deterministic RNG and the trace recorder."""

from repro.sim import DeterministicRng, TraceRecorder
from repro.sim.timebase import (
    MS,
    NS,
    US,
    SECOND,
    format_time,
    from_ms,
    from_ns,
    from_s,
    from_us,
    to_ms,
    to_ns,
    to_s,
    to_us,
)


class TestDeterministicRng:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(5)
        b = DeterministicRng(5)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(5)
        b = DeterministicRng(6)
        assert [a.randint(0, 1_000_000) for _ in range(8)] != [
            b.randint(0, 1_000_000) for _ in range(8)
        ]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(5).fork("child")
        b = DeterministicRng(5).fork("child")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_fork_streams_are_independent(self):
        parent = DeterministicRng(5)
        child = parent.fork("child")
        before = child.randint(0, 10**9)
        # Drawing from the parent must not disturb the child stream.
        parent2 = DeterministicRng(5)
        for _ in range(100):
            parent2.randint(0, 10)
        child2 = parent2.fork("child")
        assert child2.randint(0, 10**9) == before

    def test_bytes_and_byte(self):
        r = DeterministicRng(9)
        data = r.bytes(64)
        assert len(data) == 64
        assert all(0 <= r.byte() <= 255 for _ in range(64))

    def test_choice_and_shuffle(self):
        r = DeterministicRng(3)
        items = list(range(10))
        assert r.choice(items) in items
        shuffled = list(items)
        r.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_bit_index_in_range(self):
        r = DeterministicRng(4)
        assert all(0 <= r.bit_index(32) < 32 for _ in range(100))

    def test_fork_is_stable_across_processes(self):
        """fork() must not depend on Python's salted hash(): the same
        (seed, name) yields the same substream in every invocation."""
        import subprocess
        import sys

        script = (
            "from repro.sim import DeterministicRng;"
            "print(DeterministicRng(42).fork('child').randint(0, 10**9))"
        )
        runs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(runs) == 1
        local = str(DeterministicRng(42).fork("child").randint(0, 10**9))
        assert runs == {local}


class TestTraceRecorder:
    def test_records_and_filters_by_category(self):
        recorder = TraceRecorder(categories=["inject"])
        recorder.record(10, "inject", "dev", "fired", lane=2)
        recorder.record(20, "noise", "dev", "ignored")
        assert len(recorder) == 1
        event = recorder.events()[0]
        assert event.category == "inject"
        assert event.data["lane"] == 2
        assert "inject/dev" in str(event)

    def test_unfiltered_records_everything(self):
        recorder = TraceRecorder()
        recorder.record(1, "a", "s", "x")
        recorder.record(2, "b", "s", "y")
        assert len(recorder.events()) == 2
        assert len(recorder.events("a")) == 1

    def test_max_events_drops_oldest(self):
        recorder = TraceRecorder(max_events=3)
        for index in range(5):
            recorder.record(index, "c", "s", f"m{index}")
        assert len(recorder) == 3
        assert recorder.dropped == 2
        assert recorder.events()[0].message == "m2"

    def test_clear(self):
        recorder = TraceRecorder()
        recorder.record(1, "a", "s", "x")
        recorder.clear()
        assert len(recorder) == 0

    def test_deque_eviction_counts_drops_and_keeps_semantics(self):
        """Regression: the O(1) deque window must still count drops.

        The bounded buffer moved from list.pop(0) (O(n) per eviction) to
        a maxlen deque; eviction of old events must keep incrementing
        ``dropped``, keep only the newest window, and keep folding every
        event (including dropped ones) into the digest.
        """
        recorder = TraceRecorder(max_events=4)
        for index in range(10):
            recorder.record(index, "c", "s", f"m{index}")
        assert len(recorder) == 4
        assert recorder.dropped == 6
        assert [e.message for e in recorder.events()] == [
            "m6", "m7", "m8", "m9",
        ]
        # __iter__ still walks oldest -> newest.
        assert [e.time for e in recorder] == [6, 7, 8, 9]
        # The digest covers all 10 records, drops included.
        assert recorder.digested == 10
        reference = TraceRecorder(max_events=1_000)
        for index in range(10):
            reference.record(index, "c", "s", f"m{index}")
        assert recorder.digest() == reference.digest()
        # clear() resets the window and the drop counter.
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0
        recorder.record(99, "c", "s", "fresh")
        assert recorder.dropped == 0
        assert len(recorder) == 1


class TestTimebase:
    def test_round_trips(self):
        assert from_ns(12.5) == 12_500
        assert to_ns(12_500) == 12.5
        assert from_us(1) == 1_000_000
        assert to_us(from_us(7)) == 7
        assert from_ms(50) == 50 * MS
        assert to_ms(from_ms(2.5)) == 2.5
        assert from_s(1) == SECOND
        assert to_s(SECOND) == 1.0

    def test_format_time_scales(self):
        assert format_time(500) == "500ps"
        assert format_time(12_500) == "12.500ns"
        assert format_time(3 * US) == "3.000us"
        assert format_time(3 * MS) == "3.000ms"
        assert format_time(2 * SECOND) == "2.000s"
