"""Tests for the scenario DSL: model, codec, yamlish, compiler, library.

Covers the contracts the PR pins: every compiler diagnostic is a typed
:class:`ScenarioError` with a JSON-pointer location, compilation is a
pure deterministic function, the library corpus matches its committed
golden digests, and a compiled scenario runs byte-identically at any
worker count (the engine's core guarantee, extended to the new front
door).
"""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError, ScenarioError
from repro.scenario import (
    compile_scenario,
    list_scenarios,
    load_scenario,
    scenario_from_json,
    scenario_to_json,
)
from repro.scenario.yamlish import YamlishError, loads as yamlish_loads

LIBRARY = [
    "alert-storm", "dual-injector", "fabric-congestion",
    "paper-sec35", "paper-table4", "seu-sweep",
]


def minimal_doc(**overrides):
    doc = {
        "scenario": 1,
        "name": "t",
        "experiments": [{"name": "e"}],
    }
    doc.update(overrides)
    return doc


# ----------------------------------------------------------------------
# yamlish — the stdlib YAML-subset loader
# ----------------------------------------------------------------------

class TestYamlish:
    def test_scalars_and_nesting(self):
        doc = yamlish_loads(
            "# header comment\n"
            "---\n"
            "name: fabric\n"
            "seed: 0x10\n"
            "rate: 2.5\n"
            "live: true\n"
            "gone: null\n"
            "note: 'quoted: text'\n"
            "topology:\n"
            "  kind: line\n"
            "  switches: 3\n"
        )
        assert doc["name"] == "fabric"
        assert doc["seed"] == 16
        assert doc["rate"] == 2.5
        assert doc["live"] is True
        assert doc["gone"] is None
        assert doc["note"] == "quoted: text"
        assert doc["topology"] == {"kind": "line", "switches": 3}

    def test_sequences_block_and_flow(self):
        doc = yamlish_loads(
            "values: [250, 500, 1000]\n"
            "experiments:\n"
            "  - name: a\n"
            "    faults:\n"
            "      - id: f\n"
            "        swap: [STOP, GO]\n"
            "  - name: b\n"
        )
        assert doc["values"] == [250, 500, 1000]
        assert [e["name"] for e in doc["experiments"]] == ["a", "b"]
        assert doc["experiments"][0]["faults"][0]["swap"] == ["STOP", "GO"]

    def test_tabs_rejected_with_line_number(self):
        with pytest.raises(YamlishError) as err:
            yamlish_loads("a: 1\n\tb: 2\n")
        assert err.value.line_no == 2

    def test_duplicate_keys_rejected(self):
        with pytest.raises(YamlishError, match="duplicate key"):
            yamlish_loads("a: 1\na: 2\n")

    def test_library_files_are_valid_yamlish(self):
        from repro.scenario.library import scenario_path
        for name in list_scenarios():
            text = scenario_path(name).read_text(encoding="utf-8")
            doc = yamlish_loads(text)
            assert doc["name"] == name


# ----------------------------------------------------------------------
# codec — strict JSON with pointer locations
# ----------------------------------------------------------------------

class TestScenarioCodec:
    def test_round_trips_every_library_document(self):
        for name in LIBRARY:
            doc = load_scenario(name)
            clone = scenario_from_json(
                json.loads(json.dumps(scenario_to_json(doc)))
            )
            assert clone == doc, name

    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="unknown field"):
            scenario_from_json(minimal_doc(flavor="spicy"))

    def test_version_mismatch_located_at_scenario(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_json(minimal_doc(scenario=99))
        assert err.value.location == "/scenario"

    def test_swap_must_be_a_symbol_pair(self):
        doc = minimal_doc()
        doc["experiments"][0]["faults"] = [{"id": "f", "swap": ["STOP"]}]
        with pytest.raises(ScenarioError) as err:
            scenario_from_json(doc)
        assert err.value.location == "/experiments/0/faults/0/swap"

    def test_sweep_field_must_be_known(self):
        doc = minimal_doc()
        doc["experiments"][0]["sweep"] = {
            "field": "warp_factor", "values": [1],
        }
        with pytest.raises(ScenarioError) as err:
            scenario_from_json(doc)
        assert err.value.location == "/experiments/0/sweep/field"


# ----------------------------------------------------------------------
# compiler error paths — each a ScenarioError with a pointer
# ----------------------------------------------------------------------

class TestCompileErrors:
    def test_unknown_topology_kind(self):
        with pytest.raises(ScenarioError) as err:
            compile_scenario(minimal_doc(topology={"kind": "torus"}))
        assert err.value.location == "/topology/kind"

    def test_unknown_traffic_kind(self):
        with pytest.raises(ScenarioError) as err:
            compile_scenario(minimal_doc(traffic={"kind": "carrier"}))
        assert err.value.location == "/traffic/kind"

    def test_unknown_fault_kind(self):
        doc = minimal_doc()
        doc["experiments"][0]["faults"] = [{"id": "f", "kind": "gamma"}]
        with pytest.raises(ScenarioError) as err:
            compile_scenario(doc)
        assert err.value.location == "/experiments/0/faults/0/kind"

    def test_cyclic_custom_fabric(self):
        fabric = {
            "hosts": ["h0", "h1"],
            "switches": [["s0", 8], ["s1", 8], ["s2", 8]],
            "host_links": [["h0", "s0", 0], ["h1", "s1", 0]],
            "trunks": [
                ["s0", 7, "s1", 7], ["s1", 6, "s2", 7], ["s2", 6, "s0", 6],
            ],
        }
        with pytest.raises(ScenarioError, match="cycle"):
            compile_scenario(minimal_doc(
                topology={"kind": "custom", "custom": fabric}
            ))

    def test_over_budget_hosts(self):
        with pytest.raises(ScenarioError) as err:
            compile_scenario(minimal_doc(
                topology={"kind": "star", "hosts": 64}
            ))
        assert err.value.location == "/topology"
        assert "12" in str(err.value)

    def test_over_budget_switches(self):
        with pytest.raises(ScenarioError) as err:
            compile_scenario(minimal_doc(
                topology={"kind": "line", "switches": 7}
            ))
        assert err.value.location == "/topology"

    def test_duplicate_fault_ids(self):
        doc = minimal_doc()
        doc["experiments"][0]["faults"] = [
            {"id": "f", "swap": ["STOP", "GO"], "direction": "R"},
            {"id": "f", "swap": ["GAP", "IDLE"], "direction": "L"},
        ]
        with pytest.raises(ScenarioError) as err:
            compile_scenario(doc)
        assert err.value.location == "/experiments/0/faults/1/id"

    def test_duplicate_injector_direction(self):
        doc = minimal_doc()
        doc["experiments"][0]["faults"] = [
            {"id": "a", "swap": ["STOP", "GO"], "direction": "R"},
            {"id": "b", "swap": ["GAP", "IDLE"], "direction": "R"},
        ]
        with pytest.raises(ScenarioError) as err:
            compile_scenario(doc)
        assert err.value.location == "/experiments/0/faults/1/direction"

    def test_scenario_error_is_a_configuration_error(self):
        assert issubclass(ScenarioError, ConfigurationError)


# ----------------------------------------------------------------------
# compilation — pure, deterministic, golden-pinned
# ----------------------------------------------------------------------

class TestCompileDeterminism:
    def test_compile_twice_is_equal(self):
        for name in LIBRARY:
            doc = load_scenario(name)
            assert compile_scenario(doc) == compile_scenario(doc), name

    def test_compiled_specs_survive_the_campaign_codec(self):
        from repro.runtime.spec_codec import spec_from_json, spec_to_json
        for name in LIBRARY:
            spec = compile_scenario(load_scenario(name))
            wire = json.loads(json.dumps(spec_to_json(spec)))
            assert spec_from_json(wire) == spec, name

    def test_library_matches_the_golden_corpus(self, golden_dir):
        from repro.scenario.golden import check_scenario_corpus
        ok, messages = check_scenario_corpus(golden_dir)
        assert ok, "\n".join(messages)

    def test_sweep_expands_with_derived_seeds(self):
        spec = compile_scenario(load_scenario("seu-sweep"))
        names = [e.name for e in spec.experiments]
        assert names == [
            "seu@mean_interval_us=250", "seu@mean_interval_us=500",
            "seu@mean_interval_us=1000", "seu@mean_interval_us=2000",
        ]
        seeds = {e.plan.seed for e in spec.experiments}
        assert len(seeds) == len(spec.experiments)  # each point distinct


@pytest.fixture(scope="module")
def golden_dir():
    import pathlib
    return pathlib.Path(__file__).parent / "golden"


# ----------------------------------------------------------------------
# the library — six named scenarios, all runnable
# ----------------------------------------------------------------------

class TestLibrary:
    def test_catalog(self):
        assert list_scenarios() == LIBRARY

    def test_unknown_name_lists_the_catalog(self):
        with pytest.raises(ScenarioError, match="alert-storm"):
            load_scenario("does-not-exist")

    def test_dual_injector_compiles_a_composite_plan(self):
        spec = compile_scenario(load_scenario("dual-injector"))
        compound = spec.experiments[0]
        assert compound.name == "compound"
        assert compound.plan is not None
        assert len(compound.extra_plans) == 1
        directions = {compound.plan.direction} | {
            p.direction for p in compound.extra_plans
        }
        assert directions == {"R", "L"}

    def test_fabric_scenario_carries_a_topology(self):
        spec = compile_scenario(load_scenario("fabric-congestion"))
        topology = spec.experiments[0].testbed.topology
        assert topology is not None
        assert len(topology.switches) == 3
        assert len(topology.hosts) == 6


# ----------------------------------------------------------------------
# run determinism — a compiled scenario at 1 vs 2 workers
# ----------------------------------------------------------------------

class TestScenarioRunDeterminism:
    def test_workers_1_vs_2_byte_identical(self, tmp_path):
        from repro.nftape.campaign import Campaign
        from repro.runtime.executors import PooledExecutor, SerialExecutor

        spec = compile_scenario(load_scenario("dual-injector"))

        serial = Campaign.from_spec(spec).run(
            executor=SerialExecutor(artifacts_dir=tmp_path / "serial")
        )
        pooled = Campaign.from_spec(spec).run(
            executor=PooledExecutor(
                workers=2, artifacts_dir=tmp_path / "pooled"
            )
        )
        assert serial.render() == pooled.render()
        assert serial.rows == pooled.rows
        assert (tmp_path / "serial" / "spec.json").read_text() == \
            (tmp_path / "pooled" / "spec.json").read_text()


# ----------------------------------------------------------------------
# CLI — scenario list|compile|run and the two-corpus golden gate
# ----------------------------------------------------------------------

class TestScenarioCli:
    def test_list_names_every_library_scenario(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in LIBRARY:
            assert name in out

    def test_compile_prints_digest_and_plan_counts(self, capsys):
        assert main(["scenario", "compile", "dual-injector"]) == 0
        out = capsys.readouterr().out
        assert "compile digest" in out
        assert "2 fault plan(s)" in out

    def test_compile_json_is_the_campaign_codec_document(self, capsys):
        from repro.runtime.spec_codec import spec_from_json
        assert main(["scenario", "compile", "paper-sec35", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        spec = spec_from_json(document)
        assert spec == compile_scenario(load_scenario("paper-sec35"))

    def test_compile_from_file_path(self, tmp_path, capsys):
        target = tmp_path / "mine.yaml"
        target.write_text(
            "scenario: 1\n"
            "name: mine\n"
            "duration_ms: 1\n"
            "experiments:\n"
            "  - name: only\n",
            encoding="utf-8",
        )
        assert main(["scenario", "compile", str(target)]) == 0
        assert "scenario mine: 1 experiment(s)" in capsys.readouterr().out

    def test_compile_unknown_name_fails_with_catalog(self, capsys):
        assert main(["scenario", "compile", "nope"]) == 2
        err = capsys.readouterr().err
        assert "scenario error" in err
        assert "alert-storm" in err

    def test_run_drops_engine_artifacts(self, tmp_path, capsys):
        root = tmp_path / "art"
        assert main([
            "scenario", "run", "paper-sec35",
            "--artifacts-dir", str(root), "--no-progress",
        ]) == 0
        out = capsys.readouterr().out
        assert "passthrough" in out
        assert (root / "journal.jsonl").exists()
        assert (root / "spec.json").exists()
        spec_doc = json.loads((root / "spec.json").read_text())
        assert spec_doc["name"] == "paper-sec35"

    def test_campaign_scenario_sugar(self, tmp_path, capsys):
        root = tmp_path / "art"
        assert main([
            "campaign", "--scenario", "paper-sec35",
            "--artifacts-dir", str(root), "--no-progress",
        ]) == 0
        assert (root / "journal.jsonl").exists()

    def test_golden_only_scenario_checks_just_that_digest(self, capsys):
        assert main([
            "golden", "--check", "--only", "dual-injector",
        ]) == 0
        out = capsys.readouterr().out
        assert "ok scenario dual-injector" in out
        assert "sec431" not in out  # fastpath corpus skipped

    def test_golden_unknown_name_lists_both_corpora(self, capsys):
        assert main(["golden", "--check", "--only", "warp"]) == 2
        err = capsys.readouterr().err
        assert "sec431" in err and "dual-injector" in err
