"""Incident-store tests: persistence, similarity, determinism.

The store's promise is that ``insight similar`` is a *deterministic*
nearest-neighbour query: cosine distance over the fixed
:data:`repro.insight.model.FEATURES` axes, ties broken on
``(rounded distance, label)``, and no wall-clock state anywhere — so a
campaign that injected the same fault class as the query always ranks
ahead of campaigns that failed differently, in the same order on every
machine.
"""

import pytest

from repro.errors import ConfigurationError
from repro.insight import InsightStore, cosine_distance
from repro.insight.model import Hypothesis, Incident, IncidentReport


def _report(label, features, cause="injected-fault:X", name="run-0"):
    """A minimal single-incident report with a chosen feature vector."""
    incident = Incident(index=0, name=name, fault_class="active")
    incident.features = dict(features)
    incident.hypotheses = [
        Hypothesis(cause=cause, description="", tier_counts={}, score=1)
    ]
    return IncidentReport(
        label=label,
        campaign={"name": label, "source": "flat", "features": {}},
        incidents=[incident],
        counts={"incidents": 1},
    )


# Feature shapes: CRC-flavoured campaigns vs congestion-flavoured ones.
CRC_HEAVY = {"marks_matched": 4.0, "crc_broken_frames": 12.0,
             "injections": 4.0}
CRC_HEAVY_SCALED = {"marks_matched": 8.0, "crc_broken_frames": 24.0,
                    "injections": 8.0}
DROP_HEAVY = {"stage_drops": 30.0, "sdram_dropped_capacity": 11.0}


class TestCosineDistance:
    def test_identical_vectors_are_distance_zero(self):
        assert cosine_distance(CRC_HEAVY, dict(CRC_HEAVY)) == 0.0

    def test_scaling_does_not_change_the_distance(self):
        """Same fault class, bigger campaign: cosine sees parallel rays."""
        assert cosine_distance(
            CRC_HEAVY, CRC_HEAVY_SCALED
        ) == pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_evidence_is_maximally_distant(self):
        assert cosine_distance(CRC_HEAVY, DROP_HEAVY) == pytest.approx(1.0)

    def test_zero_vector_rules(self):
        assert cosine_distance({}, {}) == 0.0
        assert cosine_distance({"a": 0.0}, {"b": 0.0}) == 0.0
        assert cosine_distance({}, CRC_HEAVY) == 1.0
        assert cosine_distance(CRC_HEAVY, {}) == 1.0


class TestStoreBasics:
    def test_add_get_round_trip(self):
        with InsightStore() as store:
            report = _report("alpha", CRC_HEAVY)
            assert store.add_report(report) == "alpha"
            stored = store.get("alpha")
            assert stored["label"] == "alpha"
            assert stored["incidents"][0]["top_cause"] == "injected-fault:X"
            assert store.get("missing") is None

    def test_re_adding_a_label_replaces_the_row(self):
        with InsightStore() as store:
            store.add_report(_report("alpha", CRC_HEAVY))
            store.add_report(_report("alpha", DROP_HEAVY,
                                     cause="congestion-loss"))
            assert store.labels() == ["alpha"]
            assert store.features("alpha")["stage_drops"] == 30.0
            stored = store.get("alpha")
            assert stored["incidents"][0]["top_cause"] == "congestion-loss"

    def test_explicit_label_overrides_the_report_label(self):
        with InsightStore() as store:
            assert store.add_report(
                _report("alpha", CRC_HEAVY), label="renamed"
            ) == "renamed"
            assert store.labels() == ["renamed"]

    def test_persists_to_disk(self, tmp_path):
        path = tmp_path / "insight.sqlite"
        with InsightStore(path) as store:
            store.add_report(_report("alpha", CRC_HEAVY))
        with InsightStore(path) as store:
            assert store.labels() == ["alpha"]

    def test_schema_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "insight.sqlite"
        with InsightStore(path) as store:
            store._conn.execute(
                "UPDATE meta SET value = '999' "
                "WHERE key = 'schema_version'"
            )
            store._conn.commit()
        with pytest.raises(ConfigurationError):
            InsightStore(path)


class TestSimilar:
    def _seeded(self, store):
        store.add_report(_report("crc-a", CRC_HEAVY))
        store.add_report(_report("crc-b", CRC_HEAVY_SCALED))
        store.add_report(_report("drops-a", DROP_HEAVY,
                                 cause="congestion-loss"))

    def test_same_fault_campaign_ranks_first(self):
        """Acceptance shape: >=3 stored campaigns, same-fault one wins."""
        with InsightStore() as store:
            self._seeded(store)
            query = _report("query", {"marks_matched": 1.0,
                                      "crc_broken_frames": 3.0,
                                      "injections": 1.0})
            results = store.similar(query)
            assert len(results) == 3
            assert {r["label"] for r in results[:2]} == {"crc-a", "crc-b"}
            assert results[-1]["label"] == "drops-a"
            assert results[0]["dominant_cause"] == "injected-fault:X"

    def test_label_query_excludes_itself(self):
        with InsightStore() as store:
            self._seeded(store)
            results = store.similar("crc-a")
            labels = [r["label"] for r in results]
            assert "crc-a" not in labels
            assert labels[0] == "crc-b"

    def test_unknown_label_query_raises(self):
        with InsightStore() as store:
            with pytest.raises(ConfigurationError):
                store.similar("nowhere")

    def test_ties_break_on_label_not_insert_order(self):
        with InsightStore() as store:
            store.add_report(_report("zeta", CRC_HEAVY))
            store.add_report(_report("alpha", dict(CRC_HEAVY)))
            results = store.similar({"crc_broken_frames": 1.0,
                                     "marks_matched": 1.0,
                                     "injections": 1.0})
            distances = [r["distance"] for r in results]
            assert distances[0] == distances[1]
            assert [r["label"] for r in results] == ["alpha", "zeta"]

    def test_top_limits_and_exclude_label(self):
        with InsightStore() as store:
            self._seeded(store)
            assert len(store.similar(_report("q", CRC_HEAVY), top=1)) == 1
            results = store.similar(
                _report("q", CRC_HEAVY), exclude_label="crc-a"
            )
            assert "crc-a" not in [r["label"] for r in results]

    def test_results_carry_the_stored_digest(self):
        with InsightStore() as store:
            report = _report("alpha", CRC_HEAVY)
            store.add_report(report)
            results = store.similar({"marks_matched": 1.0})
            assert results[0]["digest"] == report.digest()

    def test_empty_store_returns_no_results(self):
        with InsightStore() as store:
            assert store.similar({"marks_matched": 1.0}) == []
