"""Regression pins for scalar-path bugs surfaced by the differential harness.

Satellite of the fastpath PR: every behaviour difference the conformance
harness surfaced had to land as a *scalar-path fix plus regression test*,
never as an allowance in the comparator.  Two bug classes were found and
fixed while wiring the harness; each is pinned here against its exact
failure mode:

1. **FIFO watermark off-by-one (fused vs per-step).**  The per-step path
   pushes before popping, so occupancy transiently reaches ``depth + 1``
   (the FIFO holds ``depth + 1`` words).  The fused burst path and the
   fast path's bulk accounting originally reported ``min(count, depth)``
   — one less than the hardware-accurate transient — so the
   ``fifo_high_watermark`` stat depended on *which loop* processed the
   burst.

2. **CRC fix-up dirty-flag mis-attribution (burst-scoped vs positional).**
   With a burst-scoped boolean dirty flag, the *first* frame closed in a
   burst consumed the flag: a clean frame sharing a burst with a later
   corrupted frame got its CRC "fixed" (a laundered no-op) while the
   actually-corrupted frame shipped with a stale, wrong CRC.  The fix
   threads the injector's ``last_burst_rewrites`` positions through to
   the stage so exactly the frames containing rewrites are marked dirty.
"""

from __future__ import annotations

from typing import List

from repro.core.crcfix import CrcFixupStage
from repro.core.faults import replace_bytes
from repro.fastpath.engine import FastPathEngine
from repro.hw.injector import FifoInjector
from repro.hw.registers import MatchMode
from repro.myrinet.crc8 import crc8, verify
from repro.myrinet.symbols import GAP, Symbol, data_symbol

PIPELINE_DEPTH = 8

#: An armed register file whose 4-byte pattern never occurs in the
#: all-0x11 workloads below — the injector does full per-symbol work
#: (clock, compare, RAM) without ever triggering.
NEVER_MATCHING = replace_bytes(
    b"\xde\xad\xbe\xef", b"\x00\x00\x00\x00", match_mode=MatchMode.ON
)


def _frame(payload: bytes) -> List[Symbol]:
    """A valid Myrinet frame: payload, CRC-8, terminating GAP."""
    return (
        [data_symbol(byte) for byte in payload]
        + [data_symbol(crc8(payload))]
        + [GAP]
    )


def _frame_ok(symbols: List[Symbol]) -> bool:
    """True if ``symbols`` = data payload + CRC + GAP with a valid CRC."""
    assert symbols[-1].pair == GAP.pair
    return verify([s.value for s in symbols[:-1]])


# ----------------------------------------------------------------------
# 1. FIFO watermark: per-step, fused, and bulk paths must agree
# ----------------------------------------------------------------------


def test_watermark_fused_matches_per_step() -> None:
    """The fused burst loop reports the same transient peak occupancy
    (depth + 1, push-before-pop) that the explicit two-phase path hits.

    Regression: the fused path used ``min(count, depth)`` and came up
    one short, so ``fifo_high_watermark`` depended on which loop ran.
    """
    burst = [data_symbol(0x11) for _ in range(40)]

    stepped = FifoInjector(name="step", pipeline_depth=PIPELINE_DEPTH)
    stepped.configure(NEVER_MATCHING)
    out_stepped: List[Symbol] = []
    for symbol in burst:
        emitted = stepped.step(symbol)
        if emitted is not None:
            out_stepped.append(emitted)
    out_stepped.extend(stepped.fifo.drain())

    fused = FifoInjector(name="fused", pipeline_depth=PIPELINE_DEPTH)
    fused.configure(NEVER_MATCHING)
    out_fused = fused.process_burst(list(burst))

    assert [s.pair for s in out_stepped] == [s.pair for s in out_fused]
    assert stepped.stats == fused.stats
    # The exact transient: the FIFO holds depth + 1 words and the odd
    # cycle pushes before popping.
    assert fused.stats["fifo_high_watermark"] == PIPELINE_DEPTH + 1


def test_watermark_bulk_passthrough_matches_scalar() -> None:
    """The fast path's bulk accounting hits the same watermark.

    ``advance_passthrough`` had the same ``min(count, depth)`` slip; an
    engine-wrapped injector must report the identical stats dict —
    watermark included — for a matchless armed burst it handled in bulk.
    """
    burst = [data_symbol(0x11) for _ in range(40)]

    scalar = FifoInjector(name="scalar", pipeline_depth=PIPELINE_DEPTH)
    scalar.configure(NEVER_MATCHING)
    out_scalar = scalar.process_burst(list(burst))

    wrapped = FifoInjector(name="fast", pipeline_depth=PIPELINE_DEPTH)
    wrapped.configure(NEVER_MATCHING)
    engine = FastPathEngine(wrapped)
    out_fast = engine.process_burst(list(burst))

    assert [s.pair for s in out_scalar] == [s.pair for s in out_fast]
    assert scalar.stats == wrapped.stats
    assert wrapped.stats["fifo_high_watermark"] == PIPELINE_DEPTH + 1
    # Non-vacuity: the engine really took the bulk path for this burst.
    assert engine.stats["symbols_bulk"] == len(burst)


def test_watermark_short_burst_stays_below_transient() -> None:
    """Bursts shorter than the pipeline never reach the full transient:
    both loops report occupancy == burst length, not depth + 1."""
    burst = [data_symbol(0x11) for _ in range(5)]
    for use_fused in (False, True):
        injector = FifoInjector(name="short", pipeline_depth=PIPELINE_DEPTH)
        injector.configure(NEVER_MATCHING)
        if use_fused:
            injector.process_burst(list(burst))
        else:
            for symbol in burst:
                injector.step(symbol)
            injector.fifo.drain()
        assert injector.stats["fifo_high_watermark"] == len(burst), use_fused


# ----------------------------------------------------------------------
# 2. CRC fix-up: positional dirty attribution across frames in a burst
# ----------------------------------------------------------------------

#: Frame 1 is clean; frame 2's payload contains the 0x18 match byte.
CLEAN_PAYLOAD = bytes([0x01, 0x02, 0x03, 0x04])
HIT_PAYLOAD = bytes([0x21, 0x18, 0x22, 0x23])


def _two_frame_run() -> tuple:
    """Inject into frame 2 of a two-frame burst; return the pieces."""
    # Preconditions that make the scenario unambiguous: the match byte
    # appears exactly once, in frame 2's payload, and in neither CRC.
    assert 0x18 not in CLEAN_PAYLOAD
    assert crc8(CLEAN_PAYLOAD) != 0x18
    assert crc8(HIT_PAYLOAD) != 0x18

    frame1 = _frame(CLEAN_PAYLOAD)
    frame2 = _frame(HIT_PAYLOAD)
    burst = frame1 + frame2

    injector = FifoInjector(name="crc", pipeline_depth=PIPELINE_DEPTH)
    injector.configure(
        replace_bytes(b"\x18", b"\x19", match_mode=MatchMode.ON)
    )
    output = injector.process_burst(list(burst))
    assert injector.injections == 1
    return burst, output, injector, len(frame1)


def test_rewrite_positions_name_the_rewritten_symbols() -> None:
    """``last_burst_rewrites`` holds exactly the burst-relative output
    positions whose symbols differ from the input — the contract the
    CRC stage's positional attribution depends on."""
    burst, output, injector, _ = _two_frame_run()
    differing = [
        index
        for index, (before, after) in enumerate(zip(burst, output))
        if before.pair != after.pair
    ]
    assert sorted(injector.last_burst_rewrites) == differing
    assert differing == [len(burst) - len(_frame(HIT_PAYLOAD)) + 1]


def test_crc_fixup_positional_dirty_fixes_the_right_frame() -> None:
    """Positional dirty: the clean frame passes byte-identical and the
    corrupted frame ships with a *recomputed, valid* CRC."""
    burst, output, injector, split = _two_frame_run()

    stage = CrcFixupStage()
    delivered = stage.feed(list(output), True, injector.last_burst_rewrites)

    frame1, frame2 = delivered[:split], delivered[split:]
    # Frame 1 is byte-identical to what entered the injector.
    assert [s.pair for s in frame1] == [s.pair for s in burst[:split]]
    # Frame 2 carries the corruption (0x18 -> 0x19) *and* a CRC
    # recomputed over the corrupted payload, so it still verifies.
    assert frame2[1].value == 0x19
    assert _frame_ok(frame2)
    assert stage.frames_passed == 1
    assert stage.frames_fixed == 1


def test_crc_fixup_legacy_burst_dirty_reproduces_the_bug() -> None:
    """The legacy burst-scoped flag mis-attributes: frame 1 consumes the
    dirty bit (counted as "fixed" even though nothing changed) and the
    actually-corrupted frame 2 is delivered with a stale, invalid CRC.

    Kept as a characterization of the bug the positional fix removed —
    if this starts *passing* the CRC check, the legacy path changed.
    """
    burst, output, injector, split = _two_frame_run()

    stage = CrcFixupStage()
    delivered = stage.feed(list(output), True, dirty=True)

    frame2 = delivered[split:]
    assert frame2[1].value == 0x19          # corruption went through...
    assert not _frame_ok(frame2)            # ...but the CRC is stale.
    assert stage.frames_fixed == 1          # frame 1 ate the dirty flag.


def test_crc_fixup_both_frames_dirty_both_fixed() -> None:
    """Positional attribution fixes *every* corrupted frame in a burst,
    not just the first (the other half of the burst-scoped failure)."""
    frame_a = _frame(bytes([0x18, 0x31, 0x32]))
    frame_b = _frame(bytes([0x41, 0x42, 0x18]))
    assert crc8(bytes([0x18, 0x31, 0x32])) != 0x18
    assert crc8(bytes([0x41, 0x42, 0x18])) != 0x18
    burst = frame_a + frame_b

    injector = FifoInjector(name="crc2", pipeline_depth=PIPELINE_DEPTH)
    injector.configure(
        replace_bytes(b"\x18", b"\x19", match_mode=MatchMode.ON)
    )
    output = injector.process_burst(list(burst))
    assert injector.injections == 2

    stage = CrcFixupStage()
    delivered = stage.feed(list(output), True, injector.last_burst_rewrites)
    first, second = delivered[: len(frame_a)], delivered[len(frame_a):]
    assert _frame_ok(first)
    assert _frame_ok(second)
    assert stage.frames_fixed == 2
    assert stage.frames_passed == 0
