"""Property-based invariants of the scalar/fast pipeline pair.

Ten seeded, shrinking properties over random burst sequences and random
register files.  The central one is symbol exactness — the fast engine
and the scalar reference agree on every observable — but the suite also
pins single-pipeline invariants (length preservation, disarmed
transparency, once-mode at-most-once, prefilter soundness, plane
consistency) that the differential harness alone would not localize.

All generation and ddmin-style shrinking lives in
:mod:`tests.strategies`; no third-party dependencies.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.fastpath.buffer import SymbolBuffer
from repro.fastpath.engine import FastPathEngine
from repro.fastpath.prefilter import CompiledMatcher
from repro.hw.injector import FifoInjector
from repro.hw.registers import InjectorConfig, MatchMode
from repro.myrinet.symbols import Symbol, data_symbol, symbol_bytes

from tests.strategies import (
    Bursts,
    describe_bursts,
    gen_burst,
    gen_bursts,
    gen_config,
    minimize,
    run_property,
    shrink_bursts,
)

PIPELINE_DEPTH = 8


def _run_pair(
    config: InjectorConfig, bursts: Bursts
) -> Tuple[dict, dict]:
    """Feed ``bursts`` to a scalar injector and an engine-wrapped one.

    Returns one observation dict per pipeline: delivered bytes, stats,
    per-burst rewrite lists, injection events, and compare-window state.
    """
    observations = []
    for fast in (False, True):
        injector = FifoInjector(name="prop", pipeline_depth=PIPELINE_DEPTH)
        injector.configure(config)
        events: List[tuple] = []
        injector.on_injection(
            lambda e: events.append((
                e.segment_index, e.window_before, e.ctl_before,
                e.window_after, e.ctl_after, e.lanes_rewritten,
                e.lanes_unreachable, e.forced,
            ))
        )
        front = FastPathEngine(injector) if fast else injector
        delivered = bytearray()
        rewrites: List[List[int]] = []
        for burst in bursts:
            output = front.process_burst(list(burst))
            delivered += symbol_bytes(output)
            delivered += bytes(
                1 if s.is_data else 0 for s in output
            )
            rewrites.append(list(injector.last_burst_rewrites))
        observations.append({
            "delivered": bytes(delivered),
            "stats": injector.stats,
            "rewrites": rewrites,
            "events": events,
            "window": injector.compare.snapshot(),
            "occupancy": injector.fifo.occupancy,
        })
    return observations[0], observations[1]


def _divergence(config: InjectorConfig, bursts: Bursts) -> Optional[str]:
    scalar, fast = _run_pair(config, bursts)
    for key in scalar:
        if scalar[key] != fast[key]:
            return (
                f"{key}: scalar={scalar[key]!r} fast={fast[key]!r}"
            )
    return None


def _assert_exact(config: InjectorConfig, bursts: Bursts) -> None:
    if _divergence(config, bursts) is None:
        return
    smallest = minimize(
        bursts,
        lambda candidate: _divergence(config, candidate) is not None,
        shrink_bursts,
    )
    raise AssertionError(
        f"pipelines diverge ({_divergence(config, smallest)}) for "
        f"config={config!r} bursts={describe_bursts(smallest)}"
    )


# ----------------------------------------------------------------------
# 1–3: exactness over the generated config space
# ----------------------------------------------------------------------


def test_property_exactness_random_configs() -> None:
    """(1) Fast == scalar on every observable, random configs/bursts."""
    def prop(rng: random.Random) -> None:
        _assert_exact(gen_config(rng), gen_bursts(rng))
    run_property(prop, rounds=60, name="exactness_random")


def test_property_exactness_rearm_between_bursts() -> None:
    """(2) Exactness holds across mid-sequence re-arms (once mode)."""
    def prop(rng: random.Random) -> None:
        config = gen_config(rng)
        bursts = gen_bursts(rng, max_bursts=6)

        def run(fast: bool) -> tuple:
            injector = FifoInjector(name="p", pipeline_depth=PIPELINE_DEPTH)
            injector.configure(config)
            front = FastPathEngine(injector) if fast else injector
            out = bytearray()
            for index, burst in enumerate(bursts):
                out += symbol_bytes(front.process_burst(list(burst)))
                if index % 2 == 1:
                    injector.set_match_mode(MatchMode.ONCE)
            return bytes(out), injector.stats

        assert run(False) == run(True), describe_bursts(bursts)
    run_property(prop, rounds=40, name="exactness_rearm")


def test_property_exactness_tiny_bursts() -> None:
    """(3) Exactness at and below the guard margin (1..6 symbols)."""
    def prop(rng: random.Random) -> None:
        config = gen_config(rng)
        bursts = [
            [gen_burst(rng, max_len=6)[0] for _ in range(rng.randint(1, 6))]
            for _ in range(rng.randint(2, 10))
        ]
        _assert_exact(config, bursts)
    run_property(prop, rounds=40, name="exactness_tiny")


# ----------------------------------------------------------------------
# 4–7: single-pipeline behavioural invariants
# ----------------------------------------------------------------------


def test_property_length_preserved() -> None:
    """(4) Both pipelines deliver exactly one symbol per input symbol."""
    def prop(rng: random.Random) -> None:
        config = gen_config(rng)
        for fast in (False, True):
            injector = FifoInjector(name="p", pipeline_depth=PIPELINE_DEPTH)
            injector.configure(config)
            front = FastPathEngine(injector) if fast else injector
            for burst in gen_bursts(rng, max_bursts=5):
                output = front.process_burst(list(burst))
                assert len(output) == len(burst)
    run_property(prop, rounds=30, name="length_preserved")


def test_property_disarmed_is_identity() -> None:
    """(5) A disarmed injector is a transparent pipe in both pipelines."""
    def prop(rng: random.Random) -> None:
        for fast in (False, True):
            injector = FifoInjector(name="p", pipeline_depth=PIPELINE_DEPTH)
            front = FastPathEngine(injector) if fast else injector
            for burst in gen_bursts(rng, max_bursts=5):
                output = front.process_burst(list(burst))
                assert [s.pair for s in output] == [s.pair for s in burst]
                assert injector.injections == 0
    run_property(prop, rounds=30, name="disarmed_identity")


def test_property_once_mode_at_most_once() -> None:
    """(6) Once mode injects at most once per arm, in both pipelines."""
    def prop(rng: random.Random) -> None:
        config = gen_config(rng).copy(match_mode=MatchMode.ONCE)
        for fast in (False, True):
            injector = FifoInjector(name="p", pipeline_depth=PIPELINE_DEPTH)
            injector.configure(config)
            front = FastPathEngine(injector) if fast else injector
            arms = 1
            for index, burst in enumerate(gen_bursts(rng, max_bursts=8)):
                front.process_burst(list(burst))
                if index % 3 == 2:
                    injector.set_match_mode(MatchMode.ONCE)
                    arms += 1
            assert injector.injections <= arms, (
                injector.injections, arms
            )
    run_property(prop, rounds=30, name="once_at_most_once")


def test_property_determinism() -> None:
    """(7) Identical inputs replay to identical observables (both)."""
    def prop(rng: random.Random) -> None:
        config = gen_config(rng)
        bursts = gen_bursts(rng, max_bursts=6)
        first = _run_pair(config, bursts)
        second = _run_pair(config, bursts)
        assert first == second
    run_property(prop, rounds=15, name="determinism")


# ----------------------------------------------------------------------
# 8–10: fastpath component invariants
# ----------------------------------------------------------------------


def test_property_prefilter_sound_and_complete() -> None:
    """(8) first_match returns the *earliest* scalar-visible match.

    Brute force: shift the compare window symbol by symbol with the
    scalar register model and record the first position where the armed
    window matches; the prefilter must agree exactly (no false skip, no
    early false positive) whenever it claims scannability.
    """
    from repro.hw.compare import CompareUnit

    def prop(rng: random.Random) -> None:
        config = gen_config(rng)
        matcher = CompiledMatcher(config)
        if not matcher.scannable:
            return
        burst = gen_burst(rng, max_len=120)
        buffer = SymbolBuffer(burst)
        values, flags = buffer.planes()

        reference = CompareUnit()
        expected = None
        for position, symbol in enumerate(burst):
            reference.shift(symbol)
            if reference.evaluate(config):
                expected = position
                break

        window, ctl = CompareUnit().snapshot()
        got = matcher.first_match(values, flags, window, ctl)
        assert got == expected, (
            f"prefilter={got} scalar={expected} "
            f"burst={describe_bursts([burst])} config={config!r}"
        )
    run_property(prop, rounds=80, name="prefilter_sound")


def test_property_symbol_buffer_planes_consistent() -> None:
    """(9) SymbolBuffer planes always mirror the per-symbol pairs."""
    def prop(rng: random.Random) -> None:
        burst = gen_burst(rng, max_len=80)
        buffer = SymbolBuffer(burst)
        values, flags = buffer.planes()
        assert values == bytes(s.value for s in buffer)
        assert flags == bytes(1 if s.is_data else 0 for s in buffer)
        # Mutation invalidates-and-rebuilds (length-guarded laziness).
        buffer.append(data_symbol(rng.randrange(256)))
        values2, flags2 = buffer.planes()
        assert values2 == bytes(s.value for s in buffer)
        assert flags2 == bytes(1 if s.is_data else 0 for s in buffer)
    run_property(prop, rounds=40, name="planes_consistent")


def test_property_engine_accounting_balances() -> None:
    """(10) Engine counters partition the symbol stream: every symbol is
    accounted bulk or scalar, and fallbacks+fast+splits == bursts."""
    def prop(rng: random.Random) -> None:
        config = gen_config(rng)
        injector = FifoInjector(name="p", pipeline_depth=PIPELINE_DEPTH)
        injector.configure(config)
        engine = FastPathEngine(injector)
        total = 0
        bursts = gen_bursts(rng, max_bursts=8)
        for burst in bursts:
            engine.process_burst(list(burst))
            total += len(burst)
        stats = engine.stats
        assert stats["symbols_bulk"] + stats["symbols_scalar"] == total
        assert (
            stats["bursts_fast"] + stats["bursts_scalar"]
            + stats["guard_splits"] == len(bursts)
        )
        assert sum(stats["fallback_reasons"].values()) == (
            stats["bursts_scalar"]
        )
    run_property(prop, rounds=40, name="accounting_balances")


def test_shrinker_produces_minimal_counterexample() -> None:
    """The ddmin shrinker itself: a planted divergence minimizes to a
    single-burst, few-symbol counterexample (meta-test of the harness)."""
    # A fake "divergence": any sequence containing a 0x42 data symbol.
    def fails(bursts: Bursts) -> bool:
        return any(
            s.is_data and s.value == 0x42 for b in bursts for s in b
        )

    rng = random.Random(7)
    bursts = gen_bursts(rng, max_bursts=10)
    bursts[len(bursts) // 2].append(data_symbol(0x42))
    assert fails(bursts)
    smallest = minimize(bursts, fails, shrink_bursts)
    assert fails(smallest)
    assert len(smallest) == 1
    assert len(smallest[0]) <= 2, describe_bursts(smallest)
