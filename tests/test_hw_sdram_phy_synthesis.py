"""Unit tests for the SDRAM buffer, PHY models, and synthesis estimator."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.phy import DEFAULT_PHY_LATENCY_PS, PhyTransceiver
from repro.hw.sdram import SdramBuffer
from repro.hw.synthesis import (
    ENTITY_ORDER,
    PAPER_TABLE1,
    describe_all,
    estimate_entity,
    format_report,
    synthesis_report,
)


class TestSdramBuffer:
    def test_store_and_read_back(self):
        sdram = SdramBuffer(capacity_bytes=1024)
        assert sdram.store(100, "record-a", 64)
        assert sdram.store(200, "record-b", 64)
        assert sdram.bytes_used == 128
        assert [r for _t, r in sdram.records] == ["record-a", "record-b"]

    def test_capacity_limit(self):
        sdram = SdramBuffer(capacity_bytes=100)
        assert sdram.store(0, "a", 80)
        assert not sdram.store(1, "b", 80)
        assert sdram.records_dropped_capacity == 1

    def test_bandwidth_limit(self):
        # 1 byte/s bandwidth: any realistic burst overwhelms the write
        # queue immediately.
        sdram = SdramBuffer(capacity_bytes=10**9, bandwidth_bytes_per_s=1)
        assert sdram.store(0, "a", 1000)
        assert not sdram.store(1, "b", 1000)
        assert sdram.records_dropped_bandwidth == 1

    def test_clear(self):
        sdram = SdramBuffer()
        sdram.store(0, "x", 10)
        sdram.clear()
        assert len(sdram) == 0
        assert sdram.bytes_used == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SdramBuffer(capacity_bytes=0)

    def test_write_exactly_at_bandwidth_boundary_is_stored(self):
        """A record arriving exactly when the previous write finishes
        sees zero backlog; one picosecond earlier sees backlog 1 — and
        both are stored, because shedding needs MAX_BACKLOG_PS excess."""
        sdram = SdramBuffer(capacity_bytes=10**9,
                            bandwidth_bytes_per_s=1000)
        assert sdram.store(0, "a", 5)  # frontier = 5 ms = 5e9 ps
        frontier = 5 * 10**9
        assert sdram.store(frontier, "b", 5)
        assert sdram.backlog_ps == 0
        assert sdram.store(2 * frontier - 1, "c", 5)
        assert sdram.backlog_ps == 1
        assert sdram.records_dropped_bandwidth == 0
        assert sdram.records_stored == 3

    def test_backlog_at_exact_max_is_stored_one_past_is_shed(self):
        sdram = SdramBuffer(capacity_bytes=10**9,
                            bandwidth_bytes_per_s=1000)
        max_backlog = SdramBuffer.MAX_BACKLOG_PS
        assert sdram.store(0, "a", 5)  # frontier = 5e9 ps
        frontier = 5 * 10**9
        # Arrive exactly MAX_BACKLOG_PS before the frontier clears.
        assert sdram.store(frontier - max_backlog, "b", 5)
        assert sdram.backlog_ps == max_backlog
        assert sdram.records_dropped_bandwidth == 0
        # The next record's backlog exceeds the limit by 1 ps: shed.
        new_frontier = frontier + 5 * 10**9
        assert not sdram.store(new_frontier - max_backlog - 1, "c", 5)
        assert sdram.records_dropped_bandwidth == 1
        assert sdram.bytes_dropped == 5
        # Shed records still advance the recorded worst-case backlog.
        assert sdram.peak_backlog_ps == max_backlog + 1
        # Shedding does not consume capacity or frontier time.
        assert sdram.bytes_used == 10
        assert sdram.store(new_frontier, "d", 5)

    def test_stats_and_clear_preserve_loss_evidence(self):
        sdram = SdramBuffer(capacity_bytes=100,
                            bandwidth_bytes_per_s=1000)
        assert sdram.store(0, "a", 80)
        assert not sdram.store(1, "b", 80)  # capacity drop
        stats = sdram.stats
        assert stats["records_stored"] == 1
        assert stats["records_dropped_capacity"] == 1
        assert stats["records_dropped_bandwidth"] == 0
        assert stats["bytes_used"] == 80
        assert stats["bytes_dropped"] == 80
        sdram.clear()
        assert sdram.bytes_used == 0
        assert sdram.backlog_ps == 0
        # Drop counters are campaign-level loss evidence: they survive.
        assert sdram.stats["records_dropped_capacity"] == 1
        assert sdram.stats["bytes_dropped"] == 80
        assert sdram.stats["records_stored"] == 1


class TestPhy:
    def test_counts_and_latency(self):
        phy = PhyTransceiver("p", "myrinet")
        assert phy.receive(10) == DEFAULT_PHY_LATENCY_PS
        assert phy.drive(8) == DEFAULT_PHY_LATENCY_PS
        assert phy.symbols_received == 10
        assert phy.symbols_driven == 8

    def test_media_validated(self):
        PhyTransceiver("p", "fibre-channel")
        with pytest.raises(ConfigurationError):
            PhyTransceiver("p", "token-ring")
        with pytest.raises(ConfigurationError):
            PhyTransceiver("p", latency_ps=-5)


class TestSynthesis:
    def test_report_covers_all_entities(self):
        report = synthesis_report()
        assert set(report) == set(ENTITY_ORDER) | {"total"}
        for name in ENTITY_ORDER:
            for key in ("gates", "function_generators", "multiplexers",
                        "flip_flops"):
                assert report[name][key] >= 0

    def test_fifo_injector_dominates_every_resource(self):
        """The reproduction-relevant shape of Table 1."""
        report = synthesis_report()
        for key in ("gates", "function_generators", "flip_flops",
                    "multiplexers"):
            fifo = report["fifo_inject"][key]
            others = sum(report[name][key] for name in ENTITY_ORDER
                         if name != "fifo_inject")
            assert fifo > others, key

    def test_instruction_decoder_is_register_heaviest_control_entity(self):
        report = synthesis_report()
        control = [n for n in ENTITY_ORDER if n != "fifo_inject"]
        heaviest = max(control, key=lambda n: report[n]["flip_flops"])
        assert heaviest == "inst_dec"

    def test_totals_within_tolerance_of_paper(self):
        report = synthesis_report()
        for key in ("gates", "function_generators", "multiplexers",
                    "flip_flops"):
            ours = report["total"][key]
            paper = PAPER_TABLE1["total"][key]
            assert abs(ours - paper) / paper < 0.25, (key, ours, paper)

    def test_relative_ordering_matches_paper(self):
        report = synthesis_report()
        ours = sorted(ENTITY_ORDER,
                      key=lambda n: report[n]["function_generators"])
        paper = sorted(ENTITY_ORDER,
                       key=lambda n: PAPER_TABLE1[n]["function_generators"])
        assert ours == paper

    def test_two_fifo_instances_option(self):
        single = synthesis_report(fifo_instances=1)["total"]["flip_flops"]
        double = synthesis_report(fifo_instances=2)["total"]["flip_flops"]
        fifo = synthesis_report()["fifo_inject"]["flip_flops"]
        assert double == single + fifo

    def test_deeper_pipeline_costs_more_pointer_bits(self):
        shallow = synthesis_report(pipeline_depth=8)
        deep = synthesis_report(pipeline_depth=128)
        assert (deep["fifo_inject"]["flip_flops"]
                > shallow["fifo_inject"]["flip_flops"])

    def test_estimates_deterministic(self):
        descriptions = describe_all()
        first = [estimate_entity(d).as_dict() for d in descriptions]
        second = [estimate_entity(d).as_dict() for d in descriptions]
        assert first == second

    def test_format_report_renders(self):
        text = format_report(synthesis_report())
        assert "fifo_inject" in text
        assert "model/paper" in text
