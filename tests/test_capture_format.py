"""Round-trip tests for the versioned binary ``.rcap`` format."""

import io
import struct

import pytest

from repro.capture.format import (
    MAGIC,
    VERSION,
    CaptureWriter,
    pack_symbol,
    read_capture,
    unpack_symbol,
)
from repro.capture.provenance import LifecycleEvent
from repro.core.monitor import CaptureRecord
from repro.errors import ConfigurationError
from repro.hw.injector import InjectionEvent
from repro.myrinet.symbols import GAP, GO, IDLE, STOP, data_symbols


def _event(**overrides):
    fields = dict(
        segment_index=42, window_before=0x11223344, ctl_before=0xF,
        window_after=0x11FF3344, ctl_after=0xD, lanes_rewritten=2,
        lanes_unreachable=1, forced=True,
    )
    fields.update(overrides)
    return InjectionEvent(**fields)


def _capture_record():
    return CaptureRecord(
        time_ps=123_456_789, direction="R", event=_event(),
        before=[GAP] + data_symbols(b"pre"),
        after=data_symbols(b"post") + [STOP, GO],
    )


class TestSymbolPacking:
    def test_nine_bit_flag_survives(self):
        """0x0C as *data* and GAP (control 0x0C) must stay distinct."""
        data_0c = data_symbols(bytes([0x0C]))[0]
        assert pack_symbol(data_0c) != pack_symbol(GAP)
        assert unpack_symbol(pack_symbol(data_0c)) == data_0c
        assert unpack_symbol(pack_symbol(GAP)) == GAP

    def test_all_values_round_trip(self):
        for value in (0, 1, 0x7F, 0xFF):
            for symbol in (data_symbols(bytes([value]))[0],):
                assert unpack_symbol(pack_symbol(symbol)) == symbol
        for control in (GAP, IDLE, STOP, GO):
            assert unpack_symbol(pack_symbol(control)) == control


class TestRoundTrip:
    def test_full_file_round_trip(self, tmp_path):
        record = _capture_record()
        event = LifecycleEvent(
            time_ps=999, stage="host_send", node="pc", direction="tx",
            corr_id=17, seq=3, experiment_index=1,
            attrs={"packet_type": 4, "wire_length": 96},
        )
        anonymous = LifecycleEvent(
            time_ps=1000, stage="drop", node="sparc1", corr_id=None,
        )
        marker = {"index": 1, "name": "GAP->IDLE", "seed": 9,
                  "fault_class": "passive", "span_id": 7,
                  "injections": 5, "captures": 1}

        path = tmp_path / "capture.rcap"
        with CaptureWriter(path, meta={"label": "round-trip"}) as writer:
            writer.write_experiment(marker)
            writer.write_capture(1, record)
            writer.write_event(event)
            writer.write_event(anonymous)
        assert writer.records_written == 4

        data = read_capture(path)
        assert data.meta["label"] == "round-trip"
        assert data.meta["format"] == "rcap"
        assert data.experiments == [marker]
        assert data.experiment_meta(1) == marker

        [window] = data.captures
        assert window.experiment_index == 1
        assert window.time_ps == record.time_ps
        assert window.direction == "R"
        assert window.segment_index == 42
        assert window.window_before == 0x11223344
        assert window.window_after == 0x11FF3344
        assert window.ctl_before == 0xF
        assert window.ctl_after == 0xD
        assert window.lanes_rewritten == 2
        assert window.lanes_unreachable == 1
        assert window.forced is True
        assert window.changed is True
        assert window.before == record.before
        assert window.after == record.after
        assert window.symbols == record.before + record.after

        assert data.events == [event, anonymous]
        assert data.events[1].corr_id is None
        assert data.captures_for(1) == [window]
        assert data.events_for(1) == [event]

    def test_bytes_and_stream_sources(self, tmp_path):
        buffer = io.BytesIO()
        with CaptureWriter(buffer, meta={"label": "buf"}) as writer:
            writer.write_experiment({"index": 0, "name": "x"})
        raw = buffer.getvalue()
        assert raw.startswith(MAGIC)
        assert read_capture(raw).meta["label"] == "buf"
        assert read_capture(io.BytesIO(raw)).meta["label"] == "buf"

    def test_unknown_record_types_are_skipped(self):
        buffer = io.BytesIO()
        with CaptureWriter(buffer, meta={}) as writer:
            writer.write_experiment({"index": 0, "name": "x"})
            # A future record type the v1 reader has never heard of.
            writer._write_record(250, b"mystery-bytes")
            writer.write_event(
                LifecycleEvent(time_ps=1, stage="drop", node="pc")
            )
        data = read_capture(buffer.getvalue())
        assert data.unknown_records_skipped == 1
        assert len(data.experiments) == 1
        assert len(data.events) == 1

    def test_bad_magic_rejected(self):
        with pytest.raises(ConfigurationError):
            read_capture(b"NOTACAPTURE")

    def test_future_version_rejected(self):
        blob = MAGIC + struct.pack("<HI", VERSION + 1, 2) + b"{}"
        with pytest.raises(ConfigurationError):
            read_capture(blob)

    def test_truncated_file_rejected(self):
        buffer = io.BytesIO()
        with CaptureWriter(buffer, meta={}) as writer:
            writer.write_capture(0, _capture_record())
        raw = buffer.getvalue()
        with pytest.raises(ConfigurationError):
            read_capture(raw[:-3])
