"""Unit tests for channels and links."""

import pytest

from repro.errors import ConfigurationError
from repro.myrinet.link import Channel, Link
from repro.myrinet.symbols import GAP, data_symbol


class Collector:
    def __init__(self):
        self.bursts = []
        self.times = []

    def on_burst(self, burst, channel):
        self.bursts.append(burst)


class TimedCollector(Collector):
    def __init__(self, sim):
        super().__init__()
        self._sim = sim

    def on_burst(self, burst, channel):
        super().on_burst(burst, channel)
        self.times.append(self._sim.now)


def test_send_requires_sink(sim):
    channel = Channel(sim, "c")
    with pytest.raises(ConfigurationError):
        channel.send([GAP])


def test_serialization_and_propagation_delay(sim):
    channel = Channel(sim, "c", char_period_ps=10, propagation_ps=100)
    sink = TimedCollector(sim)
    channel.connect(sink)
    channel.send([data_symbol(1), data_symbol(2), data_symbol(3)])
    sim.run()
    # 3 symbols * 10ps + 100ps propagation.
    assert sink.times == [130]
    assert [s.value for s in sink.bursts[0]] == [1, 2, 3]


def test_back_to_back_bursts_queue_on_wire(sim):
    channel = Channel(sim, "c", char_period_ps=10, propagation_ps=0)
    sink = TimedCollector(sim)
    channel.connect(sink)
    channel.send([data_symbol(0)] * 5)   # occupies 0..50
    channel.send([data_symbol(1)] * 5)   # occupies 50..100
    sim.run()
    assert sink.times == [50, 100]
    assert channel.symbols_carried == 10
    assert channel.bursts_carried == 2


def test_free_at_tracks_busy(sim):
    channel = Channel(sim, "c", char_period_ps=10, propagation_ps=0)
    channel.connect(Collector())
    assert channel.free_at() == 0
    channel.send([data_symbol(0)] * 4)
    assert channel.free_at() == 40
    assert channel.busy_until == 40


def test_empty_burst_is_noop(sim):
    channel = Channel(sim, "c")
    channel.connect(Collector())
    assert channel.send([]) == sim.now
    assert channel.bursts_carried == 0


def test_bad_parameters_rejected(sim):
    with pytest.raises(ConfigurationError):
        Channel(sim, "c", char_period_ps=0)
    with pytest.raises(ConfigurationError):
        Channel(sim, "c", propagation_ps=-1)


def test_link_full_duplex_independent(sim):
    link = Link(sim, "l", char_period_ps=10, propagation_ps=0)
    a_side = TimedCollector(sim)
    b_side = TimedCollector(sim)
    tx_a = link.attach_a(a_side)
    tx_b = link.attach_b(b_side)
    tx_a.send([data_symbol(1)])
    tx_b.send([data_symbol(2)] * 3)
    sim.run()
    assert [s.value for s in b_side.bursts[0]] == [1]
    assert [s.value for s in a_side.bursts[0]] == [2, 2, 2]
    # Directions do not share the wire.
    assert b_side.times == [10]
    assert a_side.times == [30]


def test_link_flow_state_registry(sim):
    link = Link(sim, "l")
    link.register_tx_state("a", "state-a")
    link.register_tx_state("b", "state-b")
    assert link.peer_tx_state("a") == "state-b"
    assert link.peer_tx_state("b") == "state-a"
    with pytest.raises(ConfigurationError):
        link.register_tx_state("c", None)
    with pytest.raises(ConfigurationError):
        link.peer_tx_state("x")


def test_burst_duration_helper(sim):
    channel = Channel(sim, "c", char_period_ps=12_500)
    assert channel.burst_duration(20) == 250_000  # the ~250ns pipeline
