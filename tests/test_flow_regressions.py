"""FLOW historical-positive regressions.

The acceptance bar for the FLOW3xx analysis is that it would have
caught the two real scalar/fast divergence bugs found dynamically by
PR 5's conformance harness.  ``tests/fixtures/injector_prefix_snapshot
.py`` vendors the mid-development state of ``repro.hw.injector`` with
both fixes reverted (see its docstring); running the real contract over
it must reproduce both findings — and running it over the shipped tree
must stay clean.
"""

import ast
from pathlib import Path

from repro.analysis.engine import ModuleInfo, parse_module
from repro.analysis.flow.effects import FastpathEffectContractRule
from repro.fastpath.contract import contract_by_name

FIXTURE = Path(__file__).parent / "fixtures" / "injector_prefix_snapshot.py"
SRC = Path(__file__).parent.parent / "src"


def prefix_modules():
    source = FIXTURE.read_text(encoding="utf-8")
    info = ModuleInfo(
        path=FIXTURE,
        module="repro.hw.injector",
        source=source,
        tree=ast.parse(source, filename=str(FIXTURE)),
    )
    return {info.module: info}


def step_vs_fused_rule():
    return FastpathEffectContractRule(
        contracts=[contract_by_name("injector-step-vs-fused")]
    )


def test_prefix_snapshot_reproduces_the_watermark_bug():
    # Bug 1: the fused loop noted `min(count, depth)` where the
    # per-step transient reaches depth + 1.  FLOW302 flags the
    # signature against the contract's canonical form.
    findings = step_vs_fused_rule().check_project(prefix_modules())
    flow302 = [f for f in findings if f.rule_id == "FLOW302"]
    assert len(flow302) == 1
    assert "fifo.note_occupancy" in flow302[0].message
    assert "min(count, depth)" in flow302[0].message
    assert "min(count, depth + 1)" in flow302[0].message


def test_prefix_snapshot_reproduces_the_rewrite_position_bug():
    # Bug 2: scalar _apply_corruption records burst-relative rewrite
    # positions; the fused corrupt tail did not — the provenance/CRC
    # layer silently saw no rewrites on the fast path.  FLOW301 flags
    # the uncovered scalar effect.
    findings = step_vs_fused_rule().check_project(prefix_modules())
    flow301 = [f for f in findings if f.rule_id == "FLOW301"]
    assert [
        f for f in flow301 if "last_burst_rewrites.append" in f.message
    ], [f.message for f in findings]


def test_prefix_snapshot_reports_nothing_else():
    # Precision check: the two planted divergences are the ONLY
    # findings — the rest of the vendored pair still conforms, so the
    # analysis is not trading recall for noise.
    findings = step_vs_fused_rule().check_project(prefix_modules())
    assert sorted(f.rule_id for f in findings) == ["FLOW301", "FLOW302"]


def test_shipped_tree_satisfies_all_contracts():
    # The same rule, over the real source, with every declared
    # contract: zero findings.  This is the committed-baseline story —
    # lint-baseline.json is empty because the shipped code conforms.
    modules = {}
    for path in sorted((SRC / "repro").rglob("*.py")):
        info = parse_module(path, SRC)
        modules[info.module] = info
    findings = FastpathEffectContractRule().check_project(modules)
    assert findings == [], [f.format() for f in findings]
