"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.timebase import NS, US


def test_clock_starts_at_zero(sim):
    assert sim.now == 0
    assert sim.pending == 0
    assert sim.events_fired == 0


def test_schedule_and_run_advances_clock(sim):
    fired = []
    sim.schedule(100, lambda: fired.append(sim.now))
    sim.schedule(50, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [50, 100]
    assert sim.now == 100
    assert sim.events_fired == 2


def test_same_time_events_fire_in_schedule_order(sim):
    order = []
    for index in range(10):
        sim.schedule(42, lambda i=index: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_cancel_prevents_firing(sim):
    fired = []
    event = sim.schedule(10, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_fired == 0


def test_cancel_is_idempotent(sim):
    event = sim.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_run_until_stops_at_deadline(sim):
    fired = []
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(30, lambda: fired.append(30))
    count = sim.run_until(20)
    assert count == 1
    assert fired == [10]
    assert sim.now == 20
    sim.run()
    assert fired == [10, 30]


def test_run_until_deadline_in_past_rejected(sim):
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run_until(5)


def test_run_for_advances_relative(sim):
    sim.run_for(500)
    assert sim.now == 500
    sim.run_for(500)
    assert sim.now == 1000


def test_run_max_events(sim):
    for delay in (1, 2, 3, 4):
        sim.schedule(delay, lambda: None)
    assert sim.run(max_events=2) == 2
    assert sim.pending == 2


def test_events_scheduled_during_run_fire(sim):
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(5, lambda: fired.append("inner"))

    sim.schedule(10, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 15


def test_zero_delay_event_fires_after_current(sim):
    fired = []

    def outer():
        sim.schedule(0, lambda: fired.append("zero"))
        fired.append("outer")

    sim.schedule(1, outer)
    sim.run()
    assert fired == ["outer", "zero"]


def test_next_event_time(sim):
    assert sim.next_event_time() is None
    event = sim.schedule(99, lambda: None)
    assert sim.next_event_time() == 99
    event.cancel()
    assert sim.next_event_time() is None


def test_periodic_task_fires_until_stopped(sim):
    ticks = []
    task = sim.every(10, lambda: ticks.append(sim.now))
    sim.run_until(55)
    assert ticks == [10, 20, 30, 40, 50]
    task.stop()
    sim.run_until(100)
    assert len(ticks) == 5
    assert task.stopped
    assert task.fire_count == 5


def test_periodic_task_custom_start_delay(sim):
    ticks = []
    sim.every(10, lambda: ticks.append(sim.now), start_delay=3)
    sim.run_until(25)
    assert ticks == [3, 13, 23]


def test_periodic_task_stop_from_within_callback(sim):
    ticks = []
    task = sim.every(10, lambda: (ticks.append(sim.now),
                                  task.stop() if len(ticks) >= 2 else None))
    sim.run_until(100)
    assert ticks == [10, 20]


def test_periodic_task_requires_positive_period(sim):
    with pytest.raises(SimulationError):
        sim.every(0, lambda: None)


def test_many_events_deterministic_order(sim):
    """The same schedule always replays identically."""
    import random

    def build(seed):
        local = Simulator()
        r = random.Random(seed)
        order = []
        for index in range(500):
            local.schedule(r.randint(0, 100) * NS,
                           lambda i=index: order.append(i))
        local.run()
        return order

    assert build(7) == build(7)
