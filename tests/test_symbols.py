"""Unit tests for Myrinet symbols and control-symbol decoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.myrinet.symbols import (
    GAP,
    GAP_VALUE,
    GO,
    GO_VALUE,
    IDLE,
    IDLE_VALUE,
    STOP,
    STOP_VALUE,
    Symbol,
    control_symbol,
    data_symbol,
    data_symbols,
    decode_control,
    hamming_distance,
    is_control,
    is_data,
    min_control_distance,
    symbol_bytes,
)


def test_paper_encodings():
    """Paper §4.3.1: STOP=0x0F, GO=0x03, GAP=0x0C."""
    assert STOP.value == 0x0F
    assert GO.value == 0x03
    assert GAP.value == 0x0C


def test_control_symbols_have_dc_bit_clear():
    for symbol in (STOP, GO, GAP, IDLE):
        assert is_control(symbol)
        assert not symbol.is_data


def test_data_symbols_interned():
    assert data_symbol(0x42) is data_symbol(0x42)
    assert data_symbol(0x42).is_data


def test_control_symbols_interned():
    assert control_symbol(STOP_VALUE) is STOP


def test_data_and_control_same_value_differ():
    assert data_symbol(STOP_VALUE) != STOP
    assert hash(data_symbol(STOP_VALUE)) != hash(STOP)


def test_symbol_immutable():
    with pytest.raises(AttributeError):
        STOP.value = 1  # type: ignore[misc]


def test_symbol_value_range():
    with pytest.raises(ValueError):
        Symbol(True, 256)
    with pytest.raises(ValueError):
        Symbol(False, -1)


def test_repr_and_name():
    assert repr(STOP) == "C(STOP)"
    assert STOP.name == "STOP"
    assert repr(data_symbol(0x18)) == "D(0x18)"
    assert control_symbol(0x55).name == "0x55"


def test_symbol_bytes_extracts_data_only():
    stream = [data_symbol(1), GAP, data_symbol(2), STOP, data_symbol(3)]
    assert symbol_bytes(stream) == bytes([1, 2, 3])


def test_data_symbols_builder():
    stream = data_symbols(b"\x01\x02")
    assert [s.value for s in stream] == [1, 2]
    assert all(s.is_data for s in stream)


def test_min_control_distance_at_least_two():
    """Paper: Hamming distance of at least two between control symbols."""
    assert min_control_distance() >= 2


def test_hamming_distance():
    assert hamming_distance(0x0F, 0x03) == 2
    assert hamming_distance(0xFF, 0x00) == 8
    assert hamming_distance(0x55, 0x55) == 0


class TestDecodeControl:
    def test_exact_values_decode(self):
        assert decode_control(STOP_VALUE) is STOP
        assert decode_control(GO_VALUE) is GO
        assert decode_control(GAP_VALUE) is GAP
        assert decode_control(IDLE_VALUE) is IDLE

    def test_paper_example_0x02_decodes_as_go(self):
        """Paper §4.3.1: "0x02 will be interpreted as GO"."""
        assert decode_control(0x02) is GO

    def test_0x08_decodes_as_gap_documenting_paper_erratum(self):
        """The paper says 0x08 reads as STOP, but 0x08 is a single 1->0
        fault of GAP (0x0C) and three flips from STOP (0x0F); the
        principled single-fault rule decodes it as GAP (see DESIGN.md)."""
        assert hamming_distance(0x08, GAP_VALUE) == 1
        assert hamming_distance(0x08, STOP_VALUE) == 3
        assert decode_control(0x08) is GAP

    def test_single_one_to_zero_faults_recoverable(self):
        for parent in (STOP_VALUE, GO_VALUE, GAP_VALUE):
            for bit in range(8):
                if not parent & (1 << bit):
                    continue
                faulted = parent & ~(1 << bit)
                decoded = decode_control(faulted)
                # Either recovered to the parent or ambiguous (None) —
                # never mis-decoded to a *different* parent that cannot
                # produce this value by a single 1->0 fault.
                if decoded is not None and decoded.value != parent:
                    assert hamming_distance(decoded.value, faulted) == 1
                    assert (decoded.value & faulted) == faulted

    def test_garbage_is_undecodable(self):
        assert decode_control(0xFF) is None
        assert decode_control(0xA5) is None

    @given(st.integers(min_value=0, max_value=255))
    def test_decode_never_raises(self, value):
        result = decode_control(value)
        assert result is None or is_control(result)
