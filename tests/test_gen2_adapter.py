"""Tests for the second-generation device (paper footnote 1)."""

import pytest

from repro.core import (
    FibreChannelAdapter,
    MyrinetAdapter,
    SecondGenerationDevice,
)
from repro.core.faults import replace_bytes
from repro.errors import ConfigurationError
from repro.fc import FcFrame, FcFrameHeader, FcPort
from repro.fc.node import connect_fc
from repro.hw.registers import MatchMode
from repro.myrinet.network import build_paper_testbed
from repro.sim.timebase import MS


class TestGen2OnMyrinet:
    def _build(self, sim):
        device = SecondGenerationDevice(sim, MyrinetAdapter())
        network = build_paper_testbed(sim, device=device)
        network.settle()
        return device, network

    def test_transparent_passthrough(self, sim):
        device, network = self._build(sim)
        pc = network.host("pc").interface
        sparc1 = network.host("sparc1").interface
        received = []
        sparc1.set_data_handler(lambda s, p: received.append(p))
        pc.send_to(sparc1.mac, b"gen2 myrinet")
        sim.run_for(2 * MS)
        assert received == [b"gen2 myrinet"]
        assert device.bursts_forwarded > 0

    def test_injection_with_fixup(self, sim):
        device, network = self._build(sim)
        device.configure("R", replace_bytes(b"abcd", b"ABCD",
                                            match_mode=MatchMode.ONCE,
                                            crc_fixup=True))
        pc = network.host("pc").interface
        sparc1 = network.host("sparc1").interface
        received = []
        sparc1.set_data_handler(lambda s, p: received.append(p))
        pc.send_to(sparc1.mac, b"...abcd...")
        sim.run_for(2 * MS)
        assert received == [b"...ABCD..."]

    def test_injection_without_fixup_caught(self, sim):
        device, network = self._build(sim)
        device.configure("R", replace_bytes(b"abcd", b"ABCD",
                                            match_mode=MatchMode.ONCE))
        pc = network.host("pc").interface
        sparc1 = network.host("sparc1").interface
        pc.send_to(sparc1.mac, b"...abcd...")
        sim.run_for(2 * MS)
        assert sparc1.crc_errors == 1


class TestGen2OnFibreChannel:
    def _build(self, sim):
        adapter = FibreChannelAdapter()
        device = SecondGenerationDevice(sim, adapter, char_period_ps=9_412)
        a = FcPort(sim, "a", 1)
        b = FcPort(sim, "b", 2)
        connect_fc(sim, a, b, tap=device)
        return device, adapter, a, b

    def test_transparent_passthrough(self, sim):
        device, adapter, a, b = self._build(sim)
        got = []
        b.on_frame(lambda f: got.append(f.payload))
        header = FcFrameHeader(d_id=2, s_id=1)
        for seq in range(5):
            a.send_frame(FcFrame(header=header, payload=b"fc via gen2"))
        sim.run_for(2 * MS)
        assert got == [b"fc via gen2"] * 5
        assert b.crc_errors == 0

    def test_injection_with_crc32_fixup(self, sim):
        device, adapter, a, b = self._build(sim)
        got = []
        b.on_frame(lambda f: got.append(f.payload))
        device.configure("R", replace_bytes(b"via", b"VIA",
                                            match_mode=MatchMode.ONCE,
                                            crc_fixup=True))
        a.send_frame(FcFrame(header=FcFrameHeader(d_id=2, s_id=1),
                             payload=b"fc via gen2"))
        sim.run_for(2 * MS)
        assert got == [b"fc VIA gen2"]
        assert adapter.frames_crc_fixed == 1

    def test_same_injector_core_class(self, sim):
        """The injector entity is literally the same class on both
        media — the adapter is the only medium-specific piece."""
        my_device = SecondGenerationDevice(sim, MyrinetAdapter())
        fc_device = SecondGenerationDevice(sim, FibreChannelAdapter())
        assert type(my_device.injector("R")) is type(fc_device.injector("R"))


class TestGen2Guards:
    def test_unknown_direction(self, sim):
        device = SecondGenerationDevice(sim, MyrinetAdapter())
        with pytest.raises(ConfigurationError):
            device.injector("X")

    def test_double_attach(self, sim):
        from repro.myrinet.link import Link
        device = SecondGenerationDevice(sim, MyrinetAdapter())
        device.attach_left(Link(sim, "l"), "a")
        with pytest.raises(ConfigurationError):
            device.attach_left(Link(sim, "l2"), "a")

    def test_reset(self, sim):
        device = SecondGenerationDevice(sim, MyrinetAdapter())
        device.configure("R", replace_bytes(b"x", b"y",
                                            match_mode=MatchMode.ON))
        device.device_reset()
        assert not device.injector("R").armed
