"""Unit tests for the CRC fix-up stage, statistics, and monitoring."""

from repro.core.crcfix import CrcFixupStage
from repro.core.monitor import InjectionMonitor, MonitorConfig
from repro.core.stats import StatisticsGatherer
from repro.hw.injector import InjectionEvent
from repro.hw.sdram import SdramBuffer
from repro.myrinet.addresses import MacAddress
from repro.myrinet.crc8 import crc8
from repro.myrinet.packet import MyrinetPacket, PACKET_TYPE_DATA
from repro.myrinet.symbols import GAP, GO, STOP, data_symbols, symbol_bytes


def frame_symbols(raw: bytes):
    burst = data_symbols(raw)
    burst.append(GAP)
    return burst


def make_packet(payload=b"payload", dst=0x0B, src=0x0A):
    return MyrinetPacket(
        route=[], packet_type=PACKET_TYPE_DATA,
        payload=MacAddress(dst).to_bytes() + MacAddress(src).to_bytes()
        + payload,
    )


class TestCrcFixupStage:
    def test_clean_frame_passes_byte_identical(self):
        stage = CrcFixupStage()
        burst = frame_symbols(make_packet().to_bytes())
        out = stage.feed(list(burst), enabled=True)
        assert out == burst
        assert stage.frames_passed == 1
        assert stage.frames_fixed == 0

    def test_dirty_frame_gets_recomputed_crc(self):
        stage = CrcFixupStage()
        raw = bytearray(make_packet().to_bytes())
        raw[6] ^= 0xFF  # corrupted mid-frame, CRC now stale
        out = stage.feed(frame_symbols(bytes(raw)), enabled=True, dirty=True)
        fixed = symbol_bytes(out)
        assert crc8(fixed) == 0  # CRC recomputed over the corrupted body
        assert fixed[6] == raw[6]
        assert stage.frames_fixed == 1

    def test_disabled_stage_does_not_launder_corruption(self):
        stage = CrcFixupStage()
        raw = bytearray(make_packet().to_bytes())
        raw[6] ^= 0xFF
        out = stage.feed(frame_symbols(bytes(raw)), enabled=False)
        assert crc8(symbol_bytes(out)) != 0

    def test_upstream_corruption_not_fixed_when_frame_clean_of_injections(self):
        """Only frames the injector actually touched are repaired."""
        stage = CrcFixupStage()
        raw = bytearray(make_packet().to_bytes())
        raw[6] ^= 0xFF  # upstream corruption, no injection event
        out = stage.feed(frame_symbols(bytes(raw)), enabled=True, dirty=False)
        assert crc8(symbol_bytes(out)) != 0

    def test_control_symbols_pass_through(self):
        stage = CrcFixupStage()
        raw = make_packet().to_bytes()
        burst = data_symbols(raw[:3]) + [STOP] + data_symbols(raw[3:]) + [GO, GAP]
        out = stage.feed(burst, enabled=True)
        assert STOP in out and GO in out
        assert symbol_bytes(out) == raw

    def test_frame_spanning_bursts(self):
        stage = CrcFixupStage()
        raw = bytearray(make_packet().to_bytes())
        raw[6] ^= 0x10
        symbols = frame_symbols(bytes(raw))
        out = []
        out.extend(stage.feed(symbols[:5], enabled=True, dirty=True))
        out.extend(stage.feed(symbols[5:], enabled=True))
        assert crc8(symbol_bytes(out)) == 0

    def test_flush_releases_held_symbol(self):
        stage = CrcFixupStage()
        stage.feed(data_symbols(b"ab"), enabled=True)
        held = stage.flush()
        assert symbol_bytes(held) == b"b"
        assert stage.idle

    def test_two_frames_second_clean(self):
        stage = CrcFixupStage()
        dirty_raw = bytearray(make_packet(b"one").to_bytes())
        dirty_raw[6] ^= 0x01
        clean_raw = make_packet(b"two").to_bytes()
        burst = frame_symbols(bytes(dirty_raw)) + frame_symbols(clean_raw)
        out = stage.feed(burst, enabled=True, dirty=True)
        data = symbol_bytes(out)
        first, second = data[:len(dirty_raw)], data[len(dirty_raw):]
        assert crc8(first) == 0      # fixed
        assert second == clean_raw   # untouched


class TestStatisticsGatherer:
    def test_counts_symbols_and_controls(self):
        gatherer = StatisticsGatherer()
        gatherer.feed([STOP, GO, GAP] + data_symbols(b"abc"))
        stats = gatherer.stats
        assert stats.symbols == 6
        assert stats.data_symbols == 3
        assert stats.control_symbols["STOP"] == 1
        assert stats.control_symbols["GO"] == 1

    def test_per_pair_packet_counters(self):
        """Paper §3.2: counters incremented for each packet seen with
        given source/destination identifiers."""
        gatherer = StatisticsGatherer()
        for _repeat in range(3):
            gatherer.feed(frame_symbols(make_packet().to_bytes()))
        gatherer.feed(frame_symbols(make_packet(dst=0x0C).to_bytes()))
        stats = gatherer.stats
        assert stats.frames == 4
        assert stats.pair_count(MacAddress(0x0A), MacAddress(0x0B)) == 3
        assert stats.pair_count(MacAddress(0x0A), MacAddress(0x0C)) == 1

    def test_route_prefix_skipped(self):
        gatherer = StatisticsGatherer()
        packet = MyrinetPacket.for_route(
            [3], PACKET_TYPE_DATA,
            MacAddress(2).to_bytes() + MacAddress(1).to_bytes() + b"x",
        )
        gatherer.feed(frame_symbols(packet.to_bytes()))
        assert gatherer.stats.pair_count(MacAddress(1), MacAddress(2)) == 1

    def test_bad_crc_counted(self):
        gatherer = StatisticsGatherer()
        raw = bytearray(make_packet().to_bytes())
        raw[-1] ^= 0xFF
        gatherer.feed(frame_symbols(bytes(raw)))
        assert gatherer.stats.crc_bad_frames == 1

    def test_packet_type_histogram(self):
        gatherer = StatisticsGatherer()
        gatherer.feed(frame_symbols(make_packet().to_bytes()))
        mapping = MyrinetPacket(route=[], packet_type=0x0005, payload=b"s")
        gatherer.feed(frame_symbols(mapping.to_bytes()))
        assert gatherer.stats.packet_types[0x0004] == 1
        assert gatherer.stats.packet_types[0x0005] == 1

    def test_reset(self):
        gatherer = StatisticsGatherer()
        gatherer.feed(frame_symbols(make_packet().to_bytes()))
        gatherer.reset()
        assert gatherer.stats.frames == 0


def _event():
    return InjectionEvent(
        segment_index=10, window_before=0x11223344, ctl_before=0xF,
        window_after=0x11FF3344, ctl_after=0xF, lanes_rewritten=1,
        lanes_unreachable=0, forced=False,
    )


class TestCaptureRecord:
    def test_control_symbol_only_window(self):
        """A window of pure control symbols has an SDRAM footprint but
        no data bytes — data_bytes() must not misread control values
        (GAP is 0x0C, a perfectly plausible data byte) as payload."""
        from repro.core.monitor import CaptureRecord

        record = CaptureRecord(
            time_ps=500, direction="R", event=_event(),
            before=[GAP, STOP, GO], after=[GO, STOP],
        )
        assert record.data_bytes() == b""
        # 2 bytes per 9-bit symbol + 16 bytes of header.
        assert record.size_bytes == 2 * 5 + 16

    def test_empty_window_still_has_header_footprint(self):
        from repro.core.monitor import CaptureRecord

        record = CaptureRecord(time_ps=0, direction="L", event=_event())
        assert record.size_bytes == 16
        assert record.data_bytes() == b""

    def test_mixed_window_extracts_only_data_bytes(self):
        from repro.core.monitor import CaptureRecord

        before = [GAP] + data_symbols(b"ab")
        after = data_symbols(b"cd") + [STOP]
        record = CaptureRecord(
            time_ps=0, direction="R", event=_event(),
            before=before, after=after,
        )
        assert record.data_bytes() == b"abcd"
        assert record.size_bytes == 2 * 6 + 16


class TestInjectionMonitor:
    def test_capture_surrounds_injection(self):
        """Paper §3.2: the FPGA keeps the bytes surrounding the fault
        injection event."""
        sdram = SdramBuffer()
        monitor = InjectionMonitor(
            "R", sdram, MonitorConfig(enabled=True, pre_symbols=4,
                                      post_symbols=4),
        )
        monitor.observe(data_symbols(b"beforebytes"))
        monitor.on_injection(1000, _event())
        monitor.observe(data_symbols(b"afterwards"))
        captures = monitor.captures()
        assert len(captures) == 1
        record = captures[0]
        assert symbol_bytes(record.before) == b"ytes"   # last 4 pre
        assert symbol_bytes(record.after) == b"afte"    # first 4 post
        assert record.time_ps == 1000
        assert record.event.lanes_rewritten == 1

    def test_disabled_monitor_captures_nothing(self):
        monitor = InjectionMonitor("R", SdramBuffer())
        monitor.observe(data_symbols(b"data"))
        monitor.on_injection(0, _event())
        monitor.observe(data_symbols(b"more"))
        monitor.flush()
        assert monitor.captures() == []

    def test_flush_closes_partial_captures(self):
        sdram = SdramBuffer()
        monitor = InjectionMonitor(
            "R", sdram, MonitorConfig(enabled=True, pre_symbols=2,
                                      post_symbols=100),
        )
        monitor.on_injection(0, _event())
        monitor.observe(data_symbols(b"xy"))
        monitor.flush()
        captures = monitor.captures()
        assert len(captures) == 1
        assert symbol_bytes(captures[0].after) == b"xy"

    def test_overlapping_captures(self):
        sdram = SdramBuffer()
        monitor = InjectionMonitor(
            "R", sdram, MonitorConfig(enabled=True, pre_symbols=2,
                                      post_symbols=3),
        )
        monitor.on_injection(0, _event())
        monitor.observe(data_symbols(b"a"))
        monitor.on_injection(1, _event())
        monitor.observe(data_symbols(b"bcde"))
        captures = monitor.captures()
        assert len(captures) == 2
        assert symbol_bytes(captures[0].after) == b"abc"
        assert symbol_bytes(captures[1].after) == b"bcd"

    def test_records_share_sdram_capacity(self):
        sdram = SdramBuffer(capacity_bytes=64)
        monitor = InjectionMonitor(
            "R", sdram, MonitorConfig(enabled=True, pre_symbols=8,
                                      post_symbols=8),
        )
        for index in range(10):
            monitor.on_injection(index, _event())
            monitor.observe(data_symbols(b"12345678"))
        monitor.flush()
        assert sdram.records_dropped_capacity > 0
        assert len(monitor.captures()) < 10
