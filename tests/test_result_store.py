"""The fabric's sqlite result store: winner dedup and aggregation.

The store is the fabric's shared record of truth, so its contract is
tested independently of any executor:

* one row per ``(spec_digest, index, attempt)``, **first completed
  attempt wins** — arbitrary interleavings of inserts, duplicate
  deliveries, and lease re-issues keep exactly one winning attempt per
  experiment (hypothesis-driven, plus seeded rounds through the local
  ``tests/strategies.py`` property core);
* the incrementally maintained ``aggregates`` table equals a
  from-scratch fold over the winner rows after every interleaving;
* a fresh ``begin`` clears prior rows of the same digest, a resume
  keeps them;
* a torn/corrupt database file is quarantined at open, never trusted;
* a future schema version refuses to open rather than guess.
"""

import random
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CampaignError, ConfigurationError
from repro.nftape.results import ExperimentResult
from repro.runtime.spec import CampaignSpec, ExperimentSpec
from repro.runtime.store import (
    AGGREGATE_FIELDS,
    STORE_SCHEMA_VERSION,
    ResultStore,
    spec_digest,
)
from repro.sim.timebase import MS
from tests.strategies import run_property


def small_spec(n=4, name="store campaign", base_seed=3):
    """A spec the store can register; never actually executed here."""
    return CampaignSpec.build(
        name,
        [ExperimentSpec(name=f"run-{index}", duration_ps=1 * MS)
         for index in range(n)],
        base_seed=base_seed,
    )


def fake_result(index, attempt=0, salt=0):
    """A distinct, cheap result for ``(index, attempt)`` — no sim run."""
    return ExperimentResult(
        name=f"run-{index}",
        duration_ps=1 * MS,
        messages_sent=10 + index + salt,
        messages_received=8 + attempt,
        injections=index % 3,
        checksum_drops=attempt,
    )


@pytest.fixture()
def store():
    with ResultStore(":memory:") as instance:
        yield instance


# ----------------------------------------------------------------------
# identity: the spec digest
# ----------------------------------------------------------------------

class TestSpecDigest:
    def test_digest_is_stable_and_semantic(self):
        assert spec_digest(small_spec()) == spec_digest(small_spec())

    def test_digest_distinguishes_specs(self):
        assert spec_digest(small_spec(base_seed=3)) \
            != spec_digest(small_spec(base_seed=4))
        assert spec_digest(small_spec(n=4)) != spec_digest(small_spec(n=5))

    def test_digest_is_short_hex(self):
        digest = spec_digest(small_spec())
        assert len(digest) == 32
        int(digest, 16)  # pure hex


# ----------------------------------------------------------------------
# lifecycle: begin / record / query
# ----------------------------------------------------------------------

class TestLifecycle:
    def test_first_attempt_wins(self, store):
        digest = store.begin(small_spec())
        assert store.record(digest, 0, "run-0", 7, fake_result(0)) is True
        assert store.record(digest, 0, "run-0", 7,
                            fake_result(0, attempt=1), attempt=1) is False
        assert store.attempts(digest, 0) == [
            {"attempt": 0, "winner": True},
            {"attempt": 1, "winner": False},
        ]

    def test_out_of_order_attempt_can_win(self, store):
        """A re-issued attempt that finishes first is the winner — the
        store cares who *completed* first, not who was issued first."""
        digest = store.begin(small_spec())
        assert store.record(digest, 2, "run-2", 7, fake_result(2, 1),
                            attempt=1) is True
        assert store.record(digest, 2, "run-2", 7, fake_result(2)) is False
        assert store.attempts(digest, 2) == [
            {"attempt": 0, "winner": False},
            {"attempt": 1, "winner": True},
        ]

    def test_duplicate_delivery_is_idempotent(self, store):
        """The same (index, attempt) landing twice changes nothing."""
        digest = store.begin(small_spec())
        store.record(digest, 1, "run-1", 9, fake_result(1))
        before = store.aggregate(digest)
        assert store.record(digest, 1, "run-1", 9,
                            fake_result(1, salt=5)) is False
        assert store.aggregate(digest) == before
        assert store.completed(digest)[1].messages_sent \
            == fake_result(1).messages_sent

    def test_completed_round_trips_results(self, store):
        digest = store.begin(small_spec())
        original = fake_result(3)
        store.record(digest, 3, "run-3", 11, original)
        assert store.completed(digest) == {3: original}
        assert store.completed_indices(digest) == {3}

    def test_fresh_begin_clears_resume_keeps(self, store):
        spec = small_spec()
        digest = store.begin(spec)
        store.record(digest, 0, "run-0", 7, fake_result(0))
        assert store.begin(spec, resume=True) == digest
        assert store.completed_indices(digest) == {0}
        store.begin(spec)  # from scratch: old rows must not leak in
        assert store.completed_indices(digest) == set()
        assert store.aggregate(digest)["experiments_done"] == 0

    def test_export_rows_are_index_ordered_and_json_safe(self, store):
        import json

        digest = store.begin(small_spec())
        for index in (2, 0, 1):
            store.record(digest, index, f"run-{index}", index,
                         fake_result(index))
        rows = list(store.export_rows(digest))
        assert [row["index"] for row in rows] == [0, 1, 2]
        json.dumps(rows)  # wire-safe

    def test_campaign_progress_view(self, store):
        digest = store.begin(small_spec(n=2))
        store.record(digest, 0, "run-0", 7, fake_result(0))
        (row,) = store.campaigns()
        assert row["spec_digest"] == digest
        assert row["name"] == "store campaign"
        assert (row["experiments"], row["experiments_done"]) == (2, 1)


class TestResolve:
    def test_by_digest_prefix_and_exact_name(self, store):
        digest = store.begin(small_spec())
        assert store.resolve(digest[:8]) == digest
        assert store.resolve("store campaign") == digest
        assert store.resolve("no-such") is None

    def test_ambiguous_prefix_raises(self, store):
        store.begin(small_spec(name="campaign a"))
        store.begin(small_spec(name="campaign b"))
        with pytest.raises(CampaignError, match="ambiguous"):
            store.resolve("")


# ----------------------------------------------------------------------
# robustness: torn files and future schemas
# ----------------------------------------------------------------------

class TestRobustness:
    def test_corrupt_file_is_quarantined_not_trusted(self, tmp_path):
        path = tmp_path / "results.sqlite"
        path.write_bytes(b"SQLite format 3\x00" + b"\xde\xad" * 600)
        with ResultStore(path) as store:
            assert store.recovered is True
            digest = store.begin(small_spec())
            store.record(digest, 0, "run-0", 7, fake_result(0))
            assert store.completed_indices(digest) == {0}
        assert (tmp_path / "results.sqlite.corrupt-0").exists()

    def test_second_quarantine_gets_a_fresh_generation(self, tmp_path):
        path = tmp_path / "results.sqlite"
        for generation in range(2):
            path.write_bytes(b"garbage" * 100)
            ResultStore(path).close()
            assert (tmp_path
                    / f"results.sqlite.corrupt-{generation}").exists()

    def test_future_schema_version_refuses_to_open(self, tmp_path):
        path = tmp_path / "results.sqlite"
        ResultStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = ? WHERE key = ?",
                     (str(STORE_SCHEMA_VERSION + 1), "schema_version"))
        conn.commit()
        conn.close()
        with pytest.raises(ConfigurationError, match="schema"):
            ResultStore(path)

    def test_two_connections_share_one_store(self, tmp_path):
        """Coordinator + worker pattern: one writes, the other reads."""
        path = tmp_path / "results.sqlite"
        writer = ResultStore(path)
        reader = ResultStore(path)
        try:
            digest = writer.begin(small_spec())
            writer.record(digest, 0, "run-0", 7, fake_result(0))
            assert reader.completed_indices(digest) == {0}
        finally:
            writer.close()
            reader.close()


# ----------------------------------------------------------------------
# properties: one winner, aggregates equal a from-scratch fold
# ----------------------------------------------------------------------

interleavings = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),   # experiment index
              st.integers(min_value=0, max_value=2),   # attempt
              st.integers(min_value=0, max_value=9)),  # payload salt
    max_size=24,
)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(events=interleavings)
    def test_any_interleaving_keeps_one_winner_and_exact_aggregates(
            self, events):
        """Satellite invariant: arbitrary interleavings of insert /
        lease-expire / re-insert with the same ``(spec_digest, index)``
        keep exactly one winning attempt, and the incremental
        aggregation equals a from-scratch fold."""
        with ResultStore(":memory:") as store:
            digest = store.begin(small_spec())
            first_seen = {}
            for index, attempt, salt in events:
                won = store.record(
                    digest, index, f"run-{index}", index,
                    fake_result(index, attempt, salt), attempt=attempt)
                assert won == (index not in first_seen)
                first_seen.setdefault(index, (attempt, salt))
            for index, (attempt, salt) in first_seen.items():
                audit = store.attempts(digest, index)
                assert sum(entry["winner"] for entry in audit) == 1
                assert store.completed(digest)[index] \
                    == fake_result(index, attempt, salt)
            assert store.aggregate(digest) == store.fold_aggregate(digest)
            assert store.aggregate(digest)["experiments_done"] \
                == len(first_seen)

    def test_seeded_rounds_through_the_local_property_core(self):
        """The same invariant through ``strategies.run_property`` — a
        second, independently seeded generator exercising the store."""

        def prop(rng: random.Random) -> None:
            with ResultStore(":memory:") as store:
                digest = store.begin(small_spec(n=6))
                winners = {}
                for _ in range(rng.randrange(40)):
                    index = rng.randrange(6)
                    attempt = rng.randrange(4)
                    store.record(digest, index, f"run-{index}", index,
                                 fake_result(index, attempt),
                                 attempt=attempt)
                    winners.setdefault(index, attempt)
                assert store.aggregate(digest) \
                    == store.fold_aggregate(digest)
                for index, attempt in winners.items():
                    assert store.completed(digest)[index].checksum_drops \
                        == attempt

        run_property(prop, rounds=20, name="store_one_winner")

    def test_aggregate_fields_cover_the_scalar_counters(self):
        """Every scalar counter of ExperimentResult is aggregated —
        adding one to the dataclass must extend AGGREGATE_FIELDS."""
        result = fake_result(0)
        for field in AGGREGATE_FIELDS:
            assert isinstance(getattr(result, field), int), field
