"""Unit and property tests for the 8b/10b transmission code."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.fc.encoding import (
    Decoder8b10b,
    Encoder8b10b,
    decode_code_group,
    encode_byte,
)


class TestKnownVectors:
    def test_d0_0(self):
        assert encode_byte(0x00, False, -1)[0] == 0b1001110100
        assert encode_byte(0x00, False, +1)[0] == 0b0110001011

    def test_k28_5_both_disparities(self):
        assert encode_byte(0xBC, True, -1)[0] == 0b0011111010
        assert encode_byte(0xBC, True, +1)[0] == 0b1100000101

    def test_d21_5_is_balanced_and_identical(self):
        # D21.5 = 0xB5: classic alternating pattern 1010101010.
        code_neg, rd_neg = encode_byte(0xB5, False, -1)
        code_pos, rd_pos = encode_byte(0xB5, False, +1)
        assert code_neg == code_pos == 0b1010101010
        assert rd_neg == -1 and rd_pos == +1

    def test_k28_7_defined(self):
        code, _rd = encode_byte(0xFC, True, -1)
        assert code == 0b0011111000

    def test_undefined_k_character_rejected(self):
        with pytest.raises(EncodingError):
            encode_byte(0x00, True, -1)  # K.0.0 does not exist

    def test_invalid_disparity_rejected(self):
        with pytest.raises(EncodingError):
            encode_byte(0x00, False, 0)

    def test_invalid_code_group_rejected(self):
        with pytest.raises(EncodingError):
            decode_code_group(0b1111111111)


class TestCodeSpaceProperties:
    def test_every_data_byte_has_both_disparity_encodings(self):
        for value in range(256):
            for rd in (-1, 1):
                code, new_rd = encode_byte(value, False, rd)
                assert 0 <= code < 1024
                assert new_rd in (-1, 1)

    def test_all_code_groups_decode_uniquely(self):
        seen = {}
        for value in range(256):
            for rd in (-1, 1):
                code, _ = encode_byte(value, False, rd)
                key = (value, False)
                assert seen.setdefault(code, key) == key

    def test_character_disparity_bounded(self):
        """Every code group has disparity -2, 0, or +2."""
        for value in range(256):
            for rd in (-1, 1):
                code, _ = encode_byte(value, False, rd)
                ones = bin(code).count("1")
                assert ones in (4, 5, 6)


class TestStatefulCodec:
    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=0, max_size=300))
    def test_roundtrip(self, data):
        encoder = Encoder8b10b()
        decoder = Decoder8b10b()
        codes = encoder.encode_stream(data)
        decoded = bytes(decoder.decode(c)[0] for c in codes)
        assert decoded == data
        assert decoder.code_errors == 0
        assert decoder.disparity_errors == 0

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=1, max_size=200))
    def test_running_disparity_stays_bounded(self, data):
        encoder = Encoder8b10b()
        for byte in data:
            encoder.encode(byte)
            assert encoder.rd in (-1, 1)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=4, max_size=200))
    def test_run_length_never_exceeds_five(self, data):
        """The defining property of 8b/10b (needs the A7 alternates)."""
        encoder = Encoder8b10b()
        codes = encoder.encode_stream(data)
        bits = "".join(f"{c:010b}" for c in codes)
        longest = max(len(list(g)) for _k, g in itertools.groupby(bits))
        assert longest <= 5

    def test_mixed_k_and_d_stream(self):
        encoder = Encoder8b10b()
        decoder = Decoder8b10b()
        stream = [(0xBC, True), (0xB5, False), (0x4A, False), (0xBC, True)]
        codes = [encoder.encode(v, k) for v, k in stream]
        assert [decoder.decode(c) for c in codes] == stream

    def test_decoder_counts_invalid_groups(self):
        decoder = Decoder8b10b()
        assert decoder.decode(0b1111111111) is None
        assert decoder.code_errors == 1

    def test_decoder_flags_disparity_violation(self):
        decoder = Decoder8b10b()  # starts at RD-
        # D0.0's RD+ encoding arriving while the decoder expects RD-.
        code_pos, _ = encode_byte(0x00, False, +1)
        decoder.decode(code_pos)
        assert decoder.disparity_errors == 1

    def test_single_bit_error_detected_eventually(self):
        """Flipping one wire bit yields an invalid group or a disparity
        error within a few characters."""
        encoder = Encoder8b10b()
        data = bytes(range(40))
        codes = encoder.encode_stream(data)
        codes[10] ^= 1 << 4
        decoder = Decoder8b10b()
        for code in codes:
            decoder.decode(code)
        assert decoder.code_errors + decoder.disparity_errors >= 1
