"""The live campaign event bus: bounded fan-out that only observes.

Three layers of proof:

* **mechanics** — monotone per-campaign sequence numbers, bounded
  subscription rings that drop-and-count instead of blocking, history
  replay for late subscribers, session nesting;
* **emission** — serial and pooled executors publish the documented
  lifecycle kinds in the documented order, and the journal announces
  every flushed line;
* **observation-only** — with a bus installed (and a live subscriber
  attached) the kernel event-stream digest still matches the golden
  pre-telemetry digests, and a campaign's merged artifacts are
  byte-identical to a run with no bus at all.
"""

import json
import threading

import pytest

from repro.analysis.sanitize import run_probe
from repro.insight import analyze_artifacts
from repro.nftape.campaign import Campaign
from repro.runtime.events import (
    EVENT_KINDS,
    EVENTS,
    EventBus,
    EventBusSession,
    emit,
)
from repro.runtime.executors import PooledExecutor, SerialExecutor

from tests.test_runtime import tiny_spec
from tests.test_telemetry_determinism import DURATION_PS, GOLDEN_DIGESTS


@pytest.fixture(autouse=True)
def _clean_events_state():
    EVENTS.deactivate()
    yield
    EVENTS.deactivate()


# ----------------------------------------------------------------------
# bus mechanics
# ----------------------------------------------------------------------

class TestEventBus:
    def test_seq_is_monotone_per_campaign(self):
        bus = EventBus()
        assert [bus.publish("a", "heartbeat").seq for _ in range(3)] \
            == [0, 1, 2]
        assert bus.publish("b", "heartbeat").seq == 0
        assert bus.last_seq("a") == 3
        assert bus.campaigns() == ["a", "b"]

    def test_event_json_flattens_payload(self):
        event = EventBus().publish("c", "experiment_finished", index=2,
                                   name="run-2")
        doc = json.loads(event.to_json())
        assert doc == {"seq": 0, "campaign": "c",
                       "kind": "experiment_finished", "index": 2,
                       "name": "run-2"}

    def test_subscription_filters_by_campaign(self):
        bus = EventBus()
        with bus.subscribe(campaign="a") as sub:
            bus.publish("a", "heartbeat")
            bus.publish("b", "heartbeat")
            events = sub.drain()
        assert [e.campaign for e in events] == ["a"]

    def test_overflowing_subscription_drops_oldest_never_blocks(self):
        bus = EventBus()
        sub = bus.subscribe(depth=4)
        for index in range(10):
            bus.publish("c", "snapshot", index=index)
        # The publisher never blocked; the ring kept the newest 4.
        assert sub.dropped == 6
        assert [e.payload["index"] for e in sub.drain()] == [6, 7, 8, 9]
        assert bus.dropped == 6
        sub.close()

    def test_history_ring_eviction_is_counted(self):
        bus = EventBus(history=3)
        for index in range(5):
            bus.publish("c", "snapshot", index=index)
        assert [e.payload["index"] for e in bus.history("c")] == [2, 3, 4]
        assert bus.dropped == 2
        # Sequence numbers survive eviction — readers can see the gap.
        assert bus.history("c")[0].seq == 2

    def test_replay_delivers_history_to_late_subscriber(self):
        bus = EventBus()
        bus.publish("c", "campaign_started")
        bus.publish("c", "campaign_finished")
        with bus.subscribe(campaign="c", replay=True) as sub:
            kinds = [e.kind for e in sub.drain()]
        assert kinds == ["campaign_started", "campaign_finished"]

    def test_closed_subscription_receives_nothing(self):
        bus = EventBus()
        sub = bus.subscribe()
        sub.close()
        bus.publish("c", "heartbeat")
        assert sub.drain() == []
        assert sub.get(timeout=0) is None

    def test_get_wakes_on_publish_from_another_thread(self):
        bus = EventBus()
        sub = bus.subscribe()
        timer = threading.Timer(0.05, bus.publish, args=("c", "heartbeat"))
        timer.start()
        event = sub.get(timeout=5.0)
        assert event is not None and event.kind == "heartbeat"
        sub.close()

    def test_emit_without_bus_is_a_noop(self):
        assert not EVENTS.active
        assert emit("c", "heartbeat") is None

    def test_session_nesting_restores_previous_bus(self):
        outer, inner = EventBus(), EventBus()
        with EventBusSession(outer):
            with EventBusSession(inner):
                emit("c", "heartbeat")
            assert EVENTS.bus is outer
            emit("c", "heartbeat")
        assert not EVENTS.active
        assert inner.published == 1 and outer.published == 1


# ----------------------------------------------------------------------
# executor + journal emission
# ----------------------------------------------------------------------

class TestExecutorEmission:
    def test_serial_campaign_publishes_documented_lifecycle(self, tmp_path):
        spec = tiny_spec(n=2, name="events campaign")
        bus = EventBus()
        with EventBusSession(bus):
            Campaign.from_spec(spec).run(executor=SerialExecutor(
                journal_path=tmp_path / "journal.jsonl"))
        kinds = [e.kind for e in bus.history("events campaign")]
        assert kinds == [
            "campaign_started",
            "experiment_started", "journal_record",
            "experiment_finished", "snapshot",
            "experiment_started", "journal_record",
            "experiment_finished", "snapshot",
            "campaign_finished",
        ]
        assert set(kinds) <= set(EVENT_KINDS)
        # seq is gapless for an unevicted history.
        assert [e.seq for e in bus.history("events campaign")] \
            == list(range(len(kinds)))

    def test_snapshot_events_carry_counter_deltas_and_totals(self):
        spec = tiny_spec(n=2, name="delta campaign")
        bus = EventBus()
        with EventBusSession(bus):
            Campaign.from_spec(spec).run(executor=SerialExecutor())
        snapshots = [e for e in bus.history("delta campaign")
                     if e.kind == "snapshot"]
        assert len(snapshots) == 2
        first, second = (s.payload for s in snapshots)
        assert first["experiments_done"] == 1
        assert second["experiments_done"] == 2
        for field in ("messages_sent", "messages_received", "injections"):
            assert second["totals"][field] \
                == first["deltas"][field] + second["deltas"][field]

    def test_pooled_campaign_publishes_same_lifecycle_with_merge(
            self, tmp_path):
        spec = tiny_spec(n=3, name="pooled events")
        bus = EventBus()
        with EventBusSession(bus):
            Campaign.from_spec(spec).run(executor=PooledExecutor(
                workers=2, journal_path=tmp_path / "journal.jsonl",
                artifacts_dir=tmp_path / "artifacts"))
        kinds = [e.kind for e in bus.history("pooled events")]
        assert kinds[0] == "campaign_started"
        assert kinds[-1] == "campaign_finished"
        assert kinds.count("experiment_started") == 3
        assert kinds.count("experiment_finished") == 3
        assert "shard_merged" in kinds
        merged = next(e for e in bus.history("pooled events")
                      if e.kind == "shard_merged")
        assert merged.payload["telemetry_shards"] == 3

    def test_events_label_overrides_the_campaign_key(self):
        spec = tiny_spec(n=1, name="real name")
        bus = EventBus()
        with EventBusSession(bus):
            Campaign.from_spec(spec).run(
                executor=SerialExecutor(events_label="c0042"))
        assert bus.campaigns() == ["c0042"]

    def test_journal_line_is_readable_when_its_event_fires(self, tmp_path):
        """Reader-during-write: by the time ``journal_record`` is
        published, the journal already holds that record as a complete,
        parsable line (one write + flush per record)."""
        spec = tiny_spec(n=3, name="flush campaign")
        journal = tmp_path / "journal.jsonl"
        bus = EventBus()
        observed = []
        failures = []

        def _reader(sub):
            while True:
                event = sub.get(timeout=0.5)
                if event is None:
                    return
                if event.kind != "journal_record":
                    continue
                lines = journal.read_text().splitlines()
                entries = [json.loads(line) for line in lines]  # no torn
                done = {e["index"] for e in entries
                        if e.get("type") == "result"}
                if event.payload["index"] not in done:
                    failures.append(event.payload["index"])
                observed.append(event.payload["index"])

        sub = bus.subscribe(campaign="flush campaign")
        thread = threading.Thread(target=_reader, args=(sub,))
        with EventBusSession(bus):
            thread.start()
            Campaign.from_spec(spec).run(
                executor=SerialExecutor(journal_path=journal))
        sub.close()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert failures == []
        assert sorted(observed) == [0, 1, 2]


# ----------------------------------------------------------------------
# observation-only: golden digests + byte-identical artifacts
# ----------------------------------------------------------------------

class TestObservationOnly:
    def test_enabled_bus_reproduces_the_golden_digest(self):
        """An installed bus (with a live subscriber) does not perturb
        the kernel event stream: same pre-telemetry golden digest."""
        bus = EventBus()
        with EventBusSession(bus):
            with bus.subscribe():
                result = run_probe(seed=7, duration_ps=DURATION_PS)
        assert result.digest == GOLDEN_DIGESTS[7], (
            "an active event bus perturbed the simulation: "
            f"{result.summary()}"
        )

    def test_artifacts_identical_with_bus_off_on_and_subscribed(
            self, tmp_path):
        """Bus off / bus on / bus on + slow subscriber: byte-identical
        merged artifacts and insight digests."""
        def run(root, session):
            spec = tiny_spec(n=2, name="ab campaign")
            executor = SerialExecutor(
                journal_path=root / "journal.jsonl", artifacts_dir=root)
            if session is None:
                table = Campaign.from_spec(spec).run(executor=executor)
            else:
                with session:
                    table = Campaign.from_spec(spec).run(executor=executor)
            return table.render()

        off = run(tmp_path / "off", None)
        on = run(tmp_path / "on", EventBusSession())
        bus = EventBus()
        with bus.subscribe(depth=2):  # deliberately lossy subscriber
            subscribed = run(tmp_path / "sub", EventBusSession(bus))

        assert off == on == subscribed
        captures = [
            (tmp_path / name / "capture" / "capture.rcap").read_bytes()
            for name in ("off", "on", "sub")
        ]
        assert captures[0] == captures[1] == captures[2]
        digests = [analyze_artifacts(tmp_path / name).digest()
                   for name in ("off", "on", "sub")]
        assert digests[0] == digests[1] == digests[2]
