"""Unit tests for the Myrinet host interface."""

import pytest

from repro.errors import ConfigurationError
from repro.myrinet.addresses import MacAddress, McpAddress
from repro.myrinet.interface import HostInterface
from repro.myrinet.link import Link
from repro.myrinet.packet import (
    PACKET_TYPE_DATA,
    PACKET_TYPE_MAPPING,
    MyrinetPacket,
    route_byte,
)
from repro.myrinet.symbols import GAP, data_symbols

CHAR = 12_500


def make_pair(sim, **kwargs):
    """Two interfaces wired back to back (no switch)."""
    a = HostInterface(sim, "a", MacAddress(0x0A), McpAddress(1), **kwargs)
    b = HostInterface(sim, "b", MacAddress(0x0B), McpAddress(2), **kwargs)
    link = Link(sim, "ab", char_period_ps=CHAR, propagation_ps=0)
    a.attach_link(link, "a")
    b.attach_link(link, "b")
    a.routing_table[b.mac] = []
    b.routing_table[a.mac] = []
    return a, b


def test_send_to_delivers_payload(sim):
    a, b = make_pair(sim)
    received = []
    b.set_data_handler(lambda src, payload: received.append((src, payload)))
    assert a.send_to(b.mac, b"data") is True
    sim.run()
    assert received == [(a.mac, b"data")]
    assert a.packets_sent == 1
    assert b.packets_received == 1


def test_no_route_counted(sim):
    a, b = make_pair(sim)
    assert a.send_to(MacAddress(0xDEAD), b"x") is False
    assert a.no_route_drops == 1


def test_misaddressed_packet_dropped(sim):
    """Paper §4.3.3: "the node drops incoming packets that are
    misaddressed"."""
    a, b = make_pair(sim)
    received = []
    b.set_data_handler(lambda src, payload: received.append(payload))
    wrong = MacAddress(0xBEEF)
    packet = MyrinetPacket(
        route=[], packet_type=PACKET_TYPE_DATA,
        payload=wrong.to_bytes() + a.mac.to_bytes() + b"hi",
    )
    a.send_packet(packet)
    sim.run()
    assert received == []
    assert b.misaddressed_drops == 1


def test_broadcast_accepted(sim):
    a, b = make_pair(sim)
    received = []
    b.set_data_handler(lambda src, payload: received.append(payload))
    packet = MyrinetPacket(
        route=[], packet_type=PACKET_TYPE_DATA,
        payload=MacAddress.broadcast().to_bytes() + a.mac.to_bytes() + b"all",
    )
    a.send_packet(packet)
    sim.run()
    assert received == [b"all"]


def test_msb_route_byte_consumed_as_error(sim):
    """Paper §4.3.2: a leading byte with MSB=1 at the destination is
    consumed and handled as an error."""
    a, b = make_pair(sim)
    received = []
    b.set_data_handler(lambda src, payload: received.append(payload))
    packet = MyrinetPacket.for_route([5], PACKET_TYPE_DATA,
                                     b.mac.to_bytes() + a.mac.to_bytes())
    a.send_packet(packet)  # route byte not consumed: no switch in between
    sim.run()
    assert received == []
    assert b.consume_errors == 1


def test_crc_error_dropped_and_counted(sim):
    a, b = make_pair(sim)
    raw = bytearray(
        MyrinetPacket(
            route=[], packet_type=PACKET_TYPE_DATA,
            payload=b.mac.to_bytes() + a.mac.to_bytes() + b"zap",
        ).to_bytes()
    )
    raw[8] ^= 0x10
    burst = data_symbols(bytes(raw))
    burst.append(GAP)
    a._tx_channel.send(burst)
    sim.run()
    assert b.crc_errors == 1
    assert b.packets_received == 0


def test_unknown_packet_type_dropped(sim):
    """Paper §4.3.2: corrupted type -> dropped, structures unchanged."""
    a, b = make_pair(sim)
    table_before = dict(b.routing_table)
    packet = MyrinetPacket(route=[], packet_type=0x00F7, payload=b"????")
    a.send_packet(packet)
    sim.run()
    assert b.unknown_type_drops == 1
    assert b.routing_table == table_before


def test_mapping_packets_dispatch_to_handler(sim):
    a, b = make_pair(sim)
    scouts = []
    b.set_mapping_handler(scouts.append)
    a.send_mapping([], b"\x01scoutdata")
    sim.run()
    assert scouts == [b"\x01scoutdata"]


def test_tx_queue_limit(sim):
    a, b = make_pair(sim, tx_queue_depth=4)
    for _ in range(6):
        a.send_to(b.mac, b"x" * 4)
    assert a.tx_queue_rejects == 2
    assert a.tx_queue_length <= 4


def test_tx_long_timeout_drops_stale_packets(sim):
    """Paper §4.3.1: a sender blocked past the long-period timeout
    terminates the packet and consumes the remainder."""
    a, b = make_pair(sim, long_timeout_periods=1000)  # 12.5 us scaled
    a.flow.tx_state.hold()  # permanent backpressure
    a.send_to(b.mac, b"doomed")
    sim.run_for(3000 * CHAR)
    a.flow.tx_state.release()
    sim.run()
    assert a.tx_timeout_drops == 1
    assert b.packets_received == 0


def test_double_attach_rejected(sim):
    a, b = make_pair(sim)
    with pytest.raises(ConfigurationError):
        a.attach_link(Link(sim, "x"), "a")


def test_flow_property_requires_attachment(sim):
    interface = HostInterface(sim, "lone", MacAddress(1), McpAddress(1))
    with pytest.raises(ConfigurationError):
        _ = interface.flow
    assert not interface.attached


def test_stats_snapshot_keys(sim):
    a, b = make_pair(sim)
    stats = a.stats
    for key in ("packets_sent", "packets_received", "crc_errors",
                "consume_errors", "misaddressed_drops", "no_route_drops",
                "tx_timeout_drops", "oversize_frames"):
        assert key in stats


def test_truncated_data_packet_counted(sim):
    a, b = make_pair(sim)
    packet = MyrinetPacket(route=[], packet_type=PACKET_TYPE_DATA,
                           payload=b"short")  # < 12-byte address header
    a.send_packet(packet)
    sim.run()
    assert b.truncated_frames == 1
