"""The distributed campaign fabric: leases, store resume, events.

What docs/runtime.md promises for the fabric, pinned:

* **byte-identical at any worker count** — the same campaign run
  serially and on the fabric with 1, 2, and 4 workers renders the same
  table and merges the same artifacts;
* ``resume=True`` restarts from the sqlite store (not the journal):
  completed experiments are restored, the rest execute, the table is
  unchanged;
* the queue file is self-validating — a torn or truncated queue parses
  as *no work*, never as wrong work;
* :class:`EventBus` lifecycle is exactly-once per experiment even when
  a lease is forfeited and re-issued, and re-issue is its own event
  kind (``fabric_lease_reissued``), not a second ``experiment_started``;
* a retried/re-issued attempt never double-counts merged telemetry —
  the counters of a run whose attempt 0 crashed *after* writing its
  artifact shard equal a clean single-attempt run's.

Chaos-mode convergence (kill/hang/torn-store/duplicate/truncation) has
its own harness in ``tests/chaos/``.
"""

import json

import pytest

from repro.core.faults import control_symbol_swap
from repro.errors import CampaignError
from repro.hw.registers import MatchMode
from repro.myrinet.symbols import GAP, STOP
from repro.nftape.campaign import Campaign
from repro.runtime import (
    CampaignSpec,
    EventBus,
    EventBusSession,
    ExperimentSpec,
    FabricExecutor,
    PlanSpec,
    PooledExecutor,
    SerialExecutor,
)
from repro.runtime.artifacts import merged_metrics_path
from repro.runtime.events import EVENT_KINDS
from repro.runtime.fabric import read_queue, write_queue
from repro.runtime.store import ResultStore, spec_digest
from repro.runtime.worker import CRASH_AFTER_PARAM, HANG_PARAM, \
    HANG_UNTIL_PARAM
from repro.sim.timebase import MS
from tests.test_runtime import tiny_spec


def fabric_spec(n=4, name="fabric campaign", per_index_params=None):
    """Like ``tiny_spec`` but with *per-experiment* chaos params."""
    per_index_params = per_index_params or {}
    specs = []
    for index in range(n):
        plan = None
        if index % 2:
            plan = PlanSpec(
                "fault", "RL",
                control_symbol_swap(GAP, STOP, MatchMode.ON),
                use_serial=False,
            )
        specs.append(ExperimentSpec(
            name=f"run-{index}",
            duration_ps=1 * MS,
            plan=plan,
            params=dict(per_index_params.get(index, {})),
        ))
    return CampaignSpec.build(name, specs, base_seed=0)


def counter_series(metrics_path):
    """The deterministic (counter + histogram) slice of merged metrics —
    gauges carry wall-clock timings and are excluded by design."""
    document = json.loads(metrics_path.read_text())
    return sorted(
        (entry["name"], tuple(sorted(entry.get("labels", {}).items())),
         entry.get("value", entry.get("count")))
        for entry in document["metrics"]["series"]
        if entry.get("kind") in ("counter", "histogram")
    )


# ----------------------------------------------------------------------
# the queue file
# ----------------------------------------------------------------------

class TestQueueFile:
    def test_round_trip(self, tmp_path):
        spec = tiny_spec(n=3)
        digest = spec_digest(spec)
        write_queue(tmp_path, digest, spec)
        items = read_queue(tmp_path, digest)
        assert items == [
            (index, f"run-{index}", spec.seed_for(index))
            for index in range(3)
        ]

    def test_missing_and_empty_park_the_reader(self, tmp_path):
        assert read_queue(tmp_path) is None
        (tmp_path / "queue.jsonl").write_text("")
        assert read_queue(tmp_path) is None

    def test_truncation_parses_as_no_work(self, tmp_path):
        spec = tiny_spec(n=3)
        digest = spec_digest(spec)
        target = write_queue(tmp_path, digest, spec)
        whole = target.read_text()
        for cut in (len(whole) // 2, len(whole) - 3):
            target.write_text(whole[:cut])
            assert read_queue(tmp_path, digest) is None

    def test_digest_mismatch_is_not_work(self, tmp_path):
        spec = tiny_spec(n=2)
        write_queue(tmp_path, spec_digest(spec), spec)
        assert read_queue(tmp_path, "f" * 32) is None
        assert read_queue(tmp_path, spec_digest(spec)) is not None

    def test_rewrite_repairs_in_place(self, tmp_path):
        spec = tiny_spec(n=2)
        digest = spec_digest(spec)
        target = write_queue(tmp_path, digest, spec)
        target.write_text("junk\n")
        write_queue(tmp_path, digest, spec)
        assert read_queue(tmp_path, digest) is not None


# ----------------------------------------------------------------------
# worker-count identity and artifacts
# ----------------------------------------------------------------------

class TestWorkerCountIdentity:
    def test_fabric_matches_serial_at_1_2_and_4_workers(self):
        serial = Campaign.from_spec(tiny_spec()).run(
            executor=SerialExecutor())
        for workers in (1, 2, 4):
            executor = FabricExecutor(workers=workers, poll_s=0.01)
            table = Campaign.from_spec(tiny_spec()).run(executor=executor)
            assert table.render() == serial.render(), workers
            assert executor.executed == [0, 1, 2, 3]
            assert executor.reissues == {}

    def test_merged_artifacts_match_the_pooled_path(self, tmp_path):
        pooled_dir = tmp_path / "pooled"
        fabric_dir = tmp_path / "fabric"
        Campaign.from_spec(tiny_spec()).run(executor=PooledExecutor(
            workers=2, artifacts_dir=pooled_dir))
        executor = FabricExecutor(workers=2, poll_s=0.01,
                                  artifacts_dir=fabric_dir)
        Campaign.from_spec(tiny_spec()).run(executor=executor)
        assert executor.merge_summary["telemetry_shards"] == 4
        assert executor.merge_summary["capture_shards"] == 4
        assert not executor.merge_summary["missing_shards"]
        assert (fabric_dir / "capture" / "capture.rcap").read_bytes() \
            == (pooled_dir / "capture" / "capture.rcap").read_bytes()
        assert counter_series(merged_metrics_path(fabric_dir)) \
            == counter_series(merged_metrics_path(pooled_dir))

    def test_timings_report_the_merge_overlap(self, tmp_path):
        executor = FabricExecutor(workers=2, poll_s=0.01,
                                  artifacts_dir=tmp_path / "run")
        Campaign.from_spec(tiny_spec()).run(executor=executor)
        timings = executor.timings
        assert set(timings) == {"execute_wall_s", "merge_busy_s",
                                "merge_overlap_s"}
        assert timings["execute_wall_s"] > 0
        assert 0 <= timings["merge_overlap_s"] <= timings["merge_busy_s"]

    def test_store_is_queryable_after_the_run(self, tmp_path):
        executor = FabricExecutor(workers=2, poll_s=0.01,
                                  artifacts_dir=tmp_path / "run")
        Campaign.from_spec(tiny_spec()).run(executor=executor)
        with ResultStore(tmp_path / "run" / "results.sqlite") as store:
            digest = store.resolve("unit campaign")
            assert digest == spec_digest(tiny_spec())
            assert store.aggregate(digest)["experiments_done"] == 4
            assert store.aggregate(digest) == store.fold_aggregate(digest)

    def test_fabric_requires_a_declarative_campaign(self):
        with pytest.raises(CampaignError, match="declarative"):
            list(FabricExecutor().execute(object()))

    def test_fabric_resume_without_a_home_is_an_error(self):
        with pytest.raises(CampaignError, match="resume"):
            Campaign.from_spec(tiny_spec()).run(
                executor=FabricExecutor(resume=True))


# ----------------------------------------------------------------------
# resume from the store (not the journal)
# ----------------------------------------------------------------------

class TestStoreResume:
    def test_resume_restores_winners_and_runs_the_rest(self, tmp_path):
        spec = tiny_spec()
        serial = Campaign.from_spec(spec).run(executor=SerialExecutor())

        # Seed the store with the first half, as if a prior fabric run
        # was killed at 50%.
        home = tmp_path / "run"
        home.mkdir()
        with ResultStore(home / "results.sqlite") as store:
            digest = store.begin(spec)
            for index, result in enumerate(serial.results[:2]):
                store.record(digest, index, result.name,
                             spec.seed_for(index), result)

        executor = FabricExecutor(workers=2, poll_s=0.01, resume=True,
                                  artifacts_dir=home)
        table = Campaign.from_spec(spec).run(executor=executor)
        assert executor.skipped == [0, 1]
        assert executor.executed == [2, 3]
        assert table.render() == serial.render()

    def test_resume_with_everything_done_executes_nothing(self, tmp_path):
        home = tmp_path / "run"
        first = FabricExecutor(workers=2, poll_s=0.01, artifacts_dir=home)
        baseline = Campaign.from_spec(tiny_spec()).run(executor=first)
        second = FabricExecutor(workers=2, poll_s=0.01, resume=True,
                                artifacts_dir=home)
        table = Campaign.from_spec(tiny_spec()).run(executor=second)
        assert second.skipped == [0, 1, 2, 3]
        assert second.executed == []
        assert table.render() == baseline.render()


# ----------------------------------------------------------------------
# events: exactly-once lifecycle under lease re-issue (satellite)
# ----------------------------------------------------------------------

def lease_reissue_run(tmp_path, bus):
    """One fabric run where experiment 1's first attempt hangs past the
    lease deadline, forcing a forfeit + re-issue."""
    spec = fabric_spec(per_index_params={
        1: {HANG_PARAM: 30.0, HANG_UNTIL_PARAM: 1},
    })
    executor = FabricExecutor(
        workers=2, poll_s=0.01, lease_timeout_s=0.4,
        artifacts_dir=tmp_path / "run", events_label="reissue campaign",
    )
    with EventBusSession(bus):
        table = Campaign.from_spec(spec).run(executor=executor)
    return executor, table


class TestEventsUnderReissue:
    def test_fabric_lease_reissued_is_a_documented_kind(self):
        assert "fabric_lease_reissued" in EVENT_KINDS

    def test_lifecycle_is_exactly_once_per_index(self, tmp_path):
        bus = EventBus()
        executor, table = lease_reissue_run(tmp_path, bus)
        assert executor.reissues.get(1, 0) >= 1

        events = bus.history("reissue campaign")
        started = [e.payload["index"] for e in events
                   if e.kind == "experiment_started"]
        finished = [e.payload["index"] for e in events
                    if e.kind == "experiment_finished"]
        assert sorted(started) == [0, 1, 2, 3]
        assert sorted(finished) == [0, 1, 2, 3]

        clean = Campaign.from_spec(fabric_spec()).run(
            executor=SerialExecutor())
        assert table.render() == clean.render()

    def test_reissue_event_carries_the_audit_payload(self, tmp_path):
        bus = EventBus()
        executor, _ = lease_reissue_run(tmp_path, bus)
        reissued = [e for e in bus.history("reissue campaign")
                    if e.kind == "fabric_lease_reissued"]
        assert len(reissued) == executor.reissues[1] >= 1
        event = reissued[0]
        assert event.payload["index"] == 1
        assert event.payload["name"] == "run-1"
        assert event.payload["next_attempt"] \
            == event.payload["attempt"] + 1
        assert "expired" in event.payload["reason"] \
            or "died" in event.payload["reason"]

    def test_campaign_finished_reports_the_reissue_count(self, tmp_path):
        bus = EventBus()
        executor, _ = lease_reissue_run(tmp_path, bus)
        (finished,) = [e for e in bus.history("reissue campaign")
                       if e.kind == "campaign_finished"]
        assert finished.payload["reissued"] \
            == sum(executor.reissues.values()) >= 1


# ----------------------------------------------------------------------
# no double-counted telemetry on retried attempts (satellite fix+pin)
# ----------------------------------------------------------------------

class TestNoDoubleCount:
    """Attempt 0 crashes *after* promoting its artifact shard; attempt 1
    re-runs and must lose the promotion race — merged telemetry counters
    equal a clean single-attempt run's, for both executors."""

    def test_pooled_retry_does_not_double_count(self, tmp_path):
        clean_dir = tmp_path / "clean"
        Campaign.from_spec(tiny_spec()).run(executor=PooledExecutor(
            workers=2, artifacts_dir=clean_dir))

        crashed_dir = tmp_path / "crashed"
        executor = PooledExecutor(workers=2, max_retries=1,
                                  artifacts_dir=crashed_dir)
        Campaign.from_spec(
            tiny_spec(extra_params={CRASH_AFTER_PARAM: 1})
        ).run(executor=executor)
        assert sum(executor.retries.values()) >= 1
        assert counter_series(merged_metrics_path(crashed_dir)) \
            == counter_series(merged_metrics_path(clean_dir))

    def test_fabric_reissue_does_not_double_count(self, tmp_path):
        clean_dir = tmp_path / "clean"
        Campaign.from_spec(fabric_spec()).run(executor=FabricExecutor(
            workers=2, poll_s=0.01, artifacts_dir=clean_dir))

        crashed_dir = tmp_path / "crashed"
        executor = FabricExecutor(workers=2, poll_s=0.01,
                                  lease_timeout_s=30.0,
                                  artifacts_dir=crashed_dir)
        table = Campaign.from_spec(fabric_spec(per_index_params={
            2: {CRASH_AFTER_PARAM: 1},
        })).run(executor=executor)
        assert executor.reissues.get(2, 0) == 1
        assert counter_series(merged_metrics_path(crashed_dir)) \
            == counter_series(merged_metrics_path(clean_dir))
        clean = Campaign.from_spec(fabric_spec()).run(
            executor=SerialExecutor())
        assert table.render() == clean.render()
