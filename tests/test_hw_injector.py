"""Unit and property tests for the FIFO injector entity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.injector import DEFAULT_PIPELINE_DEPTH, FifoInjector
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.core.faults import replace_bytes, toggle_bits
from repro.myrinet.symbols import (
    GAP,
    STOP,
    Symbol,
    control_symbol,
    data_symbol,
    data_symbols,
    symbol_bytes,
)


def run_stream(injector, symbols):
    """Push a stream through step() and return the full output."""
    out = []
    for symbol in symbols:
        result = injector.step(symbol)
        if result is not None:
            out.append(result)
    out.extend(injector.fifo.drain())
    return out


class TestPipelineBasics:
    def test_transparent_when_disarmed(self):
        injector = FifoInjector()
        stream = data_symbols(b"network traffic goes through untouched")
        assert run_stream(injector, stream) == stream

    def test_pipeline_delay_in_symbols(self):
        injector = FifoInjector(pipeline_depth=8)
        outputs = [injector.step(data_symbol(i)) for i in range(10)]
        assert outputs[:8] == [None] * 8          # pipeline filling
        assert outputs[8].value == 0               # first symbol emerges
        assert outputs[9].value == 1

    def test_minimum_depth_enforced(self):
        with pytest.raises(ValueError):
            FifoInjector(pipeline_depth=3)

    def test_two_cycles_per_symbol(self):
        injector = FifoInjector()
        run_stream(injector, data_symbols(b"12345"))
        assert injector.clock.cycles == 10
        assert injector.symbols_processed == 5


class TestMatchAndCorrupt:
    def test_replace_scenario_from_paper(self):
        """Paper §3.3's typical scenario: match 0x1818, replace 0x1918."""
        injector = FifoInjector()
        injector.configure(replace_bytes(b"\x18\x18", b"\x19\x18",
                                         match_mode=MatchMode.ON))
        stream = data_symbols(b"\x00\x01\x18\x18\x02\x03")
        out = run_stream(injector, stream)
        assert symbol_bytes(out) == b"\x00\x01\x19\x18\x02\x03"
        assert injector.injections == 1

    def test_toggle_mode_xors_bits(self):
        injector = FifoInjector()
        injector.configure(toggle_bits(b"\xaa", b"\x0f",
                                       match_mode=MatchMode.ON))
        out = run_stream(injector, data_symbols(b"\xaa\xbb"))
        assert symbol_bytes(out) == b"\xa5\xbb"

    def test_once_mode_fires_exactly_once(self):
        """Paper §3.3: once mode triggers on the first match and ignores
        all subsequent matches."""
        injector = FifoInjector()
        injector.configure(replace_bytes(b"\x42", b"\x43",
                                         match_mode=MatchMode.ONCE))
        out = run_stream(injector, data_symbols(b"\x42\x00\x42\x00\x42"))
        assert symbol_bytes(out) == b"\x43\x00\x42\x00\x42"
        assert injector.injections == 1
        assert not injector.armed

    def test_rearming_once_mode(self):
        injector = FifoInjector()
        injector.configure(replace_bytes(b"\x42", b"\x43",
                                         match_mode=MatchMode.ONCE))
        run_stream(injector, data_symbols(b"\x42"))
        injector.set_match_mode(MatchMode.ONCE)  # NFTAPE re-arms
        out = run_stream(injector, data_symbols(b"\x42"))
        assert symbol_bytes(out) == b"\x43"
        assert injector.injections == 2

    def test_off_mode_never_fires(self):
        injector = FifoInjector()
        config = replace_bytes(b"\x42", b"\x43", match_mode=MatchMode.ONCE)
        injector.configure(config.copy(match_mode=MatchMode.OFF))
        out = run_stream(injector, data_symbols(b"\x42\x42"))
        assert symbol_bytes(out) == b"\x42\x42"
        assert injector.injections == 0

    def test_on_mode_fires_every_match(self):
        injector = FifoInjector()
        injector.configure(replace_bytes(b"\x42", b"\x43",
                                         match_mode=MatchMode.ON))
        out = run_stream(injector, data_symbols(b"\x42\x00\x42\x00\x42"))
        assert symbol_bytes(out) == b"\x43\x00\x43\x00\x43"
        assert injector.injections == 3

    def test_inject_now_forces_on_next_even_cycle(self):
        """Paper §3.3: inject now exercises the configuration on one
        32-bit segment during the next even clock cycle."""
        injector = FifoInjector()
        injector.configure(InjectorConfig(
            match_mode=MatchMode.OFF,
            corrupt_mode=CorruptMode.REPLACE,
            corrupt_data=0xFF, corrupt_mask=0xFF,
        ))
        injector.step(data_symbol(0x01))
        injector.inject_now()
        injector.step(data_symbol(0x02))  # corruption lands here (lane 0)
        out = injector.fifo.drain()
        assert [s.value for s in out] == [0x01, 0xFF]
        assert injector.forced_injections == 1

    def test_control_symbol_swap(self):
        from repro.core.faults import control_symbol_swap
        from repro.myrinet.symbols import GO
        injector = FifoInjector()
        injector.configure(control_symbol_swap(STOP, GO, MatchMode.ON))
        stream = [data_symbol(1), STOP, data_symbol(STOP.value), STOP]
        out = run_stream(injector, stream)
        assert out[0] == data_symbol(1)
        assert out[1] == GO                      # control STOP corrupted
        assert out[2] == data_symbol(STOP.value)  # data byte untouched
        assert out[3] == GO

    def test_corruption_can_flip_dc_bit(self):
        """A data symbol can be turned into a control symbol."""
        injector = FifoInjector()
        injector.configure(InjectorConfig(
            match_mode=MatchMode.ON,
            compare_data=0x5A, compare_mask=0xFF,
            compare_ctl=0x1, compare_ctl_mask=0x1,
            corrupt_mode=CorruptMode.REPLACE,
            corrupt_data=GAP.value, corrupt_mask=0xFF,
            corrupt_ctl=0x0, corrupt_ctl_mask=0x1,
        ))
        out = run_stream(injector, data_symbols(b"\x5a"))
        assert out == [GAP]

    def test_events_recorded(self):
        injector = FifoInjector()
        injector.configure(replace_bytes(b"\x01", b"\x02",
                                         match_mode=MatchMode.ON))
        run_stream(injector, data_symbols(b"\x00\x01\x00"))
        assert len(injector.events) == 1
        event = injector.events[0]
        assert event.changed
        assert event.lanes_rewritten == 1
        assert not event.forced

    def test_injection_callback(self):
        injector = FifoInjector()
        seen = []
        injector.on_injection(seen.append)
        injector.configure(replace_bytes(b"\x01", b"\x02",
                                         match_mode=MatchMode.ON))
        run_stream(injector, data_symbols(b"\x01"))
        assert len(seen) == 1

    def test_reset_clears_everything(self):
        injector = FifoInjector()
        injector.configure(replace_bytes(b"\x01", b"\x02",
                                         match_mode=MatchMode.ON))
        injector.step(data_symbol(0x01))
        injector.reset()
        assert injector.fifo.empty
        assert not injector.armed
        assert injector.config.match_mode is MatchMode.OFF


class TestProcessBurst:
    def test_fast_path_when_disarmed(self):
        injector = FifoInjector()
        burst = data_symbols(b"fast path burst")
        out = injector.process_burst(burst)
        assert out == burst
        assert injector.clock.cycles == 0  # fast path skips the pipeline

    def test_burst_matches_step_output_when_armed(self):
        injector = FifoInjector()
        injector.configure(replace_bytes(b"abc", b"xyz",
                                         match_mode=MatchMode.ON))
        burst = data_symbols(b"...abc...abc.")
        out = injector.process_burst(burst)
        assert symbol_bytes(out) == b"...xyz...xyz."

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.binary(min_size=0, max_size=120),
        pattern=st.binary(min_size=1, max_size=4),
        replacement_seed=st.integers(min_value=0, max_value=255),
        mode=st.sampled_from([MatchMode.ON, MatchMode.ONCE]),
        corrupt_mode=st.sampled_from([CorruptMode.REPLACE,
                                      CorruptMode.TOGGLE]),
    )
    def test_fused_equals_cycle_accurate(self, data, pattern,
                                         replacement_seed, mode,
                                         corrupt_mode):
        """The fused burst path must be symbol-for-symbol identical to
        the explicit two-phase step path."""
        replacement = bytes((b ^ replacement_seed) & 0xFF for b in pattern)
        if corrupt_mode is CorruptMode.REPLACE:
            config = replace_bytes(pattern, replacement, match_mode=mode)
        else:
            config = toggle_bits(pattern, replacement, match_mode=mode)
        stream = data_symbols(data)

        stepped = FifoInjector()
        stepped.configure(config)
        expected = run_stream(stepped, stream)

        fused = FifoInjector()
        fused.configure(config)
        actual = fused.process_burst(stream)

        assert actual == expected
        assert fused.injections == stepped.injections
        assert fused.compare.matches == stepped.compare.matches
        assert fused.symbols_processed == stepped.symbols_processed

    @settings(max_examples=30, deadline=None)
    @given(data=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=255)),
        max_size=80,
    ))
    def test_fused_equals_step_with_control_symbols(self, data):
        from repro.core.faults import control_symbol_swap
        from repro.myrinet.symbols import GO
        stream = [
            data_symbol(v) if is_data else control_symbol(v)
            for is_data, v in data
        ]
        config = control_symbol_swap(STOP, GO, MatchMode.ON)

        stepped = FifoInjector()
        stepped.configure(config)
        expected = run_stream(stepped, stream)

        fused = FifoInjector()
        fused.configure(config)
        actual = fused.process_burst(stream)
        assert actual == expected
        assert fused.injections == stepped.injections

    def test_stream_preserved_modulo_corruption(self):
        """Everything not matched passes byte-identically."""
        injector = FifoInjector()
        injector.configure(replace_bytes(b"\xde\xad", b"\xbe\xef",
                                         match_mode=MatchMode.ON))
        data = bytes(range(256))
        out = injector.process_burst(data_symbols(data))
        assert len(out) == len(data)
        mismatches = [
            i for i, (a, b) in enumerate(zip(symbol_bytes(out), data))
            if a != b
        ]
        # 0xDE 0xAD appears once in range(256)... it does not; no match.
        assert mismatches == []
