"""SARIF exporter, baseline ratchet, and lint CLI integration tests.

The exporter must be deterministic and code-scanning-shaped; the
baseline must implement the ratchet semantics (new fails, matched
warns, stale reported, multiset counting, line-shift stability); the
``lint`` subcommand must wire both together with the documented exit
codes.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.engine import Finding
from repro.analysis.flow.baseline import (
    apply_baseline,
    baseline_key,
    find_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.sarif import dump_sarif, to_sarif

SRC = str(Path(__file__).parent.parent / "src")


def finding(rule="FLOW101", path="/x/src/repro/core/stats.py", line=10,
            col=4, message="wall-clock read time.time() (line 3) flows "
                           "into a digest input"):
    return Finding(path=path, line=line, col=col, rule_id=rule,
                   message=message)


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------

def test_sarif_shape_and_determinism(tmp_path):
    findings = [
        finding(rule="FLOW105", line=7, col=0, message="set order"),
        finding(rule="FLOW101", line=3, col=2, message="wall clock"),
    ]
    titles = {"FLOW101": "no wall clock", "FLOW105": "no set order"}
    log = to_sarif(findings, rule_titles=titles)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert ids == sorted(ids)
    # Results sorted by location; ruleIndex consistent with the table.
    results = run["results"]
    assert [r["ruleId"] for r in results] == ["FLOW101", "FLOW105"]
    for result in results:
        assert ids[result["ruleIndex"]] == result["ruleId"]
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 3, "startColumn": 3}  # col+1
    # Same input -> byte-identical dump.
    out1, out2 = tmp_path / "a.sarif", tmp_path / "b.sarif"
    dump_sarif(findings, out1, rule_titles=titles)
    dump_sarif(list(reversed(findings)), out2, rule_titles=titles)
    assert out1.read_bytes() == out2.read_bytes()


def test_sarif_relativises_paths_under_base_dir(tmp_path):
    inside = tmp_path / "src" / "repro" / "m.py"
    log = to_sarif(
        [finding(path=str(inside)), finding(path="/elsewhere/n.py")],
        base_dir=tmp_path,
    )
    uris = [
        r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        for r in log["runs"][0]["results"]
    ]
    assert "src/repro/m.py" in uris
    assert "/elsewhere/n.py" in uris  # outside base_dir stays absolute


# ----------------------------------------------------------------------
# Baseline keys and ratchet semantics
# ----------------------------------------------------------------------

def test_baseline_key_is_line_free():
    # Same finding shifted 40 lines down (both location and the line
    # reference inside the message) keys identically.
    a = finding(line=10, message="time.time() (line 3) flows into x")
    b = finding(line=50, message="time.time() (line 43) flows into x")
    assert baseline_key(a) == baseline_key(b)
    # But a different file or rule is a different key.
    assert baseline_key(a) != baseline_key(
        finding(path="/x/src/repro/core/other.py"))
    assert baseline_key(a) != baseline_key(finding(rule="FLOW102"))


def test_baseline_path_normalised_to_repro_tail():
    a = finding(path="/home/ci/checkout/src/repro/core/stats.py")
    b = finding(path="/tmp/elsewhere/src/repro/core/stats.py")
    assert baseline_key(a) == baseline_key(b)


def test_baseline_roundtrip_and_delta(tmp_path):
    baseline_file = tmp_path / "lint-baseline.json"
    accepted = [finding(), finding(rule="FLOW105", message="set order")]
    write_baseline(baseline_file, accepted)
    entries = load_baseline(baseline_file)
    assert len(entries) == 2

    # Same findings again: all matched, nothing new, nothing stale.
    delta = apply_baseline(accepted, entries)
    assert delta.clean
    assert len(delta.matched) == 2 and not delta.new and not delta.stale

    # One fixed, one new: the fixed one is stale, the new one fails.
    current = [accepted[0], finding(rule="FLOW103", message="id() leak")]
    delta = apply_baseline(current, entries)
    assert not delta.clean
    assert [f.rule_id for f in delta.new] == ["FLOW103"]
    assert [key[0] for key in delta.stale] == ["FLOW105"]


def test_baseline_duplicate_keys_are_multiset_counted():
    one = [finding()]
    two = [finding(line=10), finding(line=90)]
    entries = [baseline_key(f) for f in one]
    delta = apply_baseline(two, entries)
    # The second identical finding is NEW — the baseline accepted one.
    assert len(delta.matched) == 1 and len(delta.new) == 1


def test_find_baseline_walks_up(tmp_path):
    nested = tmp_path / "src" / "repro" / "core"
    nested.mkdir(parents=True)
    assert find_baseline(nested) is None
    expected = tmp_path / "lint-baseline.json"
    write_baseline(expected, [])
    assert find_baseline(nested) == expected


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

def run_lint_cli(*args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *args],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


def write_violation_tree(tmp_path: Path) -> Path:
    root = tmp_path / "repro"
    root.mkdir(parents=True, exist_ok=True)
    (root / "bad.py").write_text(textwrap.dedent("""\
        import time

        def stamp(derive_seed):
            return derive_seed(time.time())
        """), encoding="utf-8")
    return root


def test_cli_flow_baseline_ratchet(tmp_path):
    root = write_violation_tree(tmp_path)

    # No baseline: the FLOW101 finding fails the run.
    result = run_lint_cli("--flow", "--baseline", "none", str(root),
                          cwd=tmp_path)
    assert result.returncode == 1
    assert "FLOW101" in result.stdout

    # Accept it into a baseline; the gate then passes with a warning.
    accepted = run_lint_cli("--flow", "--write-baseline", str(root),
                            cwd=tmp_path)
    assert accepted.returncode == 0
    baseline = tmp_path / "lint-baseline.json"
    assert baseline.is_file()
    gated = run_lint_cli("--flow", "--baseline", str(baseline), str(root),
                         cwd=tmp_path)
    assert gated.returncode == 0
    assert "warning (baseline)" in gated.stderr
    # Two baselined findings: the wall-clock read trips both SIM001
    # (call site) and FLOW101 (it reaches the derive_seed sink).
    assert "0 new finding(s), 2 baseline, 0 stale" in gated.stderr

    # A second, different violation is new: the gate fails again.
    (root / "worse.py").write_text(textwrap.dedent("""\
        import os

        def emit(writer):
            writer.write_event({"token": os.urandom(8)})
        """), encoding="utf-8")
    regressed = run_lint_cli("--flow", "--baseline", str(baseline),
                             str(root), cwd=tmp_path)
    assert regressed.returncode == 1
    assert "FLOW102" in regressed.stdout


def test_cli_sarif_out_writes_report(tmp_path):
    root = write_violation_tree(tmp_path)
    out = tmp_path / "lint.sarif"
    result = run_lint_cli(
        "--flow", "--baseline", "none", "--sarif-out", str(out),
        str(root), cwd=tmp_path,
    )
    assert result.returncode == 1
    log = json.loads(out.read_text(encoding="utf-8"))
    assert log["version"] == "2.1.0"
    assert any(
        r["ruleId"] == "FLOW101" for r in log["runs"][0]["results"]
    )


def test_cli_format_sarif_stdout(tmp_path):
    root = write_violation_tree(tmp_path)
    result = run_lint_cli(
        "--flow", "--baseline", "none", "--format", "sarif", str(root),
        cwd=tmp_path,
    )
    log = json.loads(result.stdout)
    assert log["runs"][0]["tool"]["driver"]["name"] == "simlint"


def test_cli_list_rules_includes_flow_ids_only_with_flag(tmp_path):
    plain = run_lint_cli("--list-rules", cwd=tmp_path)
    flow = run_lint_cli("--list-rules", "--flow", cwd=tmp_path)
    assert "FLOW101" not in plain.stdout
    assert "FLOW101" in flow.stdout and "FLOW304" in flow.stdout
