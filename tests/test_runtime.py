"""The sharded campaign engine: specs, seeding, executors, journal.

The contract under test is the one docs/runtime.md promises:

* campaigns are **data** (frozen, picklable specs) materialized inside
  whichever process runs them;
* per-experiment seeds derive from the base seed by a pure rule, so
  results are **bit-identical at any worker count**;
* the journal makes ``--resume`` skip completed experiments without
  changing the merged table;
* crashed workers are retried with the same seed; hung workers are
  killed by the wall-clock timeout.
"""

import json
import pickle

import pytest

from repro.errors import CampaignError, ConfigurationError
from repro.hw.registers import MatchMode
from repro.core.faults import control_symbol_swap
from repro.myrinet.symbols import GAP, STOP
from repro.nftape.campaign import Campaign
from repro.nftape.experiment import Experiment, TestbedOptions
from repro.runtime import (
    CampaignJournal,
    CampaignSpec,
    ExperimentSpec,
    PlanSpec,
    PooledExecutor,
    SerialExecutor,
    derive_seed,
)
from repro.runtime.seeding import SEED_MASK
from repro.runtime.worker import CRASH_PARAM, HANG_PARAM
from repro.sim.timebase import MS


def tiny_spec(n=4, base_seed=0, name="unit campaign", extra_params=None):
    """A small, fast campaign: alternating fault and no-fault runs."""
    specs = []
    for index in range(n):
        plan = None
        if index % 2:
            plan = PlanSpec(
                "fault", "RL",
                control_symbol_swap(GAP, STOP, MatchMode.ON),
                use_serial=False,
            )
        specs.append(ExperimentSpec(
            name=f"run-{index}",
            duration_ps=1 * MS,
            plan=plan,
            params=dict(extra_params or {}),
        ))
    return CampaignSpec.build(name, specs, base_seed=base_seed)


# ----------------------------------------------------------------------
# seeding
# ----------------------------------------------------------------------

class TestSeeding:
    def test_deterministic_and_sensitive_to_all_inputs(self):
        assert derive_seed(0, 1, "x") == derive_seed(0, 1, "x")
        assert derive_seed(0, 1, "x") != derive_seed(1, 1, "x")
        assert derive_seed(0, 1, "x") != derive_seed(0, 2, "x")
        assert derive_seed(0, 1, "x") != derive_seed(0, 1, "y")

    def test_stays_within_63_bits(self):
        for index in range(64):
            seed = derive_seed(12345, index, f"run-{index}")
            assert 0 <= seed <= SEED_MASK

    def test_duplicate_names_still_get_distinct_seeds(self):
        """The index participates, so repeated pair names differ."""
        assert derive_seed(0, 0, "GAP->STOP") != derive_seed(0, 8, "GAP->STOP")


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------

class TestSpecs:
    def test_plan_spec_validates_kind(self):
        config = control_symbol_swap(GAP, STOP, MatchMode.ON)
        with pytest.raises(ConfigurationError):
            PlanSpec("nope", "RL", config)

    def test_plan_spec_validates_direction(self):
        config = control_symbol_swap(GAP, STOP, MatchMode.ON)
        with pytest.raises(ConfigurationError):
            PlanSpec("fault", "Q", config)

    def test_campaign_spec_pickles_and_round_trips(self):
        spec = tiny_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.seed_for(2) == spec.seed_for(2)

    def test_materialize_owns_private_copies(self):
        """A worker mutating its test bed options can never leak state
        back into the shared spec."""
        options = TestbedOptions(host_kwargs={"rx_drain_factor": 2.0})
        spec = ExperimentSpec("iso", duration_ps=1 * MS, testbed=options)
        live = spec.materialize(seed=7)
        live.testbed_options.host_kwargs["rx_drain_factor"] = 99.0
        assert options.host_kwargs["rx_drain_factor"] == 2.0
        assert live.testbed_options.seed == 7

    def test_with_experiments_is_immutable_append(self):
        spec = tiny_spec(n=2)
        extended = spec.with_experiments(
            ExperimentSpec("extra", duration_ps=1 * MS)
        )
        assert len(spec) == 2
        assert len(extended) == 3
        assert extended.experiments[:2] == spec.experiments

    def test_declarative_campaign_rejects_add(self):
        campaign = Campaign.from_spec(tiny_spec(n=1))
        with pytest.raises(CampaignError, match="immutable"):
            campaign.add(Experiment("x", duration_ps=1 * MS))

    def test_pooled_executor_rejects_live_campaigns(self):
        campaign = Campaign("live").add(Experiment("x", duration_ps=1 * MS))
        with pytest.raises(CampaignError, match="declarative"):
            campaign.run(executor=PooledExecutor(workers=2))


# ----------------------------------------------------------------------
# determinism under parallelism — the engine's core guarantee
# ----------------------------------------------------------------------

class TestParallelDeterminism:
    def test_workers_1_vs_4_byte_identical(self, tmp_path):
        """Same spec, same table bytes, same merged counters — whether
        run in-process or sharded across four worker processes."""
        spec = tiny_spec(n=8)

        serial_exec = SerialExecutor(artifacts_dir=tmp_path / "serial")
        serial = Campaign.from_spec(spec).run(executor=serial_exec)

        pooled_exec = PooledExecutor(
            workers=4, artifacts_dir=tmp_path / "pooled"
        )
        pooled = Campaign.from_spec(spec).run(executor=pooled_exec)

        assert serial.render() == pooled.render()
        assert serial.rows == pooled.rows
        assert sorted(serial_exec.executed) == list(range(8))
        assert sorted(pooled_exec.executed) == list(range(8))

        # Merged telemetry: identical modulo wall-clock series.
        def deterministic_series(root):
            doc = json.loads(
                (root / "telemetry" / "metrics.json").read_text()
            )
            return {
                (s["name"], json.dumps(s["labels"], sort_keys=True)): s
                for s in doc["metrics"]["series"]
                if "wall" not in s["name"] and "per_s" not in s["name"]
            }

        assert deterministic_series(tmp_path / "serial") == \
            deterministic_series(tmp_path / "pooled")

        # Both executors describe the campaign in spec.json, byte-equal
        # (the insight engine reads it to name faults and directions).
        serial_doc = (tmp_path / "serial" / "spec.json").read_text()
        pooled_doc = (tmp_path / "pooled" / "spec.json").read_text()
        assert serial_doc == pooled_doc
        parsed = json.loads(serial_doc)
        assert parsed["name"] == spec.name
        assert len(parsed["experiments"]) == 8
        entry = parsed["experiments"][1]
        assert entry["seed"] == spec.seed_for(1)
        assert entry["plan"]["kind"] == "fault"
        assert entry["plan"]["direction"] == "RL"

        # Merged span rows are stamped with their campaign-global shard.
        spans_text = (
            tmp_path / "pooled" / "telemetry" / "spans.jsonl"
        ).read_text()
        shards = {
            json.loads(line).get("shard")
            for line in spans_text.splitlines()
        }
        assert shards == set(range(8))

    def test_results_survive_the_worker_boundary(self, tmp_path):
        """Counter maps and params come back from workers intact."""
        spec = tiny_spec(n=2, extra_params={"tag": "boundary"})
        pooled = Campaign.from_spec(spec)
        pooled.run(executor=PooledExecutor(workers=2))
        for result in pooled.results:
            assert result.params["tag"] == "boundary"
            assert result.host_stats  # per-host counters crossed over
            assert "testbed" not in result.extras  # live objects do not


# ----------------------------------------------------------------------
# journal + resume
# ----------------------------------------------------------------------

class TestJournalResume:
    def test_resume_skips_completed_experiments(self, tmp_path):
        spec = tiny_spec(n=4)
        journal = tmp_path / "journal.jsonl"

        full_exec = SerialExecutor(journal_path=journal)
        full = Campaign.from_spec(spec).run(executor=full_exec)
        assert sorted(full_exec.executed) == [0, 1, 2, 3]

        # Simulate an interruption: keep the header + two results.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:3]) + "\n")

        resumed_exec = PooledExecutor(
            workers=2, journal_path=journal, resume=True
        )
        resumed = Campaign.from_spec(spec).run(executor=resumed_exec)
        assert sorted(resumed_exec.skipped) == [0, 1]
        assert sorted(resumed_exec.executed) == [2, 3]
        assert resumed.render() == full.render()

    def test_resume_refuses_a_different_campaign(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        Campaign.from_spec(tiny_spec(n=1, base_seed=0)).run(
            executor=SerialExecutor(journal_path=journal)
        )
        other = tiny_spec(n=1, base_seed=99)
        with pytest.raises(CampaignError, match="different"):
            Campaign.from_spec(other).run(
                executor=SerialExecutor(journal_path=journal, resume=True)
            )

    def test_torn_final_line_is_ignored(self, tmp_path):
        spec = tiny_spec(n=2)
        journal = tmp_path / "journal.jsonl"
        Campaign.from_spec(spec).run(
            executor=SerialExecutor(journal_path=journal)
        )
        with journal.open("a") as stream:
            stream.write('{"type": "result", "index": 1, "resu')  # torn
        restored = CampaignJournal(journal).completed(spec)
        assert sorted(restored) == [0, 1]

    def test_reader_during_write_sees_only_whole_lines(self, tmp_path):
        """Journal writes are line-atomic and flushed per record: a
        reader polling the file *while the campaign runs* only ever
        parses complete JSON lines, and every line the writer reported
        done is already on disk (the live server's status endpoint and
        ``completed()`` polls rely on this)."""
        import json as jsonlib

        spec = tiny_spec(n=3)
        journal = tmp_path / "journal.jsonl"
        snapshots = []

        def probe_reader(message):
            # Runs as each experiment *starts*, i.e. concurrent with the
            # journal's lifetime and between its flushed appends: every
            # earlier experiment's record must already be on disk.
            if not journal.exists():
                return
            entries = [jsonlib.loads(line)  # raises on any torn line
                       for line in journal.read_text().splitlines()]
            snapshots.append(
                sorted(e["index"] for e in entries
                       if e.get("type") == "result")
            )

        Campaign.from_spec(spec, on_progress=probe_reader).run(
            executor=SerialExecutor(journal_path=journal)
        )
        # Each poll saw every record completed so far — nothing was
        # sitting unflushed in the writer's buffer.
        assert snapshots == [[], [0], [0, 1]]
        restored = CampaignJournal(journal).completed(spec)
        assert sorted(restored) == [0, 1, 2]

    def test_resume_without_journal_path_fails(self):
        with pytest.raises(CampaignError, match="journal"):
            Campaign.from_spec(tiny_spec(n=1)).run(
                executor=SerialExecutor(resume=True)
            )


# ----------------------------------------------------------------------
# robustness: crash retry and wall-clock timeout
# ----------------------------------------------------------------------

class TestRobustness:
    def test_crashed_worker_is_retried_with_same_seed(self):
        """A worker that dies abruptly is replaced (fresh process, same
        derived seed) and the campaign's output is unaffected."""
        clean = Campaign.from_spec(tiny_spec(n=2))
        clean_table = clean.run(executor=PooledExecutor(workers=2))

        crashing = Campaign.from_spec(
            tiny_spec(n=2, extra_params={CRASH_PARAM: 1})
        )
        crashing_exec = PooledExecutor(workers=2, max_retries=1)
        crashed_table = crashing.run(executor=crashing_exec)

        assert crashing_exec.retries == {0: 1, 1: 1}
        assert crashed_table.render() == clean_table.render()

    def test_crash_beyond_retry_budget_fails_the_campaign(self):
        campaign = Campaign.from_spec(
            tiny_spec(n=1, extra_params={CRASH_PARAM: 5})
        )
        executor = PooledExecutor(workers=1, max_retries=1)
        with pytest.raises(CampaignError, match="failed after"):
            campaign.run(executor=executor)

    def test_hung_worker_trips_the_timeout(self):
        campaign = Campaign.from_spec(
            tiny_spec(n=1, extra_params={HANG_PARAM: 30.0})
        )
        executor = PooledExecutor(
            workers=1, timeout_s=0.5, max_retries=0
        )
        with pytest.raises(CampaignError, match="timed out"):
            campaign.run(executor=executor)

    def test_deterministic_worker_exception_is_not_retried(self):
        """A ValueError inside the experiment is the campaign's bug, not
        the infrastructure's — fail immediately, report the traceback."""
        spec = CampaignSpec.build("bad", [
            ExperimentSpec("negative-duration", duration_ps=-5)
        ])
        executor = PooledExecutor(workers=1, max_retries=3)
        with pytest.raises(CampaignError) as error:
            Campaign.from_spec(spec).run(executor=executor)
        assert executor.retries == {}
        assert "negative-duration" in str(error.value)
