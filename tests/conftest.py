"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.sim import DeterministicRng, Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> DeterministicRng:
    """A deterministic random source with a fixed seed."""
    return DeterministicRng(1234)
