"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.sim import DeterministicRng, Simulator


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--pipeline",
        choices=("scalar", "fast"),
        default=None,
        help=(
            "run the whole suite with this default data-path pipeline "
            "(every Device built without an explicit pipeline= uses it; "
            "CI runs a '--pipeline fast' matrix leg — see docs/fastpath.md)"
        ),
    )


def pytest_configure(config: pytest.Config) -> None:
    pipeline = config.getoption("--pipeline")
    if pipeline is not None:
        from repro.fastpath import set_default_pipeline

        set_default_pipeline(pipeline)


def pytest_report_header(config: pytest.Config) -> str:
    from repro.fastpath import default_pipeline

    return f"repro pipeline: {default_pipeline()}"


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> DeterministicRng:
    """A deterministic random source with a fixed seed."""
    return DeterministicRng(1234)
