"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.sim import DeterministicRng, Simulator


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--pipeline",
        choices=("scalar", "fast"),
        default=None,
        help=(
            "run the whole suite with this default data-path pipeline "
            "(every Device built without an explicit pipeline= uses it; "
            "CI runs a '--pipeline fast' matrix leg — see docs/fastpath.md)"
        ),
    )


def pytest_configure(config: pytest.Config) -> None:
    pipeline = config.getoption("--pipeline")
    if pipeline is not None:
        from repro.fastpath import set_default_pipeline

        set_default_pipeline(pipeline)


def pytest_report_header(config: pytest.Config) -> str:
    from repro.fastpath import default_pipeline

    return f"repro pipeline: {default_pipeline()}"


@pytest.fixture(scope="session")
def run_flat_campaign():
    """Build a legacy *flat-layout* artifact directory programmatically.

    The CLI used to produce this layout through ``--telemetry-dir`` /
    ``--capture-dir``; those flags are retired, but the insight engine
    still reads the layout, so tests that pin it build it through the
    session APIs the old CLI path used.
    """
    def _run(root, experiments: int = 1, seed: int = 0) -> None:
        from argparse import Namespace

        from repro.capture import CaptureSession
        from repro.cli import _campaign_spec
        from repro.nftape.campaign import Campaign
        from repro.telemetry import TelemetrySession

        spec = _campaign_spec(
            Namespace(experiments=experiments, duration_ms=1.0, seed=seed),
            True,
        )
        campaign = Campaign.from_spec(spec)
        with TelemetrySession(out_dir=str(root), label=spec.name):
            with CaptureSession(out_dir=str(root), label=spec.name):
                campaign.run()

    return _run


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> DeterministicRng:
    """A deterministic random source with a fixed seed."""
    return DeterministicRng(1234)
