"""Unit tests for FC CRC-32, frames, ordered sets, ports, and the tap."""

import pytest

from repro.core import FaultInjectorDevice
from repro.core.faults import replace_bytes
from repro.errors import CrcError, ProtocolError
from repro.fc.crc32 import crc32, verify32
from repro.fc.frame import FcFrame, FcFrameHeader, MAX_PAYLOAD
from repro.fc.node import FcPort, connect_fc
from repro.fc.ordered_sets import (
    ALL_ORDERED_SETS,
    EOF_N,
    EOF_T,
    IDLE,
    R_RDY,
    SOF_I3,
    SOF_N3,
    classify_word,
    is_eof,
    is_sof,
)
from repro.fc.tap import FcInjectorTap
from repro.hw.registers import MatchMode
from repro.sim.timebase import MS


class TestCrc32:
    def test_check_vector(self):
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32(b"") == 0

    def test_verify32(self):
        data = b"frame body"
        framed = data + crc32(data).to_bytes(4, "little")
        assert verify32(framed)
        assert not verify32(framed[:-1] + b"\x00")
        assert not verify32(b"abc")


class TestOrderedSets:
    def test_all_start_with_k28_5(self):
        for ordered_set in ALL_ORDERED_SETS.values():
            assert ordered_set.characters[0] == (0xBC, True)

    def test_classification(self):
        assert classify_word(IDLE.characters) is IDLE
        assert classify_word(R_RDY.characters) is R_RDY
        assert classify_word(SOF_I3.characters) is SOF_I3

    def test_corrupted_word_unclassifiable(self):
        chars = list(SOF_I3.characters)
        chars[2] = (0x99, False)
        assert classify_word(tuple(chars)) is None

    def test_sof_eof_predicates(self):
        assert is_sof(SOF_I3) and is_sof(SOF_N3)
        assert is_eof(EOF_T) and is_eof(EOF_N)
        assert not is_sof(EOF_T)
        assert not is_eof(IDLE)


class TestFcFrame:
    def test_header_roundtrip(self):
        header = FcFrameHeader(r_ctl=0x22, d_id=0x112233, s_id=0x445566,
                               type=0x08, seq_cnt=7, ox_id=0x1234)
        raw = header.to_bytes()
        assert len(raw) == 24
        parsed = FcFrameHeader.from_bytes(raw)
        assert parsed == header

    def test_frame_content_roundtrip(self):
        frame = FcFrame(header=FcFrameHeader(d_id=1, s_id=2),
                        payload=b"scsi data")
        parsed = FcFrame.from_content(frame.content_bytes(), SOF_I3, EOF_T)
        assert parsed.payload == b"scsi data"
        assert parsed.header.d_id == 1

    def test_crc_error_detected(self):
        frame = FcFrame(header=FcFrameHeader(), payload=b"x" * 16)
        raw = bytearray(frame.content_bytes())
        raw[30] ^= 0x01
        with pytest.raises(CrcError):
            FcFrame.from_content(bytes(raw), SOF_I3, EOF_T)

    def test_payload_size_limit(self):
        with pytest.raises(ProtocolError):
            FcFrame(header=FcFrameHeader(), payload=bytes(MAX_PAYLOAD + 1))

    def test_truncated_content_rejected(self):
        with pytest.raises(ProtocolError):
            FcFrame.from_content(b"short", SOF_I3, EOF_T)


def make_fc_pair(sim, tap=None, bb_credit=2):
    a = FcPort(sim, "a", 0x010101, bb_credit=bb_credit)
    b = FcPort(sim, "b", 0x020202, bb_credit=bb_credit)
    connect_fc(sim, a, b, tap=tap)
    return a, b


def frame(payload=b"data", seq=0):
    return FcFrame(header=FcFrameHeader(d_id=0x020202, s_id=0x010101,
                                        type=0x08, seq_cnt=seq),
                   payload=payload)


class TestFcPort:
    def test_frame_delivery(self, sim):
        a, b = make_fc_pair(sim)
        got = []
        b.on_frame(lambda f: got.append(f.payload))
        a.send_frame(frame(b"hello fc"))
        sim.run_for(1 * MS)
        assert got == [b"hello fc"]
        assert b.crc_errors == 0

    def test_many_frames_in_order(self, sim):
        a, b = make_fc_pair(sim)
        got = []
        b.on_frame(lambda f: got.append(f.header.seq_cnt))
        for seq in range(20):
            a.send_frame(frame(seq=seq))
        sim.run_for(5 * MS)
        assert got == list(range(20))

    def test_credit_flow_control(self, sim):
        """Frames beyond the buffer-to-buffer credit wait for R_RDY."""
        a, b = make_fc_pair(sim, bb_credit=2)
        got = []
        b.on_frame(lambda f: got.append(f.header.seq_cnt))
        for seq in range(8):
            a.send_frame(frame(seq=seq))
        sim.run_for(5 * MS)
        assert got == list(range(8))
        assert a.credit_stalls > 0
        assert a.r_rdy_received == 8

    def test_bidirectional(self, sim):
        a, b = make_fc_pair(sim)
        got_a, got_b = [], []
        a.on_frame(lambda f: got_a.append(f.payload))
        b.on_frame(lambda f: got_b.append(f.payload))
        a.send_frame(frame(b"to-b"))
        b.send_frame(frame(b"to-a"))
        sim.run_for(1 * MS)
        assert got_b == [b"to-b"]
        assert got_a == [b"to-a"]

    def test_stats_snapshot(self, sim):
        a, b = make_fc_pair(sim)
        a.send_frame(frame())
        sim.run_for(1 * MS)
        assert a.stats["frames_sent"] == 1
        assert b.stats["frames_received"] == 1


class TestFcInjectorTap:
    def test_transparent_passthrough(self, sim):
        device = FaultInjectorDevice(sim, medium="fibre-channel")
        tap = FcInjectorTap(sim, device)
        a, b = make_fc_pair(sim, tap=tap)
        got = []
        b.on_frame(lambda f: got.append(f.payload))
        for seq in range(5):
            a.send_frame(frame(b"through the tap", seq=seq))
        sim.run_for(2 * MS)
        assert got == [b"through the tap"] * 5
        assert b.crc_errors == 0
        assert b.stats["disparity_errors"] == 0

    def test_injection_with_crc32_fixup_delivered(self, sim):
        """Dual-media claim: the same injector core corrupts FC frames,
        with the FC CRC-32 recomputed before the EOF."""
        device = FaultInjectorDevice(sim, medium="fibre-channel")
        tap = FcInjectorTap(sim, device)
        a, b = make_fc_pair(sim, tap=tap)
        got = []
        b.on_frame(lambda f: got.append(f.payload))
        device.configure("R", replace_bytes(b"data", b"DATA",
                                            match_mode=MatchMode.ONCE,
                                            crc_fixup=True))
        a.send_frame(frame(b"fc data stream"))
        sim.run_for(2 * MS)
        assert got == [b"fc DATA stream"]
        assert tap.frames_crc_fixed == 1

    def test_injection_without_fixup_dropped_at_crc32(self, sim):
        device = FaultInjectorDevice(sim, medium="fibre-channel")
        tap = FcInjectorTap(sim, device)
        a, b = make_fc_pair(sim, tap=tap)
        got = []
        b.on_frame(lambda f: got.append(f.payload))
        device.configure("R", replace_bytes(b"data", b"DATA",
                                            match_mode=MatchMode.ONCE,
                                            crc_fixup=False))
        a.send_frame(frame(b"fc data stream"))
        sim.run_for(2 * MS)
        assert got == []
        assert b.crc_errors == 1

    def test_directions_independent_on_fc(self, sim):
        device = FaultInjectorDevice(sim, medium="fibre-channel")
        tap = FcInjectorTap(sim, device)
        a, b = make_fc_pair(sim, tap=tap)
        got_a, got_b = [], []
        a.on_frame(lambda f: got_a.append(f.payload))
        b.on_frame(lambda f: got_b.append(f.payload))
        device.configure("R", replace_bytes(b"ping", b"PING",
                                            match_mode=MatchMode.ON,
                                            crc_fixup=True))
        a.send_frame(frame(b"ping pong"))
        b.send_frame(frame(b"ping pong"))
        sim.run_for(2 * MS)
        assert got_b == [b"PING pong"]   # R direction corrupted
        assert got_a == [b"ping pong"]   # L direction clean
