"""Unit tests for addresses and Myrinet packet encode/parse."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CrcError, ProtocolError, RoutingError
from repro.myrinet.addresses import MacAddress, McpAddress
from repro.myrinet.crc8 import crc8
from repro.myrinet.packet import (
    PACKET_TYPE_DATA,
    PACKET_TYPE_MAPPING,
    ROUTE_MSB,
    TYPE_FIELD_LEN,
    MyrinetPacket,
    is_route_byte,
    route_byte,
    route_port,
)


class TestAddresses:
    def test_mac_format_roundtrip(self):
        mac = MacAddress(0x02_00_5E_00_00_01)
        assert str(mac) == "02:00:5e:00:00:01"
        assert MacAddress.parse(str(mac)) == mac
        assert MacAddress.from_bytes(mac.to_bytes()) == mac

    def test_mcp_is_64_bit(self):
        mcp = McpAddress(0x1234_5678_9ABC_DEF0)
        assert len(mcp.to_bytes()) == 8
        assert McpAddress.from_bytes(mcp.to_bytes()) == mcp

    def test_range_checks(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            McpAddress(-1)

    def test_ordering(self):
        assert McpAddress(2) > McpAddress(1)
        assert McpAddress(1) >= McpAddress(1)
        assert MacAddress(1) < MacAddress(2)

    def test_broadcast(self):
        assert MacAddress.broadcast().value == (1 << 48) - 1

    def test_wrong_byte_count_rejected(self):
        with pytest.raises(ValueError):
            MacAddress.from_bytes(b"\x00" * 5)

    def test_hash_distinguishes_types(self):
        assert hash(MacAddress(5)) != hash(McpAddress(5))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            MacAddress(1).value = 2  # type: ignore[misc]


class TestRouteBytes:
    def test_route_byte_has_msb(self):
        assert route_byte(3) == 0x83
        assert is_route_byte(route_byte(0))

    def test_route_port_extraction(self):
        assert route_port(route_byte(7)) == 7

    def test_port_range_enforced(self):
        with pytest.raises(RoutingError):
            route_byte(64)

    def test_type_field_first_byte_not_route(self):
        raw = PACKET_TYPE_DATA.to_bytes(TYPE_FIELD_LEN, "big")
        assert not is_route_byte(raw[0])


class TestMyrinetPacket:
    def test_wire_layout(self):
        """Paper Fig. 6: route | 4-byte type | payload | CRC-8."""
        packet = MyrinetPacket.for_route([1, 2], PACKET_TYPE_DATA, b"hi")
        raw = packet.to_bytes()
        assert raw[0] == route_byte(1)
        assert raw[1] == route_byte(2)
        assert raw[2:6] == (0x0004).to_bytes(4, "big")
        assert raw[6:8] == b"hi"
        assert crc8(raw) == 0
        assert len(raw) == packet.wire_length

    def test_parse_roundtrip_at_host(self):
        packet = MyrinetPacket(route=[], packet_type=PACKET_TYPE_MAPPING,
                               payload=b"scout data")
        parsed = MyrinetPacket.from_bytes(packet.to_bytes())
        assert parsed.packet_type == PACKET_TYPE_MAPPING
        assert parsed.payload == b"scout data"
        assert parsed.route == []

    def test_parse_with_remaining_route(self):
        packet = MyrinetPacket.for_route([5], PACKET_TYPE_DATA, b"x")
        parsed = MyrinetPacket.from_bytes(packet.to_bytes(), route_len=1)
        assert parsed.route == [route_byte(5)]

    def test_crc_error_raised(self):
        raw = bytearray(MyrinetPacket(payload=b"abc").to_bytes())
        raw[-2] ^= 0x40
        with pytest.raises(CrcError):
            MyrinetPacket.from_bytes(bytes(raw))

    def test_truncated_frame_rejected(self):
        with pytest.raises(ProtocolError):
            MyrinetPacket.from_bytes(b"\x00\x00")

    def test_strip_hop_consumes_route(self):
        packet = MyrinetPacket.for_route([3, 1], PACKET_TYPE_DATA, b"")
        assert packet.strip_hop() == 3
        assert packet.strip_hop() == 1
        with pytest.raises(RoutingError):
            packet.strip_hop()

    def test_reserialization_after_strip_recomputes_crc(self):
        packet = MyrinetPacket.for_route([3], PACKET_TYPE_DATA, b"payload")
        packet.strip_hop()
        raw = packet.to_bytes()
        assert crc8(raw) == 0
        assert raw[0:TYPE_FIELD_LEN] == (0x0004).to_bytes(4, "big")

    def test_bad_type_rejected(self):
        with pytest.raises(ProtocolError):
            MyrinetPacket(packet_type=1 << 40)

    @given(
        st.lists(st.integers(min_value=0, max_value=63), max_size=4),
        st.sampled_from([PACKET_TYPE_DATA, PACKET_TYPE_MAPPING, 0x0007]),
        st.binary(max_size=200),
    )
    def test_roundtrip_property(self, ports, packet_type, payload):
        packet = MyrinetPacket.for_route(ports, packet_type, payload)
        parsed = MyrinetPacket.from_bytes(packet.to_bytes(),
                                          route_len=len(ports))
        assert parsed.packet_type == packet_type
        assert parsed.payload == payload
        assert [route_port(b) for b in parsed.route] == ports
