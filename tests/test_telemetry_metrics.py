"""Unit tests for the telemetry metric primitives and registry."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim.events_fired")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_inc_rejects_negative(self):
        counter = MetricsRegistry().counter("a.b")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_set_total_is_idempotent_and_monotonic(self):
        counter = MetricsRegistry().counter("injector.matches")
        counter.set_total(10)
        counter.set_total(10)  # re-sampling the same source is fine
        counter.set_total(25)
        assert counter.value == 25
        with pytest.raises(ConfigurationError):
            counter.set_total(5)

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("device.bursts", direction="R").inc(3)
        registry.counter("device.bursts", direction="L").inc(5)
        assert registry.value("device.bursts", direction="R") == 3
        assert registry.value("device.bursts", direction="L") == 5
        # Label order must not matter for series identity.
        a = registry.counter("x.y", p="1", q="2")
        b = registry.counter("x.y", q="2", p="1")
        assert a is b


class TestGauge:
    def test_set_tracks_watermarks(self):
        gauge = MetricsRegistry().gauge("device.fifo.depth")
        for value in (3, 9, 1, 4):
            gauge.set(value)
        assert gauge.value == 4
        assert gauge.high == 9
        assert gauge.low == 1
        assert gauge.samples == 4

    def test_inc_dec(self):
        gauge = MetricsRegistry().gauge("sim.queue_depth")
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 3
        assert gauge.high == 5


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("h.test", (), buckets=(10, 100, 1000))
        for value in (5, 50, 500, 5000):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]  # last is the +Inf tail
        assert histogram.count == 4
        assert histogram.total == 5555
        assert histogram.mean == pytest.approx(5555 / 4)

    def test_cumulative_ends_with_inf(self):
        histogram = Histogram("h.test", (), buckets=(250, 500))
        histogram.observe(100)
        histogram.observe(300)
        histogram.observe(9999)
        pairs = histogram.cumulative()
        assert pairs == [(250.0, 1), (500.0, 2), (float("inf"), 3)]

    def test_boundary_is_inclusive(self):
        histogram = Histogram("h.test", (), buckets=(250,))
        histogram.observe(250)
        assert histogram.counts[0] == 1

    def test_empty_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h.test", (), buckets=())

    def test_default_bucket_constants_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert list(LATENCY_NS_BUCKETS) == sorted(LATENCY_NS_BUCKETS)
        assert 250 in LATENCY_NS_BUCKETS  # the paper's pipeline claim


class TestHistogramQuantiles:
    def test_empty_histogram_estimates_zero(self):
        histogram = Histogram("h.test", (), buckets=(10, 100))
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(0.99) == 0.0

    def test_interpolates_inside_the_crossing_bucket(self):
        """Ten observations in (100, 200]: the median interpolates to
        the middle of that bucket, histogram_quantile-style."""
        histogram = Histogram("h.test", (), buckets=(100, 200))
        for _ in range(10):
            histogram.observe(150)
        assert histogram.quantile(0.5) == pytest.approx(150.0)
        assert histogram.quantile(0.1) == pytest.approx(110.0)
        assert histogram.quantile(1.0) == pytest.approx(200.0)

    def test_first_bucket_interpolates_from_zero(self):
        histogram = Histogram("h.test", (), buckets=(100, 200))
        for _ in range(4):
            histogram.observe(50)
        assert histogram.quantile(0.5) == pytest.approx(50.0)

    def test_inf_tail_clamps_to_largest_finite_bound(self):
        histogram = Histogram("h.test", (), buckets=(10, 100))
        histogram.observe(5)
        histogram.observe(10_000)  # lands in the +Inf tail
        assert histogram.quantile(0.99) == 100.0

    def test_out_of_range_q_rejected(self):
        histogram = Histogram("h.test", (), buckets=(10,))
        for bad in (-0.01, 1.01, 2.0):
            with pytest.raises(ConfigurationError):
                histogram.quantile(bad)

    def test_quantiles_names_follow_the_points(self):
        histogram = Histogram("h.test", (), buckets=(100,))
        histogram.observe(50)
        named = histogram.quantiles()
        assert set(named) == {"p50", "p95", "p99"}
        assert histogram.quantiles(points=(0.999,)).keys() == {"p99_9"}

    def test_quantiles_monotonic_over_points(self):
        histogram = Histogram("h.test", (), buckets=(10, 100, 1000))
        for value in (5, 8, 50, 80, 500, 800, 900):
            histogram.observe(value)
        named = histogram.quantiles()
        assert named["p50"] <= named["p95"] <= named["p99"]

    def test_survives_a_to_from_dict_round_trip(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h.lat", buckets=(10, 100))
        for value in (5, 50, 70):
            histogram.observe(value)
        rebuilt = MetricsRegistry.from_dict(registry.to_dict()).get("h.lat")
        assert rebuilt.quantile(0.5) == histogram.quantile(0.5)

    def test_as_dict_unchanged_by_quantile_support(self):
        """metrics.json stays byte-identical: quantiles are derived at
        read time, never serialized."""
        histogram = Histogram("h.test", (), buckets=(10,))
        histogram.observe(5)
        histogram.quantile(0.5)
        assert set(histogram.as_dict()) == {
            "kind", "name", "labels", "buckets", "counts", "sum", "count",
        }


class TestMetricsRegistry:
    def test_get_or_create_returns_same_series(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert len(registry) == 1

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ConfigurationError):
            registry.gauge("a.b")
        with pytest.raises(ConfigurationError):
            registry.histogram("a.b")

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("Bad.Name", "1abc", "a..b", "a-b", ""):
            with pytest.raises(ConfigurationError):
                registry.counter(bad)

    def test_iteration_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("z.z")
        registry.counter("a.a", q="2")
        registry.counter("a.a", q="1")
        names = [(m.name, m.labels) for m in registry]
        assert names == sorted(names)

    def test_value_default_for_missing(self):
        registry = MetricsRegistry()
        assert registry.value("no.such", default=7) == 7
        assert registry.get("no.such") is None
        assert len(registry) == 0  # get/value never create

    def test_round_trip_to_from_dict(self):
        registry = MetricsRegistry()
        registry.counter("c.one").inc(12)
        registry.counter("c.two", direction="R").inc(3)
        gauge = registry.gauge("g.depth")
        gauge.set(8)
        gauge.set(2)
        histogram = registry.histogram("h.lat", buckets=(10, 100))
        histogram.observe(5)
        histogram.observe(50)
        histogram.observe(5000)

        rebuilt = MetricsRegistry.from_dict(registry.to_dict())
        assert rebuilt.to_dict() == registry.to_dict()
        assert rebuilt.value("c.one") == 12
        assert rebuilt.value("c.two", direction="R") == 3
        h2 = rebuilt.get("h.lat")
        assert isinstance(h2, Histogram)
        assert h2.cumulative() == histogram.cumulative()

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry.from_dict(
                {"series": [{"kind": "summary", "name": "x.y", "value": 1}]}
            )

    def test_metric_kinds_exposed(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("k.c"), Counter)
        assert isinstance(registry.gauge("k.g"), Gauge)
        assert isinstance(registry.histogram("k.h"), Histogram)
