"""End-to-end integration tests spanning the whole stack.

Each test exercises a complete paper scenario: workload over the
simulated LAN, fault configuration over the real serial path, corruption
in the injector pipeline, and observation at the application layer.
"""

import pytest

from repro.core import FaultInjectorDevice, InjectorSession
from repro.core.faults import control_symbol_swap, replace_bytes
from repro.hostsim import HostStack, MessageSink
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.myrinet.network import build_paper_testbed
from repro.myrinet.symbols import GAP, GO
from repro.nftape import Testbed
from repro.nftape.experiment import TestbedOptions
from repro.sim.timebase import MS, US


def test_full_serial_campaign_roundtrip(sim):
    """Configure over RS-232, corrupt a UDP message, read stats back —
    the paper's 'typical injection scenario' end to end."""
    device = FaultInjectorDevice(sim)
    network = build_paper_testbed(sim, device=device)
    session = InjectorSession(sim, device)
    network.settle()

    pc = network.host("pc").interface
    sparc1 = network.host("sparc1").interface
    received = []
    sparc1.set_data_handler(lambda src, payload: received.append(payload))

    done = []
    session.configure(
        "R",
        replace_bytes(b"\x18\x18", b"\x19\x18", match_mode=MatchMode.ONCE,
                      crc_fixup=True),
        done.append,
    )
    sim.run_for(60 * MS)
    assert done and done[0].startswith("OK")

    # Raw data-link message, as in the paper's demonstration.
    pc.send_to(sparc1.mac, b"snoop \x18\x18 string")
    sim.run_for(5 * MS)
    assert received == [b"snoop \x19\x18 string"]

    stats = []
    session.read_stats("R", stats.append)
    sim.run_for(10 * MS)
    assert stats[0]["inj"] == 1
    assert stats[0]["match"] >= 1


def test_mapping_survives_device_and_faults_recover(sim):
    """Routes map through the device; after a corruption burst the
    network returns to the known good state."""
    testbed = Testbed(TestbedOptions(seed=11))
    testbed.settle()
    assert testbed.mmon.all_nodes_in_network()
    # Corrupt all mapping traffic for a while.
    testbed.device.configure("R", InjectorConfig(
        match_mode=MatchMode.ON,
        compare_data=0x0005, compare_mask=0xFFFF,
        corrupt_mode=CorruptMode.TOGGLE, corrupt_data=0x00FF,
        crc_fixup=True,
    ))
    testbed.sim.run_for(2 * testbed.options.map_interval_ps)
    mapper = testbed.network.mapper().mcp
    assert "pc" not in mapper.current_map.entries
    # Disarm: the next round restores the known good state.
    testbed.device.injector("R").set_match_mode(MatchMode.OFF)
    testbed.sim.run_for(2 * testbed.options.map_interval_ps)
    assert testbed.mmon.all_nodes_in_network()


def test_bidirectional_control_corruption_is_passive(sim):
    """A GAP->GO burst damages throughput but never delivers wrong data
    to an application (the §4.4 claim)."""
    from repro.nftape import Experiment, FaultPlan, WorkloadConfig
    from repro.nftape.classify import FaultClass, classify_result

    plan = FaultPlan("RL", control_symbol_swap(GAP, GO, MatchMode.ON),
                     use_serial=False)
    experiment = Experiment(
        "gap-burst", duration_ps=4 * MS, plan=plan,
        workload_config=WorkloadConfig(send_interval_ps=250 * US,
                                       flood_ping=False),
    )
    result = experiment.run()
    assert result.loss_rate > 0
    classified = classify_result(result)
    assert classified.fault_class is FaultClass.PASSIVE
    assert result.active_misdeliveries == 0
    assert result.corrupted_deliveries == 0


def test_monitoring_and_statistics_during_campaign(sim):
    """Data monitoring captures the injection environment while the
    statistics unit keeps per-pair counts (paper §3.2)."""
    from repro.core.monitor import MonitorConfig

    device = FaultInjectorDevice(
        sim, monitor_config=MonitorConfig(enabled=True, pre_symbols=16,
                                          post_symbols=16),
    )
    network = build_paper_testbed(sim, device=device)
    network.settle()
    pc = HostStack(sim, network.host("pc").interface)
    sparc1 = HostStack(sim, network.host("sparc1").interface)
    MessageSink(sparc1, 4000)
    device.configure("R", replace_bytes(b"mark", b"MARK",
                                        match_mode=MatchMode.ONCE,
                                        crc_fixup=True))
    for index in range(5):
        pc.send_udp(sparc1.interface.mac, 4000, b"....mark....")
    sim.run_for(5 * MS)

    captures = device.monitor("R").captures()
    assert len(captures) == 1
    assert captures[0].event.lanes_rewritten >= 1
    assert len(captures[0].before) == 16
    assert len(captures[0].after) == 16

    stats = device.statistics("R").stats
    assert stats.pair_count(pc.interface.mac, sparc1.interface.mac) == 5


def test_deterministic_replay_of_whole_campaign():
    """Identical seeds replay an entire fault campaign bit-for-bit."""
    from repro.nftape import Experiment, FaultPlan, WorkloadConfig

    def run_once():
        plan = FaultPlan("RL", control_symbol_swap(GAP, GO, MatchMode.ON),
                         use_serial=False)
        experiment = Experiment(
            "replay", duration_ps=3 * MS, plan=plan,
            workload_config=WorkloadConfig(send_interval_ps=300 * US),
            testbed_options=TestbedOptions(seed=77),
        )
        result = experiment.run()
        return (result.messages_sent, result.messages_received,
                result.injections)

    assert run_once() == run_once()


def test_dual_media_same_device_core(sim):
    """The same injector core drives Myrinet and Fibre Channel: §1's
    'failure analysis can be performed simultaneously over both'."""
    from repro.fc import FcFrame, FcFrameHeader, FcInjectorTap, FcPort
    from repro.fc.node import connect_fc

    fc_device = FaultInjectorDevice(sim, medium="fibre-channel")
    tap = FcInjectorTap(sim, fc_device)
    a = FcPort(sim, "fc-a", 1)
    b = FcPort(sim, "fc-b", 2)
    connect_fc(sim, a, b, tap=tap)

    my_device = FaultInjectorDevice(sim)
    network = build_paper_testbed(sim, device=my_device)
    network.settle()

    # Same fault model object loaded into both devices.
    fault = replace_bytes(b"word", b"WORD", match_mode=MatchMode.ONCE,
                          crc_fixup=True)
    fc_device.configure("R", fault)
    my_device.configure("R", fault)

    got_fc = []
    b.on_frame(lambda f: got_fc.append(f.payload))
    a.send_frame(FcFrame(header=FcFrameHeader(d_id=2, s_id=1),
                         payload=b"a word on fc"))

    pc = network.host("pc").interface
    sparc1 = network.host("sparc1").interface
    got_my = []
    sparc1.set_data_handler(lambda src, payload: got_my.append(payload))
    pc.send_to(sparc1.mac, b"a word on myrinet")

    sim.run_for(5 * MS)
    assert got_fc == [b"a WORD on fc"]
    assert got_my == [b"a WORD on myrinet"]
