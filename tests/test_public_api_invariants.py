"""Public-API surface checks and cross-cutting invariants."""

import importlib
import inspect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.sim", "repro.sim.kernel", "repro.sim.rng", "repro.sim.trace",
    "repro.sim.timebase", "repro.sim.process",
    "repro.myrinet", "repro.myrinet.symbols", "repro.myrinet.crc8",
    "repro.myrinet.packet", "repro.myrinet.link", "repro.myrinet.flow",
    "repro.myrinet.slack", "repro.myrinet.frames", "repro.myrinet.switch",
    "repro.myrinet.interface", "repro.myrinet.mcp", "repro.myrinet.mapping",
    "repro.myrinet.network", "repro.myrinet.monitor",
    "repro.myrinet.addresses",
    "repro.hw", "repro.hw.clock", "repro.hw.fifo", "repro.hw.compare",
    "repro.hw.registers", "repro.hw.injector", "repro.hw.uart",
    "repro.hw.spi", "repro.hw.comm", "repro.hw.decoder",
    "repro.hw.outputgen", "repro.hw.sdram", "repro.hw.phy",
    "repro.hw.synthesis", "repro.hw.selftest",
    "repro.core", "repro.core.device", "repro.core.session",
    "repro.core.faults", "repro.core.triggers", "repro.core.crcfix",
    "repro.core.monitor", "repro.core.stats", "repro.core.adapter",
    "repro.fc", "repro.fc.encoding", "repro.fc.ordered_sets",
    "repro.fc.crc32", "repro.fc.frame", "repro.fc.node", "repro.fc.tap",
    "repro.fc.sequence",
    "repro.hostsim", "repro.hostsim.checksum", "repro.hostsim.ip",
    "repro.hostsim.udp", "repro.hostsim.sockets", "repro.hostsim.apps",
    "repro.nftape", "repro.nftape.campaign", "repro.nftape.experiment",
    "repro.nftape.workload", "repro.nftape.plan", "repro.nftape.results",
    "repro.nftape.classify", "repro.nftape.report",
    "repro.nftape.random_faults", "repro.nftape.paper",
    "repro.runtime", "repro.runtime.spec", "repro.runtime.seeding",
    "repro.runtime.executors", "repro.runtime.journal",
    "repro.runtime.artifacts", "repro.runtime.worker",
    "repro.runtime.fabric", "repro.runtime.store",
    "repro.insight", "repro.insight.model", "repro.insight.correlate",
    "repro.insight.rank", "repro.insight.store",
    "repro.insight.store_ingest",
    "repro.scenario", "repro.scenario.model", "repro.scenario.codec",
    "repro.scenario.yamlish", "repro.scenario.compile",
    "repro.scenario.library", "repro.scenario.golden",
    "repro.errors", "repro.cli", "repro.api",
]

# The repro.api v1 contract: exactly these names, no more, no fewer.
# Adding a name is an intentional API change — extend this set in the
# same commit.  Removing or renaming one requires an API_VERSION bump
# (see docs/api.md for the tier of each name).
API_V1_NAMES = {
    "API_VERSION",
    # simulation substrate
    "Simulator", "DeterministicRng",
    # the device and its host-side session
    "FaultInjectorDevice", "InjectorSession", "InjectorConfig",
    "MatchMode", "CorruptMode", "replace_bytes", "control_symbol_swap",
    "build_paper_testbed",
    # data-path pipeline selection
    "PIPELINES", "pipeline_override", "resolve_pipeline",
    "set_default_pipeline",
    # test beds and experiments
    "Testbed", "TestbedOptions", "build_testbed", "Experiment",
    "WorkloadConfig", "ExperimentResult", "ResultTable",
    "classify_result",
    # declarative scenarios
    "ScenarioDoc", "ScenarioExperiment", "TopologySpec", "TrafficSpec",
    "FaultSpec", "SweepSpec", "compile_scenario", "scenario_to_json",
    "scenario_from_json", "list_scenarios", "load_scenario",
    # declarative campaigns and executors
    "Campaign", "default_row", "CampaignSpec", "ExperimentSpec",
    "PlanSpec", "SerialExecutor", "PooledExecutor", "FabricExecutor",
    "ResultStore", "derive_seed", "spec_digest",
    "spec_to_json", "spec_from_json",
    # observation sessions and the live event bus
    "TelemetrySession", "CaptureSession", "EventBus", "EventBusSession",
    # monitoring-as-a-service
    "MonitorServer",
    # offline incident correlation
    "analyze_artifacts", "IncidentReport", "InsightStore",
    "paper_oracle",
    # the paper's evaluation
    "table2_latency", "table4_spec", "table4_control_symbols",
    "sec35_passthrough", "sec431_throughput", "sec432_packet_types",
    "sec433_addresses", "sec434_udp_checksum",
}


class TestApiV1Surface:
    def test_exported_name_set_is_pinned(self):
        import repro.api as api
        assert set(api.__all__) == API_V1_NAMES

    def test_every_export_resolves(self):
        import repro.api as api
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_version_string(self):
        import repro.api as api
        assert api.API_VERSION == "v1"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_every_module_imports_and_is_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("name", [m for m in PUBLIC_MODULES
                                  if "." in m and "paper" not in m])
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    members = (
        [getattr(module, item) for item in exported]
        if exported else
        [obj for attr, obj in vars(module).items()
         if not attr.startswith("_")
         and (inspect.isclass(obj) or inspect.isfunction(obj))
         and getattr(obj, "__module__", None) == name]
    )
    for obj in members:
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, (
                f"{name}.{getattr(obj, '__name__', obj)} lacks a docstring"
            )


def test_top_level_convenience_exports():
    assert repro.FaultInjectorDevice is not None
    assert repro.InjectorSession is not None
    assert repro.Simulator is not None
    assert repro.build_paper_testbed is not None
    assert repro.__version__


class TestSwitchSyndromePreservation:
    @settings(max_examples=30, deadline=None)
    @given(
        payload=st.binary(min_size=1, max_size=80),
        position=st.integers(min_value=1, max_value=200),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_corruption_survives_the_hop_detectably(self, payload,
                                                    position, flip):
        """Any single-byte corruption upstream of a switch is still
        CRC-detectable downstream — the per-hop CRC update never
        launders errors (except corruption of the route byte itself,
        which the switch consumes)."""
        from repro.myrinet.crc8 import crc8
        from repro.myrinet.link import Link
        from repro.myrinet.packet import MyrinetPacket, PACKET_TYPE_DATA
        from repro.myrinet.switch import MyrinetSwitch
        from repro.myrinet.symbols import GAP, data_symbols
        from repro.sim import Simulator

        sim = Simulator()
        switch = MyrinetSwitch(sim, num_ports=4)
        frames = []

        class _Sink:
            def on_burst(self, burst, channel):
                current = []
                for symbol in burst:
                    if symbol.is_data:
                        current.append(symbol.value)
                    elif symbol == GAP and current:
                        frames.append(bytes(current))
                        current = []

        links = []
        for port in range(2):
            link = Link(sim, f"l{port}", char_period_ps=12_500,
                        propagation_ps=0)
            link.attach_a(_Sink())
            switch.attach_link(port, link, "b")
            links.append(link)

        packet = MyrinetPacket.for_route([1], PACKET_TYPE_DATA, payload)
        raw = bytearray(packet.to_bytes())
        index = 1 + (position % (len(raw) - 1))  # never the route byte
        raw[index] ^= flip
        burst = data_symbols(bytes(raw))
        burst.append(GAP)
        links[0].a_to_b.send(burst)
        sim.run()
        assert len(frames) == 1
        assert crc8(frames[0]) != 0  # syndrome preserved across the hop
