"""Unit tests for the two-phase clock and the RAM-backed FIFO."""

import pytest

from repro.errors import SimulationError
from repro.hw.clock import ClockPhase, TwoPhaseClock
from repro.hw.fifo import DualPortRam, RamFifo
from repro.myrinet.symbols import data_symbol


class TestTwoPhaseClock:
    def test_alternates_starting_with_odd(self):
        clock = TwoPhaseClock()
        phases = [clock.tick() for _ in range(6)]
        assert phases == [
            ClockPhase.ODD, ClockPhase.EVEN,
            ClockPhase.ODD, ClockPhase.EVEN,
            ClockPhase.ODD, ClockPhase.EVEN,
        ]

    def test_cycles_and_segments(self):
        clock = TwoPhaseClock()
        for _ in range(10):
            clock.tick()
        assert clock.cycles == 10
        assert clock.segments == 5

    def test_expect_enforces_phase(self):
        clock = TwoPhaseClock()
        clock.tick()
        clock.expect(ClockPhase.ODD)
        with pytest.raises(SimulationError):
            clock.expect(ClockPhase.EVEN)


class TestDualPortRam:
    def test_read_write(self):
        ram = DualPortRam(8)
        ram.write(3, data_symbol(0x55))
        assert ram.read(3).value == 0x55
        assert ram.reads == 1
        assert ram.writes == 1

    def test_uninitialized_read_rejected(self):
        ram = DualPortRam(4)
        with pytest.raises(SimulationError):
            ram.read(0)

    def test_address_bounds(self):
        ram = DualPortRam(4)
        with pytest.raises(SimulationError):
            ram.write(4, data_symbol(0))
        with pytest.raises(SimulationError):
            ram.write(-1, data_symbol(0))

    def test_minimum_size(self):
        with pytest.raises(Exception):
            DualPortRam(1)


class TestRamFifo:
    def test_fifo_order(self):
        fifo = RamFifo(8)
        for value in (1, 2, 3):
            fifo.push(data_symbol(value))
        assert [fifo.pop().value for _ in range(3)] == [1, 2, 3]
        assert fifo.empty

    def test_overflow_underflow(self):
        fifo = RamFifo(2)
        fifo.push(data_symbol(0))
        fifo.push(data_symbol(1))
        assert fifo.full
        with pytest.raises(SimulationError):
            fifo.push(data_symbol(2))
        fifo.drain()
        with pytest.raises(SimulationError):
            fifo.pop()

    def test_peek_and_rewrite_from_tail(self):
        """The even-cycle inject: queued entries are rewritten in place
        (paper Figure 3)."""
        fifo = RamFifo(8)
        for value in (10, 20, 30):
            fifo.push(data_symbol(value))
        assert fifo.peek_from_tail(0).value == 30  # newest
        assert fifo.peek_from_tail(2).value == 10  # oldest
        fifo.rewrite_from_tail(1, data_symbol(99))
        assert [fifo.pop().value for _ in range(3)] == [10, 99, 30]
        assert fifo.in_place_rewrites == 1

    def test_rewrite_bounds_checked(self):
        fifo = RamFifo(4)
        fifo.push(data_symbol(1))
        with pytest.raises(SimulationError):
            fifo.rewrite_from_tail(1, data_symbol(0))
        with pytest.raises(SimulationError):
            fifo.peek_from_tail(-1)

    def test_wraparound(self):
        fifo = RamFifo(3)
        for round_index in range(10):
            fifo.push(data_symbol(round_index % 256))
            assert fifo.pop().value == round_index % 256

    def test_drain_returns_in_order(self):
        fifo = RamFifo(5)
        for value in range(5):
            fifo.push(data_symbol(value))
        assert [s.value for s in fifo.drain()] == [0, 1, 2, 3, 4]
