"""Capture must not perturb the simulation — golden-digest proof.

Same discipline as :mod:`tests.test_telemetry_determinism`, whose golden
digests predate both observability subsystems: with capture *off* the
hot paths must be a true no-op (same digest as the pre-capture tree),
and with a capture session *active* the flight recorder must only
observe — events are recorded, correlation ids assigned, yet the kernel
event stream stays bit-identical.

CI runs this file as its capture digest gate.
"""

import pytest

from repro.analysis.sanitize import run_probe
from repro.capture import CaptureSession
from repro.capture.state import CAPTURE

from tests.test_telemetry_determinism import DURATION_PS, GOLDEN_DIGESTS


@pytest.fixture(autouse=True)
def _clean_state():
    CAPTURE.deactivate()
    yield
    CAPTURE.deactivate()


@pytest.mark.parametrize("seed", sorted(GOLDEN_DIGESTS))
def test_disabled_capture_reproduces_golden_digest(seed):
    """With capture off, the event stream matches the pre-capture tree."""
    result = run_probe(seed=seed, duration_ps=DURATION_PS)
    assert result.digest == GOLDEN_DIGESTS[seed], (
        "the kernel event stream diverged from the golden digest with "
        f"capture disabled, seed={seed}: {result.summary()}"
    )


def test_enabled_capture_is_observation_only():
    """With a live flight recorder, the digest is still the golden one."""
    with CaptureSession() as session:
        result = run_probe(seed=7, duration_ps=DURATION_PS)
    assert result.digest == GOLDEN_DIGESTS[7], (
        "an active capture session perturbed the event stream: "
        f"{result.summary()}"
    )
    # ... while actually having observed the run.
    recorder = session.recorder
    assert len(recorder.events) > 0
    assert recorder.corr_ids_assigned > 0
    counts = recorder.stage_counts()
    assert counts.get("host_send", 0) > 0
    assert counts.get("deliver", 0) > 0


def test_enabled_capture_with_telemetry_is_observation_only():
    """Both observability subsystems active at once: still bit-identical."""
    from repro.telemetry import TelemetrySession
    from repro.telemetry.state import STATE

    STATE.deactivate()
    try:
        with TelemetrySession():
            with CaptureSession() as session:
                result = run_probe(seed=0, duration_ps=DURATION_PS)
    finally:
        STATE.deactivate()
    assert result.digest == GOLDEN_DIGESTS[0], (
        "telemetry+capture together perturbed the event stream: "
        f"{result.summary()}"
    )
    assert len(session.recorder.events) > 0


def test_session_restores_previous_state():
    outer = CaptureSession()
    with outer:
        assert CAPTURE.active
        assert CAPTURE.recorder is outer.recorder
        inner = CaptureSession()
        with inner:
            assert CAPTURE.recorder is inner.recorder
        # Nested exit restores the outer recorder, not "off".
        assert CAPTURE.active
        assert CAPTURE.recorder is outer.recorder
    assert not CAPTURE.active
    assert CAPTURE.recorder is None
