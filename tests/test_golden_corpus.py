"""The golden-corpus gate: current behaviour == committed digests.

Runs every pinned scenario under the suite's default pipeline (so the
CI ``--pipeline fast`` matrix leg anchors the fast path to the same
corpus the scalar leg checks) and compares component digests against
``tests/golden/*.digest``.  A failure here means simulation behaviour
moved; regen only after confirming the change is intended::

    python -m repro golden --regen
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fastpath import resolve_pipeline
from repro.fastpath.golden import (
    GOLDEN_SCENARIOS,
    compute_digests,
    read_digest_file,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def test_corpus_is_complete() -> None:
    """Every pinned scenario has a committed digest file (and no strays)."""
    committed = {path.stem for path in GOLDEN_DIR.glob("*.digest")}
    assert committed == set(GOLDEN_SCENARIOS), (
        f"corpus drift: committed={sorted(committed)} "
        f"expected={sorted(GOLDEN_SCENARIOS)}"
    )


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_golden_digest(name: str) -> None:
    pipeline = resolve_pipeline(None)
    expected = read_digest_file(GOLDEN_DIR / f"{name}.digest")
    actual = compute_digests(name, pipeline)
    if actual["fingerprint"] != expected.get("fingerprint"):
        moved = sorted(
            component
            for component in ("streams", "stats", "tables",
                              "telemetry", "rcap")
            if actual.get(component) != expected.get(component)
        )
        pytest.fail(
            f"golden digest mismatch for {name} under the {pipeline} "
            f"pipeline; moved components: {', '.join(moved)} "
            "(python -m repro golden --regen after confirming the "
            "change is intended)"
        )
