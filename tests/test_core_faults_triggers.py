"""Unit tests for fault-model constructors and trigger helpers."""

import pytest

from repro.core.faults import (
    bit_flip,
    control_symbol_swap,
    force_one,
    force_zero,
    replace_bytes,
    toggle_bits,
)
from repro.core.triggers import header_trigger, pattern_trigger
from repro.errors import ConfigurationError
from repro.hw.injector import FifoInjector
from repro.hw.registers import CorruptMode, MatchMode
from repro.myrinet.packet import PACKET_TYPE_MAPPING
from repro.myrinet.symbols import GAP, GO, STOP, data_symbol, data_symbols, symbol_bytes


def apply(config, data):
    injector = FifoInjector()
    injector.configure(config)
    return symbol_bytes(injector.process_burst(data_symbols(data)))


class TestFaultModels:
    def test_replace_bytes(self):
        config = replace_bytes(b"\x18\x18", b"\x19\x18",
                               match_mode=MatchMode.ON)
        assert apply(config, b"..\x18\x18..") == b"..\x19\x18.."

    def test_replace_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            replace_bytes(b"ab", b"abc")

    def test_toggle_bits(self):
        config = toggle_bits(b"\xf0", b"\xff", match_mode=MatchMode.ON)
        assert apply(config, b"\xf0\x0f") == b"\x0f\x0f"

    def test_bit_flip_single_bit(self):
        config = bit_flip(b"\x00\x00", 9, match_mode=MatchMode.ON)
        out = apply(config, b"\x00\x00\x55")
        assert out[0] == 0x02  # bit 9 lives in the second-newest byte
        assert config.corrupt_mode is CorruptMode.TOGGLE

    def test_bit_flip_range_validated(self):
        with pytest.raises(ConfigurationError):
            bit_flip(b"\x00", 8)

    def test_force_zero(self):
        config = force_zero(b"\xff", b"\x0f", match_mode=MatchMode.ON)
        assert apply(config, b"\xff") == b"\xf0"

    def test_force_one(self):
        config = force_one(b"\x00", b"\xf0", match_mode=MatchMode.ON)
        assert apply(config, b"\x00") == b"\xf0"

    def test_control_symbol_swap_only_hits_control(self):
        config = control_symbol_swap(GAP, GO)
        injector = FifoInjector()
        injector.configure(config)
        stream = [data_symbol(GAP.value), GAP, data_symbol(1)]
        out = injector.process_burst(stream)
        assert out[0] == data_symbol(GAP.value)  # data byte untouched
        assert out[1] == GO                       # control corrupted
        assert out[2] == data_symbol(1)

    def test_control_symbol_swap_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            control_symbol_swap(data_symbol(1), GO)


class TestTriggers:
    def test_pattern_trigger_full_mask(self):
        data, mask = pattern_trigger(b"\xde\xad")
        assert data == 0xDEAD
        assert mask == 0xFFFF

    def test_pattern_trigger_custom_mask(self):
        """Paper §3.3: 'any arbitrary number of bits between 0 and 32'."""
        data, mask = pattern_trigger(b"\xde\xad", mask=b"\xff\x0f")
        assert mask == 0xFF0F
        assert data == 0xDE0D

    def test_pattern_trigger_mask_length_checked(self):
        with pytest.raises(ConfigurationError):
            pattern_trigger(b"ab", mask=b"x")

    def test_header_trigger_uses_significant_bytes(self):
        data, mask = header_trigger(PACKET_TYPE_MAPPING)
        assert data == 0x0005
        assert mask == 0xFFFF

    def test_header_trigger_width_validated(self):
        with pytest.raises(ConfigurationError):
            header_trigger(PACKET_TYPE_MAPPING, significant_bytes=0)
        with pytest.raises(ConfigurationError):
            header_trigger(PACKET_TYPE_MAPPING, significant_bytes=5)

    def test_header_trigger_matches_on_wire(self):
        from repro.hw.registers import InjectorConfig
        data, mask = header_trigger(PACKET_TYPE_MAPPING)
        config = InjectorConfig(match_mode=MatchMode.ON,
                                compare_data=data, compare_mask=mask,
                                corrupt_mode=CorruptMode.TOGGLE,
                                corrupt_data=0x00FF)
        wire = (0x0005).to_bytes(4, "big") + b"payload"
        out = apply(config, wire)
        assert out[3] == 0x05 ^ 0xFF
