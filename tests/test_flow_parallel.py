"""FLOW2xx parallel-safety tests.

FLOW201 (frozen spec mutation), FLOW202 (worker-reachable module-level
mutable state) and FLOW203 (closures across the pickle boundary), each
with positives and the negatives that pin precision: constant tables,
local shadowing, module-level callables, and non-spec attribute stores.
"""

import textwrap
from pathlib import Path

from repro.analysis.engine import parse_module
from repro.analysis.flow.parallel import (
    FrozenSpecMutationRule,
    PickleBoundaryClosureRule,
    WorkerSharedStateRule,
)


def module_of(tmp_path: Path, relative: str, source: str):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return parse_module(path, tmp_path)


def project_of(tmp_path: Path, files: dict):
    modules = {}
    for relative, source in files.items():
        info = module_of(tmp_path, relative, source)
        modules[info.module] = info
    return modules


# ----------------------------------------------------------------------
# FLOW201 — frozen spec mutation
# ----------------------------------------------------------------------

def test_flow201_annotated_parameter_mutation(tmp_path):
    module = module_of(tmp_path, "repro/runtime/bad.py", """\
        def run(spec: ExperimentSpec):
            spec.attempts = 3
        """)
    findings = FrozenSpecMutationRule().check(module)
    assert [f.rule_id for f in findings] == ["FLOW201"]
    assert "ExperimentSpec" in findings[0].message
    assert "dataclasses.replace()" in findings[0].message


def test_flow201_constructor_assignment_then_mutation(tmp_path):
    module = module_of(tmp_path, "repro/runtime/bad2.py", """\
        def build():
            plan = PlanSpec(name="p")
            plan.shards = 4
            return plan
        """)
    findings = FrozenSpecMutationRule().check(module)
    assert [f.rule_id for f in findings] == ["FLOW201"]


def test_flow201_direct_constructor_attribute(tmp_path):
    module = module_of(tmp_path, "repro/runtime/bad3.py", """\
        def build(name):
            CampaignSpec(name=name).label = "x"
        """)
    findings = FrozenSpecMutationRule().check(module)
    assert [f.rule_id for f in findings] == ["FLOW201"]


def test_flow201_augmented_assignment(tmp_path):
    module = module_of(tmp_path, "repro/runtime/bad4.py", """\
        def bump(job: ExperimentJob):
            job.attempt += 1
        """)
    findings = FrozenSpecMutationRule().check(module)
    assert [f.rule_id for f in findings] == ["FLOW201"]


def test_flow201_non_spec_attribute_stores_are_clean(tmp_path):
    module = module_of(tmp_path, "repro/runtime/ok.py", """\
        def run(spec: ExperimentSpec, device):
            device.armed = True
            copy = dict(spec.__dict__)
            copy["attempts"] = 3
        """)
    assert FrozenSpecMutationRule().check(module) == []


# ----------------------------------------------------------------------
# FLOW202 — worker-reachable module-level mutable state
# ----------------------------------------------------------------------

def test_flow202_mutated_cache_on_worker_path(tmp_path):
    modules = project_of(tmp_path, {
        "repro/runtime/worker.py": """\
            from repro.runtime import helpers

            def execute_job(job):
                return helpers.lookup(job)
            """,
        "repro/runtime/helpers.py": """\
            _CACHE = {}

            def lookup(job):
                _CACHE[job.key] = job
                return _CACHE
            """,
        "repro/runtime/__init__.py": "",
    })
    findings = WorkerSharedStateRule().check_project(modules)
    assert [f.rule_id for f in findings] == ["FLOW202"]
    assert "_CACHE" in findings[0].message
    assert "repro.runtime.helpers" in findings[0].message


def test_flow202_mutating_method_call(tmp_path):
    modules = project_of(tmp_path, {
        "repro/runtime/worker.py": """\
            from repro.runtime.state import note

            def execute_job(job):
                note(job)
            """,
        "repro/runtime/state.py": """\
            _SEEN = []

            def note(job):
                _SEEN.append(job.key)
            """,
        "repro/runtime/__init__.py": "",
    })
    findings = WorkerSharedStateRule().check_project(modules)
    assert [f.rule_id for f in findings] == ["FLOW202"]
    assert ".append()" in findings[0].message


def test_flow202_constant_tables_are_clean(tmp_path):
    modules = project_of(tmp_path, {
        "repro/runtime/worker.py": """\
            from repro.runtime.tables import WIDTHS

            def execute_job(job):
                return WIDTHS[job.kind]
            """,
        "repro/runtime/tables.py": """\
            __all__ = ["WIDTHS"]
            WIDTHS = {"data": 9, "control": 9}

            def lookup(kind):
                return WIDTHS.get(kind)
            """,
        "repro/runtime/__init__.py": "",
    })
    assert WorkerSharedStateRule().check_project(modules) == []


def test_flow202_local_shadow_is_clean(tmp_path):
    modules = project_of(tmp_path, {
        "repro/runtime/worker.py": """\
            from repro.runtime.shadow import collect

            def execute_job(job):
                return collect(job)
            """,
        "repro/runtime/shadow.py": """\
            _SEEN = []

            def collect(job):
                _SEEN = []
                _SEEN.append(job.key)
                return _SEEN
            """,
        "repro/runtime/__init__.py": "",
    })
    assert WorkerSharedStateRule().check_project(modules) == []


def test_flow202_unreachable_module_is_clean(tmp_path):
    # A mutated module-level container in a module the worker never
    # imports is outside this rule's concern.
    modules = project_of(tmp_path, {
        "repro/runtime/worker.py": """\
            def execute_job(job):
                return job
            """,
        "repro/report/accumulator.py": """\
            _ROWS = []

            def push(row):
                _ROWS.append(row)
            """,
    })
    assert WorkerSharedStateRule().check_project(modules) == []


# ----------------------------------------------------------------------
# FLOW203 — pickle boundary closures
# ----------------------------------------------------------------------

def test_flow203_lambda_into_spec_ctor(tmp_path):
    module = module_of(tmp_path, "repro/runtime/bad5.py", """\
        def build(bits):
            return ExperimentSpec(
                name="x",
                fault=lambda s: s ^ bits,
            )
        """)
    findings = PickleBoundaryClosureRule().check(module)
    assert [f.rule_id for f in findings] == ["FLOW203"]
    assert "lambda" in findings[0].message


def test_flow203_local_function_into_executor(tmp_path):
    module = module_of(tmp_path, "repro/runtime/bad6.py", """\
        def launch(pool, jobs):
            def run(job):
                return job.execute()
            return pool.map_async(run, jobs)
        """)
    findings = PickleBoundaryClosureRule().check(module)
    assert [f.rule_id for f in findings] == ["FLOW203"]
    assert "`run`" in findings[0].message


def test_flow203_module_level_target_is_clean(tmp_path):
    # The real executor passes the module-level run_job_in_child — the
    # picklable shape the rule is steering people toward.
    module = module_of(tmp_path, "repro/runtime/ok2.py", """\
        def launch(context, queue):
            worker = context.Process(
                target=run_job_in_child, args=(queue,),
            )
            worker.start()
            return worker
        """)
    assert PickleBoundaryClosureRule().check(module) == []


def test_flow203_lambda_outside_boundary_is_clean(tmp_path):
    module = module_of(tmp_path, "repro/runtime/ok3.py", """\
        def order(rows):
            return sorted(rows, key=lambda r: r.shard)
        """)
    assert PickleBoundaryClosureRule().check(module) == []
