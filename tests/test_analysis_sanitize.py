"""Determinism sanitizer and kernel-invariant tests."""

import pytest

from repro.analysis.sanitize import (
    ProbeResult,
    SanitizeReport,
    check_determinism,
    run_probe,
)
from repro.errors import SimulationError
from repro.sim.kernel import Simulator, sanitize_enabled
from repro.sim.timebase import MS
from repro.sim.trace import TraceRecorder


# ----------------------------------------------------------------------
# trace digesting
# ----------------------------------------------------------------------

def test_trace_digest_equal_for_identical_streams():
    a, b = TraceRecorder(), TraceRecorder()
    for recorder in (a, b):
        recorder.record(10, "kernel", "event", "tx", seq=1)
        recorder.record(20, "kernel", "event", "rx", seq=2)
    assert a.digest() == b.digest()
    assert a.digested == 2


def test_trace_digest_diverges_on_any_difference():
    a, b = TraceRecorder(), TraceRecorder()
    a.record(10, "kernel", "event", "tx", seq=1)
    b.record(10, "kernel", "event", "tx", seq=2)  # differing data
    assert a.digest() != b.digest()


def test_trace_digest_diverges_on_order():
    a, b = TraceRecorder(), TraceRecorder()
    a.record(10, "k", "s", "x")
    a.record(10, "k", "s", "y")
    b.record(10, "k", "s", "y")
    b.record(10, "k", "s", "x")
    assert a.digest() != b.digest()


def test_trace_digest_survives_max_events_window():
    """Digest folds dropped events too — bounded memory, full coverage."""
    small = TraceRecorder(max_events=2)
    full = TraceRecorder()
    for i in range(10):
        small.record(i, "k", "s", f"e{i}")
        full.record(i, "k", "s", f"e{i}")
    assert len(small) == 2
    assert small.digested == 10
    assert small.digest() == full.digest()


def test_trace_digest_data_key_order_is_canonical():
    a, b = TraceRecorder(), TraceRecorder()
    a.record(1, "k", "s", "m", x=1, y=2)
    b.record(1, "k", "s", "m", y=2, x=1)
    assert a.digest() == b.digest()


def test_trace_clear_resets_digest():
    recorder = TraceRecorder()
    recorder.record(1, "k", "s", "m")
    recorder.clear()
    assert recorder.digested == 0
    assert recorder.digest() == TraceRecorder().digest()


# ----------------------------------------------------------------------
# kernel tracer hook
# ----------------------------------------------------------------------

def test_tracer_hook_sees_every_fired_event():
    sim = Simulator()
    seen = []
    sim.attach_tracer(lambda event: seen.append((event.time, event.label)))
    sim.schedule(5, lambda: None, label="a")
    sim.schedule(3, lambda: None, label="b")
    cancelled = sim.schedule(4, lambda: None, label="never")
    cancelled.cancel()
    sim.run()
    assert seen == [(3, "b"), (5, "a")]


def test_tracer_detach():
    sim = Simulator()
    seen = []
    sim.attach_tracer(lambda event: seen.append(event.label))
    sim.schedule(1, lambda: None, label="a")
    sim.run()
    sim.attach_tracer(None)
    sim.schedule(1, lambda: None, label="b")
    sim.run()
    assert seen == ["a"]


# ----------------------------------------------------------------------
# REPRO_SANITIZE kernel assertions
# ----------------------------------------------------------------------

def test_sanitize_enabled_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize_enabled()


def test_sanitize_rejects_float_delay(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = Simulator()
    with pytest.raises(SimulationError, match="non-integer"):
        sim.schedule(1.5, lambda: None)


def test_sanitize_rejects_bool_time(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = Simulator()
    with pytest.raises(SimulationError, match="non-integer"):
        sim.schedule_at(True, lambda: None)


def test_sanitize_rejects_uncallable_callback(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = Simulator()
    with pytest.raises(SimulationError, match="not callable"):
        sim.schedule(1, "not-a-callback")


def test_sanitize_off_keeps_legacy_leniency(monkeypatch):
    """Without the flag the kernel stays permissive (no perf tax)."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    sim = Simulator()
    sim.schedule(1, lambda: None)
    assert sim.run() == 1


def test_sanitize_pop_order_invariant_catches_clock_rewind(monkeypatch):
    from repro.sim.kernel import Event

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    # Corrupt kernel state the way a buggy component would: plant an
    # event dated before the clock, bypassing schedule_at's guard.
    stale = Event(time=5, seq=999, callback=lambda: None, label="stale")
    sim._queue.append((5, 999, stale))
    with pytest.raises(SimulationError, match="heap order"):
        sim.step()


# ----------------------------------------------------------------------
# determinism probes
# ----------------------------------------------------------------------

def _synthetic_probe(divergent: bool):
    """A tiny in-kernel probe; optionally nondeterministic across calls."""
    calls = {"n": 0}

    def probe(seed: int, duration_ps: int) -> ProbeResult:
        calls["n"] += 1
        recorder = TraceRecorder()
        sim = Simulator()
        sim.attach_tracer(
            lambda event: recorder.record(
                event.time, "kernel", "event", event.label, seq=event.seq
            )
        )
        label = f"jitter{calls['n']}" if divergent else "steady"
        for delay in (seed + 1, seed + 2, seed + 3):
            sim.schedule(delay, lambda: None, label=label)
        sim.run_for(duration_ps)
        return ProbeResult(
            seed=seed,
            digest=recorder.digest(),
            events_fired=sim.events_fired,
            final_time_ps=sim.now,
            messages_sent=0,
            messages_received=0,
        )

    return probe


def test_check_determinism_passes_for_stable_probe():
    report = check_determinism(seed=7, runs=3, duration_ps=100,
                               probe=_synthetic_probe(divergent=False))
    assert report.deterministic
    assert len({run.digest for run in report.runs}) == 1
    assert "PASS" in report.render()


def test_check_determinism_catches_planted_divergence():
    """A deliberate seed-divergence must be detected and reported."""
    report = check_determinism(seed=7, runs=2, duration_ps=100,
                               probe=_synthetic_probe(divergent=True))
    assert not report.deterministic
    assert "FAIL" in report.render()


def test_run_probe_sets_and_restores_sanitize_env(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    observed = {}

    def probe(seed: int, duration_ps: int) -> ProbeResult:
        import os
        observed["flag"] = os.environ.get("REPRO_SANITIZE")
        return ProbeResult(seed=seed, digest="x", events_fired=0,
                           final_time_ps=0, messages_sent=0,
                           messages_received=0)

    run_probe(seed=0, duration_ps=1, probe=probe)
    import os
    assert observed["flag"] == "1"
    assert "REPRO_SANITIZE" not in os.environ


def test_default_probe_replays_bit_identically():
    """The real test-bed campaign digests equal across two replays."""
    report = check_determinism(seed=3, runs=2, duration_ps=1 * MS)
    assert report.deterministic
    first, second = report.runs
    assert first.events_fired == second.events_fired
    assert first.messages_sent == second.messages_sent
    assert first.events_fired > 0


def test_default_probe_differs_across_seeds():
    a = run_probe(seed=1, duration_ps=1 * MS)
    b = run_probe(seed=2, duration_ps=1 * MS)
    assert a.digest != b.digest


def test_sanitize_report_render_mentions_every_run():
    report = SanitizeReport(seed=0, runs=[
        ProbeResult(seed=0, digest="d", events_fired=1, final_time_ps=10,
                    messages_sent=2, messages_received=2),
    ])
    text = report.render()
    assert "seed=0" in text and "digest=d" in text
