"""FLOW1xx determinism-taint tests.

One positive fixture per source family (FLOW101–FLOW105) plus the
negatives that pin the analysis' precision: taints that never reach a
sink, ``sorted(...)``/``.sort()`` neutralisation of order taints,
branch joins, loop-carried taint, and dict iteration deliberately not
being a source.
"""

import textwrap
from pathlib import Path

from repro.analysis import default_engine
from repro.analysis.engine import parse_module
from repro.analysis.flow.taint import DeterminismTaintRule


def taint_findings(tmp_path: Path, source: str, name: str = "repro/mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    module = parse_module(path, tmp_path)
    return DeterminismTaintRule().check(module)


def rule_ids(findings):
    return sorted(f.rule_id for f in findings)


# ----------------------------------------------------------------------
# FLOW101 — wall clock into a sink
# ----------------------------------------------------------------------

def test_flow101_wall_clock_into_digest(tmp_path):
    findings = taint_findings(tmp_path, """\
        import time
        from hashlib import blake2b

        def fingerprint(events):
            stamp = time.time()
            digest = blake2b(digest_size=8)
            digest.update(str(stamp).encode())
            return digest.hexdigest()
        """)
    assert rule_ids(findings) == ["FLOW101"]
    assert "wall-clock read time.time()" in findings[0].message
    assert "digest" in findings[0].message


def test_flow101_log_only_wall_clock_is_not_flagged(tmp_path):
    # A wall-clock read that feeds only a print is noise, not a
    # determinism break: the boundary is the sink, not the source.
    findings = taint_findings(tmp_path, """\
        import time

        def log(message):
            print(time.time(), message)
        """)
    assert findings == []


def test_flow101_datetime_now_into_derive_seed(tmp_path):
    findings = taint_findings(tmp_path, """\
        from datetime import datetime

        def reseed(derive_seed):
            salt = datetime.now().isoformat()
            return derive_seed(salt)
        """)
    assert rule_ids(findings) == ["FLOW101"]
    assert "derive_seed" in findings[0].message


# ----------------------------------------------------------------------
# FLOW102 — unseeded randomness
# ----------------------------------------------------------------------

def test_flow102_random_into_journal(tmp_path):
    findings = taint_findings(tmp_path, """\
        import random

        class Recorder:
            def __init__(self):
                self._journal = Journal("campaign")

            def note(self):
                jitter = random.random()
                self._journal.record({"jitter": jitter})
        """)
    assert rule_ids(findings) == ["FLOW102"]
    assert "unseeded randomness random.random()" in findings[0].message


def test_flow102_urandom_into_capture_writer(tmp_path):
    findings = taint_findings(tmp_path, """\
        import os

        def emit(writer):
            token = os.urandom(8)
            writer.write_event({"token": token})
        """)
    assert rule_ids(findings) == ["FLOW102"]


# ----------------------------------------------------------------------
# FLOW103 — id()
# ----------------------------------------------------------------------

def test_flow103_id_into_stats_table(tmp_path):
    findings = taint_findings(tmp_path, """\
        def tabulate(rx):
            table = ResultTable("runs")
            table.add(id(rx))
        """)
    assert rule_ids(findings) == ["FLOW103"]


def test_flow103_id_as_dict_key_only_is_clean(tmp_path):
    # The PR-5 device code keys a local dict by id(); the id never
    # reaches an output boundary, so there is nothing to report.
    findings = taint_findings(tmp_path, """\
        def dedupe(items):
            seen = {}
            for item in items:
                seen[id(item)] = item
            return list(seen.values())
        """)
    assert findings == []


# ----------------------------------------------------------------------
# FLOW104 — unsorted listings, and their sorted() cure
# ----------------------------------------------------------------------

def test_flow104_listdir_into_digest(tmp_path):
    findings = taint_findings(tmp_path, """\
        import os
        from hashlib import blake2b

        def tree_digest(root):
            digest = blake2b(digest_size=16)
            for name in os.listdir(root):
                digest.update(name.encode())
            return digest.hexdigest()
        """)
    assert rule_ids(findings) == ["FLOW104"]
    assert "unsorted listing os.listdir()" in findings[0].message


def test_flow104_sorted_listing_is_clean(tmp_path):
    findings = taint_findings(tmp_path, """\
        import os
        from hashlib import blake2b

        def tree_digest(root):
            digest = blake2b(digest_size=16)
            for name in sorted(os.listdir(root)):
                digest.update(name.encode())
            return digest.hexdigest()
        """)
    assert findings == []


def test_flow104_inplace_sort_neutralises(tmp_path):
    findings = taint_findings(tmp_path, """\
        import glob

        def manifest(writer, pattern):
            names = glob.glob(pattern)
            names.sort()
            writer.write_experiment({"files": names})
        """)
    assert findings == []


def test_flow104_pathlib_iterdir(tmp_path):
    findings = taint_findings(tmp_path, """\
        def manifest(writer, root):
            entries = [p.name for p in root.iterdir()]
            writer.write_window({"entries": entries})
        """)
    assert rule_ids(findings) == ["FLOW104"]


# ----------------------------------------------------------------------
# FLOW105 — set iteration order (dict order deliberately exempt)
# ----------------------------------------------------------------------

def test_flow105_set_iteration_into_table(tmp_path):
    findings = taint_findings(tmp_path, """\
        def tally(symbols):
            table = ResultTable("symbols")
            uniq = set(symbols)
            for symbol in uniq:
                table.add(symbol)
        """)
    assert rule_ids(findings) == ["FLOW105"]


def test_flow105_sorted_set_iteration_is_clean(tmp_path):
    findings = taint_findings(tmp_path, """\
        def tally(symbols):
            table = ResultTable("symbols")
            for symbol in sorted(set(symbols)):
                table.add(symbol)
        """)
    assert findings == []


def test_dict_iteration_is_not_a_source(tmp_path):
    # CPython dicts are insertion-ordered and the codebase relies on
    # that; flagging dict iteration would drown the analysis in noise.
    findings = taint_findings(tmp_path, """\
        def tally(counts):
            table = ResultTable("counts")
            for key in counts:
                table.add(key)
            for key, value in counts.items():
                table.add((key, value))
        """)
    assert findings == []


def test_flow105_set_comprehension_iteration(tmp_path):
    findings = taint_findings(tmp_path, """\
        def tally(rows, writer):
            labels = [r for r in {row.label for row in rows}]
            writer.write_event({"labels": labels})
        """)
    assert rule_ids(findings) == ["FLOW105"]


# ----------------------------------------------------------------------
# Flow sensitivity: joins, loop-carried taint, reassignment kills
# ----------------------------------------------------------------------

def test_taint_survives_branch_join(tmp_path):
    findings = taint_findings(tmp_path, """\
        import time

        def stamp(flag, derive_seed):
            if flag:
                value = time.time()
            else:
                value = 0
            return derive_seed(value)
        """)
    assert rule_ids(findings) == ["FLOW101"]


def test_reassignment_on_every_path_kills_taint(tmp_path):
    findings = taint_findings(tmp_path, """\
        import time

        def stamp(derive_seed):
            value = time.time()
            value = 0
            return derive_seed(value)
        """)
    assert findings == []


def test_loop_carried_taint_reaches_sink_before_source_line(tmp_path):
    # The sink textually precedes the source; only the loop back-edge
    # carries the taint to it.  This is what the fixpoint pass is for.
    findings = taint_findings(tmp_path, """\
        import time

        def pump(derive_seed, rounds):
            value = 0
            for _ in range(rounds):
                derive_seed(value)
                value = time.time()
        """)
    assert rule_ids(findings) == ["FLOW101"]


def test_class_attr_kind_seeds_other_methods(tmp_path):
    # The digest is constructed in __init__; the sink method must still
    # know self._digest has kind digest.
    findings = taint_findings(tmp_path, """\
        import time
        from hashlib import blake2b

        class Golden:
            def __init__(self):
                self._digest = blake2b(digest_size=8)

            def absorb(self):
                self._digest.update(str(time.time()).encode())
        """)
    assert rule_ids(findings) == ["FLOW101"]


def test_unrelated_update_method_is_not_a_sink(tmp_path):
    # dict.update shares a name with digest.update; kind tracking keeps
    # the former from being a sink.
    findings = taint_findings(tmp_path, """\
        import time

        def merge(options):
            extra = {"stamp": time.time()}
            options.update(extra)
            return options
        """)
    assert findings == []


# ----------------------------------------------------------------------
# Engine integration: allowances and suppressions still apply
# ----------------------------------------------------------------------

def test_flow101_allowed_in_telemetry_package(tmp_path):
    (tmp_path / "repro" / "telemetry").mkdir(parents=True)
    (tmp_path / "repro" / "telemetry" / "probe.py").write_text(
        textwrap.dedent("""\
            import time

            def sample(derive_seed):
                return derive_seed(time.time())
            """),
        encoding="utf-8",
    )
    findings = default_engine(flow=True).run(tmp_path / "repro", tmp_path)
    assert [f for f in findings if f.rule_id == "FLOW101"] == []


def test_flow_findings_respect_line_suppressions(tmp_path):
    (tmp_path / "repro").mkdir(parents=True)
    (tmp_path / "repro" / "mod.py").write_text(
        textwrap.dedent("""\
            import time

            def stamp(derive_seed):
                return derive_seed(time.time())  # simlint: disable=FLOW101 -- test
            """),
        encoding="utf-8",
    )
    findings = default_engine(flow=True).run(tmp_path / "repro", tmp_path)
    assert [f for f in findings if f.rule_id == "FLOW101"] == []
