"""CLI surface tests for ``insight analyze|report|similar``.

Everything runs in-process through :func:`repro.cli.main` against a
real (small, flat-layout) campaign artifact directory, pinning exit
codes, the digest line the CI golden gate greps, and the similar-query
argument contract.
"""

import json
import re

import pytest

from repro.cli import main
from repro.insight import analyze_artifacts

_HEX_DIGEST = re.compile(r"^[0-9a-f]{32}$")


@pytest.fixture(scope="module")
def artifact_root(tmp_path_factory, run_flat_campaign):
    root = tmp_path_factory.mktemp("insight-cli") / "art"
    run_flat_campaign(root, experiments=2)
    return root


class TestAnalyze:
    def test_summary_output_and_digest_line(self, artifact_root, capsys):
        assert main([
            "insight", "analyze", "--input", str(artifact_root),
        ]) == 0
        out = capsys.readouterr().out
        assert "incident(s)" in out
        assert "[0] IDLE->GAP" in out
        match = re.search(r"report digest: ([0-9a-f]{32})", out)
        assert match
        assert match.group(1) == analyze_artifacts(artifact_root).digest()

    def test_digest_only_prints_bare_digest(self, artifact_root, capsys):
        assert main([
            "insight", "analyze", "--input", str(artifact_root),
            "--digest-only",
        ]) == 0
        out = capsys.readouterr().out.strip()
        assert _HEX_DIGEST.match(out)

    def test_json_out_writes_the_canonical_report(
        self, artifact_root, tmp_path, capsys
    ):
        target = tmp_path / "nested" / "report.json"
        assert main([
            "insight", "analyze", "--input", str(artifact_root),
            "--json", str(target),
        ]) == 0
        document = json.loads(target.read_text())
        assert document["format"] == "repro.insight-report"
        assert document["version"] == 1
        assert target.read_text().rstrip("\n") == (
            analyze_artifacts(artifact_root).canonical_json()
        )

    def test_label_override(self, artifact_root, capsys):
        assert main([
            "insight", "analyze", "--input", str(artifact_root),
            "--label", "renamed",
        ]) == 0
        assert "analyzed renamed:" in capsys.readouterr().out

    def test_missing_directory_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "insight", "analyze", "--input", str(tmp_path / "nope"),
        ]) == 2
        assert "no artifact directory" in capsys.readouterr().err


class TestReport:
    def test_renders_and_writes(self, artifact_root, tmp_path, capsys):
        target = tmp_path / "incident.txt"
        assert main([
            "insight", "report", "--input", str(artifact_root),
            "--out", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert "incident report:" in out
        assert "IDLE->GAP" in out
        assert target.read_text().startswith("incident report:")


class TestSimilar:
    def test_store_then_query_by_label(
        self, artifact_root, tmp_path, capsys
    ):
        store = str(tmp_path / "insight.sqlite")
        for label in ("campaign-a", "campaign-b"):
            assert main([
                "insight", "analyze", "--input", str(artifact_root),
                "--label", label, "--store", store,
            ]) == 0
        capsys.readouterr()
        assert main([
            "insight", "similar", "--store", store,
            "--label", "campaign-a",
        ]) == 0
        out = capsys.readouterr().out
        assert "#1 campaign-b" in out
        assert "distance=0.000000" in out

    def test_query_by_artifact_directory(
        self, artifact_root, tmp_path, capsys
    ):
        store = str(tmp_path / "insight.sqlite")
        assert main([
            "insight", "analyze", "--input", str(artifact_root),
            "--label", "stored", "--store", store,
        ]) == 0
        capsys.readouterr()
        assert main([
            "insight", "similar", "--store", store,
            "--input", str(artifact_root),
        ]) == 0
        assert "#1 stored" in capsys.readouterr().out

    def test_requires_exactly_one_query_source(self, tmp_path, capsys):
        store = str(tmp_path / "insight.sqlite")
        assert main(["insight", "similar", "--store", store]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main([
            "insight", "similar", "--store", store,
            "--label", "x", "--input", str(tmp_path),
        ]) == 2

    def test_unknown_label_fails_cleanly(self, tmp_path, capsys):
        store = str(tmp_path / "insight.sqlite")
        assert main([
            "insight", "similar", "--store", store, "--label", "ghost",
        ]) == 2
        assert "no campaign labelled" in capsys.readouterr().err

    def test_empty_store_reports_nothing_to_compare(
        self, artifact_root, tmp_path, capsys
    ):
        store = str(tmp_path / "empty.sqlite")
        assert main([
            "insight", "similar", "--store", store,
            "--input", str(artifact_root),
        ]) == 0
        assert "no stored campaigns" in capsys.readouterr().out
