"""Integration tests for the assembled device and the serial session."""

import pytest

from repro.core import FaultInjectorDevice, InjectorSession
from repro.core.faults import replace_bytes
from repro.core.monitor import MonitorConfig
from repro.core.session import SessionError, config_commands
from repro.errors import ConfigurationError
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.myrinet.network import build_paper_testbed
from repro.sim.timebase import MS, US


def make_testbed(sim, **device_kwargs):
    device = FaultInjectorDevice(sim, **device_kwargs)
    network = build_paper_testbed(sim, device=device)
    network.settle()
    return device, network


def deliver(sim, network, payload, src="pc", dst="sparc1"):
    received = []
    network.host(dst).interface.set_data_handler(
        lambda s, p: received.append(p)
    )
    network.host(src).interface.send_to(
        network.host(dst).interface.mac, payload
    )
    sim.run_for(2 * MS)
    return received


class TestDeviceDataPath:
    def test_transparent_passthrough(self, sim):
        device, network = make_testbed(sim)
        assert deliver(sim, network, b"hello") == [b"hello"]
        assert device.bursts_forwarded > 0

    def test_pipeline_latency_matches_paper_ballpark(self, sim):
        """Paper footnote 5: ~250 ns of pipeline at 12.5 ns characters."""
        device, _network = make_testbed(sim)
        latency = device.pipeline_latency_ps
        assert 200_000 <= latency <= 350_000  # 250ns pipeline + 2 PHYs

    def test_directions_independent(self, sim):
        """Paper §3.3: different and independent commands per direction."""
        device, network = make_testbed(sim)
        device.configure("R", replace_bytes(b"ping", b"PING",
                                            match_mode=MatchMode.ON,
                                            crc_fixup=True))
        device.configure("L", replace_bytes(b"pong", b"PONG",
                                            match_mode=MatchMode.ON,
                                            crc_fixup=True))
        assert deliver(sim, network, b"ping pong") == [b"PING pong"]
        assert deliver(sim, network, b"ping pong", src="sparc1",
                       dst="pc") == [b"ping PONG"]

    def test_corruption_without_fixup_dropped_at_crc(self, sim):
        device, network = make_testbed(sim)
        device.configure("R", replace_bytes(b"data", b"DATA",
                                            match_mode=MatchMode.ONCE))
        assert deliver(sim, network, b"some data here") == []
        assert network.host("sparc1").interface.crc_errors == 1

    def test_once_mode_second_packet_unscathed(self, sim):
        device, network = make_testbed(sim)
        device.configure("R", replace_bytes(b"aaa", b"bbb",
                                            match_mode=MatchMode.ONCE,
                                            crc_fixup=True))
        received = []
        sparc1 = network.host("sparc1").interface
        sparc1.set_data_handler(lambda s, p: received.append(p))
        pc = network.host("pc").interface
        pc.send_to(sparc1.mac, b"aaa first")
        pc.send_to(sparc1.mac, b"aaa second")
        sim.run_for(2 * MS)
        assert received == [b"bbb first", b"aaa second"]

    def test_statistics_gathering(self, sim):
        device, network = make_testbed(sim)
        deliver(sim, network, b"counted")
        stats = device.statistics("R").stats
        assert stats.frames >= 1
        pc = network.host("pc").interface
        sparc1 = network.host("sparc1").interface
        assert stats.pair_count(pc.mac, sparc1.mac) >= 1

    def test_monitor_captures_injection_environment(self, sim):
        device, network = make_testbed(
            sim, monitor_config=MonitorConfig(enabled=True, pre_symbols=8,
                                              post_symbols=8),
        )
        device.configure("R", replace_bytes(b"mark", b"MARK",
                                            match_mode=MatchMode.ONCE,
                                            crc_fixup=True))
        deliver(sim, network, b"....mark....")
        captures = device.monitor("R").captures()
        assert len(captures) == 1
        assert captures[0].event.lanes_rewritten >= 1

    def test_device_reset_clears_configuration(self, sim):
        device, network = make_testbed(sim)
        device.configure("R", replace_bytes(b"x", b"y",
                                            match_mode=MatchMode.ON))
        device.device_reset()
        assert not device.injector("R").armed
        assert deliver(sim, network, b"xxx") == [b"xxx"]

    def test_unknown_direction_rejected(self, sim):
        device = FaultInjectorDevice(sim)
        with pytest.raises(ConfigurationError):
            device.injector("Q")

    def test_attachment_guards(self, sim):
        device, _network = make_testbed(sim)
        from repro.myrinet.link import Link
        with pytest.raises(ConfigurationError):
            device.attach_left(Link(sim, "x"), "a")
        assert device.attached


class TestInjectorSession:
    def test_identify_roundtrip_over_serial(self, sim):
        device, _network = make_testbed(sim)
        session = InjectorSession(sim, device)
        responses = []
        session.identify(responses.append)
        sim.run_for(10 * MS)
        assert responses == ["OK DSN2002-FI 1.0"]
        assert session.idle

    def test_configure_uploads_full_register_file(self, sim):
        device, _network = make_testbed(sim)
        session = InjectorSession(sim, device)
        config = InjectorConfig(
            match_mode=MatchMode.ONCE,
            compare_data=0x1818, compare_mask=0xFFFF,
            corrupt_mode=CorruptMode.REPLACE,
            corrupt_data=0x1918, corrupt_mask=0xFFFF,
            crc_fixup=True,
        )
        done = []
        session.configure("R", config, done.append)
        sim.run_for(60 * MS)
        assert done and done[0].startswith("OK")
        assert session.errors_seen == 0
        applied = device.injector("R").config
        assert applied.compare_data == 0x1818
        assert applied.corrupt_data == 0x1918
        assert applied.match_mode is MatchMode.ONCE
        assert applied.crc_fixup

    def test_configuration_upload_takes_real_serial_time(self, sim):
        """12 commands with responses at 115200 baud: tens of ms."""
        device, _network = make_testbed(sim)
        session = InjectorSession(sim, device)
        done = []
        session.configure("R", InjectorConfig(), lambda line: done.append(sim.now))
        sim.run_for(100 * MS)
        assert done
        assert done[0] > 20 * MS

    def test_match_mode_is_set_last(self):
        commands = config_commands("R", InjectorConfig(
            match_mode=MatchMode.ON))
        assert commands[0] == "MM R OFF"
        assert commands[-1] == "MM R ON"

    def test_read_stats_parses_counters(self, sim):
        device, network = make_testbed(sim)
        session = InjectorSession(sim, device)
        deliver(sim, network, b"traffic")
        parsed = []
        session.read_stats("R", parsed.append)
        sim.run_for(10 * MS)
        assert parsed
        assert parsed[0]["sym"] >= 0
        assert "inj" in parsed[0]

    def test_error_responses_counted(self, sim):
        device, _network = make_testbed(sim)
        session = InjectorSession(sim, device)
        session.send("BOGUS COMMAND")
        sim.run_for(10 * MS)
        assert session.errors_seen == 1
        assert session.last_response().startswith("ER")

    def test_commands_serialized_one_in_flight(self, sim):
        device, _network = make_testbed(sim)
        session = InjectorSession(sim, device)
        order = []
        session.send("ID", lambda line: order.append("first"))
        session.send("ID", lambda line: order.append("second"))
        assert not session.idle
        sim.run_for(20 * MS)
        assert order == ["first", "second"]
        assert session.idle

    def test_multiline_command_rejected(self, sim):
        device, _network = make_testbed(sim)
        session = InjectorSession(sim, device)
        with pytest.raises(SessionError):
            session.send("ID\nRS")

    def test_inject_now_over_serial(self, sim):
        device, _network = make_testbed(sim)
        session = InjectorSession(sim, device)
        session.inject_now("L")
        sim.run_for(10 * MS)
        assert device.injector("L")._inject_now

    def test_arm_and_disarm(self, sim):
        device, _network = make_testbed(sim)
        session = InjectorSession(sim, device)
        session.arm("R", MatchMode.ON)
        sim.run_for(10 * MS)
        assert device.injector("R").config.match_mode is MatchMode.ON
        session.disarm("R")
        sim.run_for(10 * MS)
        assert device.injector("R").config.match_mode is MatchMode.OFF
