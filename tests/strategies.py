"""Seeded input generation and ddmin-style shrinking for property tests.

A deliberately small property-testing core (no third-party deps): a
*strategy* is a plain function ``rng -> value``; a *property* is a
function ``value -> None`` that raises ``AssertionError`` on violation.
:func:`run_property` drives N seeded rounds and, on the first failure,
greedily minimizes the counterexample with the caller's shrinker before
re-raising — so a failing run prints the *smallest* burst sequence that
still violates the invariant, not a 400-symbol soup.

Shrinking follows the classic delta-debugging shape: drop chunks of the
sequence (halves first, then smaller slices), then shorten individual
bursts, then simplify individual symbols toward ``data 0x00``.  Each
accepted shrink restarts the pass, so the result is 1-minimal with
respect to these operations.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Iterator, List, Sequence, TypeVar

from repro.core.faults import control_symbol_swap, replace_bytes
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.myrinet.symbols import (
    GAP,
    GO,
    IDLE,
    STOP,
    Symbol,
    control_symbol,
    data_symbol,
)

T = TypeVar("T")

Bursts = List[List[Symbol]]

_SPECIALS = (GAP, IDLE, STOP, GO)


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------


def gen_symbol(rng: random.Random) -> Symbol:
    """One symbol: mostly data, sometimes named or raw control."""
    roll = rng.random()
    if roll < 0.80:
        return data_symbol(rng.randrange(256))
    if roll < 0.95:
        return _SPECIALS[rng.randrange(4)]
    return control_symbol(rng.randrange(256))


def gen_burst(rng: random.Random, max_len: int = 200) -> List[Symbol]:
    """A burst biased toward both tiny and guard-margin-sized lengths."""
    if rng.random() < 0.2:
        length = rng.randint(1, 8)  # around the GUARD_MARGIN boundary
    else:
        length = rng.randint(1, max_len)
    return [gen_symbol(rng) for _ in range(length)]


def gen_bursts(rng: random.Random, max_bursts: int = 12) -> Bursts:
    """A burst *sequence* (state carries across bursts)."""
    return [gen_burst(rng) for _ in range(rng.randint(1, max_bursts))]


def gen_config(rng: random.Random) -> InjectorConfig:
    """A register file spanning armed/disarmed and every corrupt mode."""
    kind = rng.randrange(6)
    if kind == 0:
        return InjectorConfig()  # disarmed reset state
    if kind == 1:
        return replace_bytes(
            bytes([rng.randrange(256)]),
            bytes([rng.randrange(256)]),
            match_mode=MatchMode.ON if rng.random() < 0.5 else MatchMode.ONCE,
            crc_fixup=rng.random() < 0.5,
        )
    if kind == 2:
        match = bytes([rng.randrange(256), rng.randrange(256)])
        replacement = bytes([rng.randrange(256), rng.randrange(256)])
        return replace_bytes(match, replacement, match_mode=MatchMode.ON)
    if kind == 3:
        source = _SPECIALS[rng.randrange(4)]
        target = _SPECIALS[rng.randrange(4)]
        if target is source:
            target = _SPECIALS[(rng.randrange(4) + 1) % 4]
        return control_symbol_swap(source, target, MatchMode.ON)
    if kind == 4:
        # Sparse mask: under the scan threshold (prefilter declines).
        return InjectorConfig(
            match_mode=MatchMode.ON,
            compare_data=rng.randrange(256),
            compare_mask=0x0000_0007,
            corrupt_mode=CorruptMode.TOGGLE,
            corrupt_data=0,
            corrupt_mask=0x0000_00FF,
        )
    # Dense multi-lane pattern with toggles.
    return InjectorConfig(
        match_mode=MatchMode.ON if rng.random() < 0.5 else MatchMode.ONCE,
        compare_data=rng.getrandbits(32),
        compare_mask=0xFFFF_FFFF,
        corrupt_mode=CorruptMode.TOGGLE,
        corrupt_data=0,
        corrupt_mask=rng.getrandbits(32) or 1,
    )


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------


def _simpler_symbol(symbol: Symbol) -> Iterator[Symbol]:
    if symbol.is_data:
        if symbol.value:
            yield data_symbol(0)
    else:
        yield data_symbol(0)
        if symbol.value != IDLE.value:
            yield IDLE


def shrink_bursts(bursts: Bursts) -> Iterator[Bursts]:
    """Candidate simplifications of a burst sequence, largest cuts first."""
    n = len(bursts)
    # 1. Drop contiguous chunks: halves, quarters, ..., single bursts.
    size = n
    while size >= 1:
        for start in range(0, n, size):
            candidate = bursts[:start] + bursts[start + size:]
            if candidate:
                yield candidate
        if size == 1:
            break
        size //= 2
    # 2. Halve individual bursts (front and back halves).
    for index, burst in enumerate(bursts):
        if len(burst) > 1:
            half = len(burst) // 2
            for kept in (burst[:half], burst[half:]):
                yield bursts[:index] + [kept] + bursts[index + 1:]
    # 3. Drop single symbols from short bursts.
    for index, burst in enumerate(bursts):
        if 1 < len(burst) <= 16:
            for cut in range(len(burst)):
                kept = burst[:cut] + burst[cut + 1:]
                yield bursts[:index] + [kept] + bursts[index + 1:]
    # 4. Simplify individual symbols in short sequences.
    total = sum(len(b) for b in bursts)
    if total <= 32:
        for index, burst in enumerate(bursts):
            for position, symbol in enumerate(burst):
                for simpler in _simpler_symbol(symbol):
                    replaced = list(burst)
                    replaced[position] = simpler
                    yield bursts[:index] + [replaced] + bursts[index + 1:]


def minimize(
    value: T,
    fails: Callable[[T], bool],
    shrinker: Callable[[T], Iterable[T]],
    max_attempts: int = 400,
) -> T:
    """Greedy 1-minimal shrink: accept any candidate that still fails."""
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in shrinker(value):
            attempts += 1
            if attempts >= max_attempts:
                break
            if fails(candidate):
                value = candidate
                improved = True
                break  # restart the pass from the shrunk value
    return value


def describe_bursts(bursts: Bursts) -> str:
    """Compact, reproducible rendering of a burst sequence."""
    parts = []
    for burst in bursts:
        tokens = [
            f"D{s.value:02x}" if s.is_data else f"C{s.value:02x}"
            for s in burst
        ]
        parts.append("[" + " ".join(tokens) + "]")
    return " ".join(parts)


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------


def run_property(
    prop: Callable[[random.Random], None],
    *,
    rounds: int = 30,
    seed: int = 0,
    name: str = "",
) -> None:
    """Run ``prop`` over ``rounds`` seeded rounds; fail on first violation.

    ``prop`` receives a fresh ``random.Random`` per round and is expected
    to generate its own inputs from it (so the failure seed pins the
    exact inputs).  Shrinking happens inside the property via
    :func:`minimize` where the property opts in.
    """
    for round_index in range(rounds):
        rng = random.Random((seed << 16) ^ round_index)
        try:
            prop(rng)
        except AssertionError as exc:
            raise AssertionError(
                f"property {name or prop.__name__} failed on round "
                f"{round_index} (seed={seed}): {exc}"
            ) from exc
