"""End-to-end telemetry tests: instrumented campaign, CLI artifacts.

These run a real (tiny) fault-injection experiment with a live
:class:`~repro.telemetry.session.TelemetrySession` and check that the
instrumentation wired through the kernel, device, injector, and campaign
layers actually lands in the registry and span log — and that the CLI
``campaign``/``metrics`` commands produce and re-render the artifacts.
"""

import json

import pytest

from repro import cli
from repro.sim.timebase import MS
from repro.telemetry import (
    ARTIFACT_NAMES,
    MetricsRegistry,
    TelemetrySession,
    parse_spans_jsonl,
)
from repro.telemetry.state import STATE


@pytest.fixture(autouse=True)
def _clean_state():
    STATE.deactivate()
    yield
    STATE.deactivate()


def _run_small_experiment(session_kwargs=None):
    from repro.core.faults import control_symbol_swap
    from repro.hw.registers import MatchMode
    from repro.myrinet.symbols import GAP, IDLE
    from repro.nftape.experiment import Experiment, TestbedOptions
    from repro.nftape.plan import DutyCyclePlan

    # GAP->IDLE: inter-packet gaps are plentiful on the instrumented
    # link, so the matched trigger reliably fires within 1 ms.
    plan = DutyCyclePlan(
        "RL",
        control_symbol_swap(GAP, IDLE, MatchMode.ON),
        on_ps=1 * MS // 8,
        off_ps=1 * MS // 2,
        use_serial=False,
    )
    experiment = Experiment(
        "telemetry-it",
        duration_ps=1 * MS,
        plan=plan,
        testbed_options=TestbedOptions(seed=11),
        drain_ps=1 * MS,
    )
    session = TelemetrySession(**(session_kwargs or {}))
    with session:
        result = experiment.run()
    return session, result


class TestInstrumentedExperiment:
    @pytest.fixture(scope="class")
    def run(self):
        return _run_small_experiment()

    def test_kernel_counters_populate(self, run):
        session, _ = run
        assert session.registry.value("sim.events_fired") > 0
        assert session.registry.get("sim.run_events") is not None
        assert session.registry.value("sim.now_ps") > 0

    def test_device_burst_metrics_populate(self, run):
        session, _ = run
        registry = session.registry
        total_bursts = sum(
            registry.value("device.bursts", direction=d) for d in ("R", "L")
        )
        assert total_bursts > 0
        latency = registry.get("device.added_latency_ns")
        assert latency is not None and latency.count > 0
        # The device adds latency: nothing can transit in zero time.
        assert latency.mean > 0

    def test_injection_counters_populate(self, run):
        session, result = run
        assert result.injections > 0
        registry = session.registry
        matched = sum(
            m.value
            for m in registry
            if m.name == "injector.injections"
        )
        assert matched == result.injections

    def test_experiment_spans_nest(self, run):
        session, _ = run
        paths = {r.path for r in session.spans.records}
        assert "experiment" in paths
        assert "experiment/settle" in paths
        assert "experiment/workload" in paths
        assert "experiment/drain" in paths
        workload = session.spans.find("workload")[0]
        assert workload.sim_ps == 1 * MS
        assert workload.wall_ns > 0

    def test_workload_counters_match_result(self, run):
        session, result = run
        registry = session.registry
        assert registry.value("workload.messages_sent") == (
            result.messages_sent
        )
        assert registry.value("workload.messages_received") == (
            result.messages_received
        )

    def test_sampled_device_stats_bridge(self, run):
        session, _ = run
        registry = session.registry
        symbols = sum(
            m.value for m in registry if m.name == "stats.symbols"
        )
        assert symbols > 0
        high = [
            m for m in registry if m.name == "device.fifo.high_watermark"
        ]
        assert high and max(m.value for m in high) > 0


class TestArtifactWriting:
    def test_session_writes_all_artifacts(self, tmp_path):
        session, _ = _run_small_experiment({"out_dir": tmp_path})
        for name in ARTIFACT_NAMES:
            assert (tmp_path / name).exists(), name
        document = json.loads((tmp_path / "metrics.json").read_text())
        assert document["generated_by"] == "repro.telemetry"
        rebuilt = MetricsRegistry.from_dict(document["metrics"])
        assert rebuilt.value("sim.events_fired") == (
            session.registry.value("sim.events_fired")
        )
        spans = parse_spans_jsonl((tmp_path / "spans.jsonl").read_text())
        assert {r.name for r in spans} >= {"experiment", "workload"}
        trace = json.loads((tmp_path / "trace.json").read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])


class TestCliCampaign:
    def test_campaign_drops_artifacts_and_reports(self, tmp_path, capsys):
        exit_code = cli.main([
            "campaign", "--experiments", "1", "--duration-ms", "1",
            "--seed", "3", "--artifacts-dir", str(tmp_path), "--no-progress",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "artifacts merged" in out
        for name in ARTIFACT_NAMES:
            assert (tmp_path / "telemetry" / name).exists(), name

    def test_metrics_rerenders_prometheus(self, tmp_path, capsys):
        assert cli.main([
            "campaign", "--experiments", "1", "--duration-ms", "1",
            "--artifacts-dir", str(tmp_path), "--no-progress",
        ]) == 0
        capsys.readouterr()
        assert cli.main([
            "metrics", "--input", str(tmp_path / "telemetry" / "metrics.json"),
            "--format", "prom",
        ]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE repro_sim_events_fired_total counter" in prom
        assert "repro_campaign_shards_merged 1" in prom

    def test_metrics_json_round_trip(self, tmp_path, capsys):
        assert cli.main([
            "campaign", "--experiments", "1", "--duration-ms", "1",
            "--artifacts-dir", str(tmp_path), "--no-progress",
        ]) == 0
        capsys.readouterr()
        assert cli.main([
            "metrics", "--input", str(tmp_path / "telemetry" / "metrics.json"),
            "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["metrics"]["series"]

    def test_metrics_missing_input_fails_cleanly(self, tmp_path, capsys):
        assert cli.main([
            "metrics", "--input", str(tmp_path / "nope.json"),
        ]) == 2
        assert "no metrics artifact" in capsys.readouterr().err
