"""Library scenarios through the fabric: compile digests + identity.

The scenario path is the declarative front door (``scenario run``); the
fabric must be a pure executor swap behind it.  Two gates per library
scenario:

* its **compile digest** still matches the committed golden corpus
  (the fabric PR must not perturb compilation);
* its compiled campaign renders a **byte-identical table at 1, 2, and
  4 fabric workers** — compared against a serial run of the same spec.

The identity runs use a *shrunk* copy of each compiled spec (durations
capped at 0.25 ms simulated) so the whole matrix stays test-suite
fast; shrinking rewrites only ``duration_ps``/``drain_ps``, never the
plans, so every scenario's fault topology is exercised.  The unshrunk
digests are pinned by the golden gate above and the scenarios stay
fully runnable (``tests/test_scenario.py`` runs them unshrunk).
"""

import dataclasses
import pathlib

import pytest

from repro.cli import main
from repro.nftape.campaign import Campaign
from repro.runtime import FabricExecutor, SerialExecutor
from repro.scenario import compile_scenario, load_scenario
from repro.scenario.golden import check_scenario_corpus, compile_digest
from repro.scenario.library import list_scenarios
from repro.sim.timebase import MS

LIBRARY = list_scenarios()

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Identity-run cap on simulated time (see module docstring).
SHRINK_CAP_PS = MS // 4


def shrunk(name):
    """The compiled spec with durations capped for fast identity runs."""
    spec = compile_scenario(load_scenario(name))
    experiments = tuple(
        dataclasses.replace(
            experiment,
            duration_ps=min(experiment.duration_ps, SHRINK_CAP_PS),
            drain_ps=min(experiment.drain_ps, SHRINK_CAP_PS),
        )
        for experiment in spec.experiments
    )
    return dataclasses.replace(spec, experiments=experiments)


class TestGoldenCompileDigests:
    def test_the_library_is_exactly_six_scenarios(self):
        assert len(LIBRARY) == 6

    @pytest.mark.parametrize("name", LIBRARY)
    def test_compile_digest_matches_the_committed_corpus(self, name):
        expected = (GOLDEN_DIR / f"scenario_{name}.expected") \
            .read_text().strip()
        assert compile_digest(name) == expected

    def test_corpus_gate_is_green(self):
        ok, messages = check_scenario_corpus(GOLDEN_DIR)
        assert ok, "\n".join(messages)


class TestFabricWorkerCountIdentity:
    @pytest.mark.parametrize("name", LIBRARY)
    def test_table_is_byte_identical_at_1_2_and_4_workers(self, name):
        spec = shrunk(name)
        serial = Campaign.from_spec(spec).run(executor=SerialExecutor())
        for workers in (1, 2, 4):
            executor = FabricExecutor(workers=workers, poll_s=0.01)
            table = Campaign.from_spec(spec).run(executor=executor)
            assert table.render() == serial.render(), \
                f"{name} diverged at {workers} worker(s)"
            assert executor.reissues == {}


class TestScenarioRunFabricCli:
    def test_scenario_run_fabric_prints_the_fabric_summary(
            self, tmp_path, capsys):
        home = tmp_path / "run"
        assert main([
            "scenario", "run", "dual-injector",
            "--fabric", "2", "--artifacts-dir", str(home),
            "--no-progress",
        ]) == 0
        out = capsys.readouterr().out
        assert "on the fabric with 2 worker(s)" in out
        assert (home / "results.sqlite").is_file()

    def test_store_query_reads_the_scenario_run(self, tmp_path, capsys):
        home = tmp_path / "run"
        assert main([
            "scenario", "run", "dual-injector",
            "--fabric", "2", "--artifacts-dir", str(home),
            "--no-progress",
        ]) == 0
        capsys.readouterr()
        assert main(["store", "query",
                     "--artifacts-dir", str(home)]) == 0
        out = capsys.readouterr().out
        assert "2/2 done" in out
