"""Unit and property tests for the Myrinet CRC-8."""

from hypothesis import given
from hypothesis import strategies as st

from repro.myrinet.crc8 import crc8, crc8_update, verify


def test_empty_is_zero():
    assert crc8(b"") == 0


def test_known_vector():
    # CRC-8/ATM (poly 0x07, init 0, no reflection) of "123456789".
    assert crc8(b"123456789") == 0xF4


def test_single_byte():
    assert crc8(b"\x00") == 0
    assert crc8(b"\x01") == 0x07


def test_update_matches_bulk():
    data = b"myrinet packet body"
    crc = 0
    for byte in data:
        crc = crc8_update(crc, byte)
    assert crc == crc8(data)


@given(st.binary(min_size=0, max_size=200))
def test_residue_property(data):
    """Appending the CRC makes the CRC of the whole message zero."""
    full = data + bytes([crc8(data)])
    assert crc8(full) == 0
    assert verify(full)


@given(st.binary(min_size=1, max_size=64),
       st.integers(min_value=0, max_value=7),
       st.integers(min_value=0, max_value=63))
def test_detects_single_bit_errors(data, bit, index):
    """Any single-bit error is detected."""
    index %= len(data)
    corrupted = bytearray(data)
    corrupted[index] ^= 1 << bit
    full = data + bytes([crc8(data)])
    bad = bytes(corrupted) + bytes([crc8(data)])
    assert not verify(bad)


@given(st.binary(min_size=0, max_size=64), st.binary(min_size=0, max_size=64))
def test_linearity_over_xor(a, b):
    """CRC(A xor B) == CRC(A) xor CRC(B) for equal-length messages
    (the property the switch's incremental per-hop update relies on)."""
    size = min(len(a), len(b))
    a, b = a[:size], b[:size]
    xored = bytes(x ^ y for x, y in zip(a, b))
    assert crc8(xored) == crc8(a) ^ crc8(b)


@given(st.binary(min_size=1, max_size=64))
def test_leading_zeros_do_not_change_crc(data):
    """With init=0, leading zero bytes are transparent — the property
    that makes the stripped-route-byte contribution computable."""
    assert crc8(b"\x00" * 3 + data) == crc8(data)
