"""Fuzz-style robustness properties: garbage in, no crashes out.

A device inserted into a production network must survive arbitrary line
noise and hostile command streams.  These properties drive each receiver
with random input and assert it neither raises nor violates its basic
conservation invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.decoder import CommandDecoder
from repro.hw.injector import FifoInjector
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.myrinet.interface import HostInterface
from repro.myrinet.addresses import MacAddress, McpAddress
from repro.myrinet.link import Link
from repro.myrinet.switch import MyrinetSwitch
from repro.myrinet.symbols import Symbol, control_symbol, data_symbol
from repro.sim import Simulator

symbols_strategy = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=255)),
    max_size=300,
).map(lambda items: [
    data_symbol(v) if is_data else control_symbol(v) for is_data, v in items
])


class _NullTarget:
    def __init__(self):
        self.injectors = {"L": FifoInjector("L"), "R": FifoInjector("R")}

    def injector(self, direction):
        return self.injectors[direction]

    def device_reset(self):
        pass

    def monitor_summary(self, direction):
        return "cap=0 sdram=0 drop=0"


@settings(max_examples=60, deadline=None)
@given(data=st.binary(max_size=400))
def test_command_decoder_survives_arbitrary_bytes(data):
    responses = []
    decoder = CommandDecoder(_NullTarget(), responses.append)
    for byte in data:
        decoder.on_char(byte)
    decoder.on_char(ord("\n"))  # flush whatever line state remains
    for response in responses:
        assert response.startswith(("OK", "ER"))
    # The decoder still works after the noise.
    decoder.on_char(ord("I"))
    decoder.on_char(ord("D"))
    decoder.on_char(ord("\n"))
    assert responses[-1].startswith("OK DSN2002")


@settings(max_examples=40, deadline=None)
@given(stream=symbols_strategy)
def test_switch_survives_arbitrary_symbol_streams(stream):
    sim = Simulator()
    switch = MyrinetSwitch(sim, num_ports=4)

    class _Sink:
        def on_burst(self, burst, channel):
            pass

    for port in range(3):
        link = Link(sim, f"l{port}", char_period_ps=12_500, propagation_ps=0)
        link.attach_a(_Sink())
        switch.attach_link(port, link, "b", flow_transport="symbols")
    switch._ports[0].link.a_to_b.send(stream)
    sim.run()
    # Conservation of accounting: drops and forwards are non-negative and
    # every received data symbol is accounted for somewhere.
    stats = switch.stats
    assert stats["symbols_dropped"] >= 0
    assert stats["routing_errors"] >= 0


@settings(max_examples=40, deadline=None)
@given(stream=symbols_strategy)
def test_host_interface_survives_arbitrary_symbol_streams(stream):
    sim = Simulator()
    interface = HostInterface(sim, "fuzzed", MacAddress(1), McpAddress(1))
    link = Link(sim, "l", char_period_ps=12_500, propagation_ps=0)
    interface.attach_link(link, "b")

    class _Sink:
        def on_burst(self, burst, channel):
            pass

    link.attach_a(_Sink())
    link.a_to_b.send(stream)
    sim.run()
    stats = interface.stats
    assert stats["frames_received"] >= 0


@settings(max_examples=40, deadline=None)
@given(codes=st.lists(st.integers(min_value=0, max_value=1023),
                      max_size=300))
def test_fc_port_survives_arbitrary_code_groups(codes):
    from repro.fc import FcPort
    from repro.fc.node import connect_fc
    sim = Simulator()
    a = FcPort(sim, "a", 1)
    b = FcPort(sim, "b", 2)
    connect_fc(sim, a, b)
    frames = []
    b.on_frame(lambda f: frames.append(f))
    # Drive raw (possibly invalid) code groups straight at b.
    a._tx_channel.send(codes)
    sim.run()
    stats = b.stats
    assert stats["code_errors"] + stats["disparity_errors"] >= 0


@settings(max_examples=50, deadline=None)
@given(
    stream=symbols_strategy,
    config=st.builds(
        InjectorConfig,
        match_mode=st.sampled_from(list(MatchMode)),
        compare_data=st.integers(min_value=0, max_value=0xFFFFFFFF),
        compare_mask=st.integers(min_value=0, max_value=0xFFFFFFFF),
        compare_ctl=st.integers(min_value=0, max_value=0xF),
        compare_ctl_mask=st.integers(min_value=0, max_value=0xF),
        corrupt_mode=st.sampled_from(list(CorruptMode)),
        corrupt_data=st.integers(min_value=0, max_value=0xFFFFFFFF),
        corrupt_mask=st.integers(min_value=0, max_value=0xFFFFFFFF),
        corrupt_ctl=st.integers(min_value=0, max_value=0xF),
        corrupt_ctl_mask=st.integers(min_value=0, max_value=0xF),
    ),
)
def test_injector_preserves_symbol_count_under_any_config(stream, config):
    """Whatever the configuration, the injector is a 1:1 symbol pipe —
    it may rewrite symbols but never creates or destroys them."""
    injector = FifoInjector()
    injector.configure(config)
    out = injector.process_burst(stream)
    assert len(out) == len(stream)
