"""Tests for the power-on self-test and the switch's subtle internals
(waiter fairness, draining-claim release, backpressure counters)."""

from repro.hw.selftest import SelfTestReport, run_selftest
from repro.myrinet.crc8 import crc8
from repro.myrinet.link import Link
from repro.myrinet.packet import MyrinetPacket, PACKET_TYPE_DATA
from repro.myrinet.switch import MyrinetSwitch
from repro.myrinet.symbols import GAP, data_symbols

CHAR = 12_500


class TestSelfTest:
    def test_passes_on_healthy_hardware(self):
        report = run_selftest()
        assert report.passed
        assert set(report.results) == {"ram", "fifo", "cmp", "inj"}
        assert "ram=pass" in report.summary()

    def test_report_flags_failures(self):
        report = SelfTestReport()
        report.record("ram", True)
        report.record("fifo", False, "stuck-at bit")
        assert not report.passed
        assert "fifo=FAIL" in report.summary()
        assert any("stuck-at" in d for d in report.details)

    def test_empty_report_is_not_a_pass(self):
        assert not SelfTestReport().passed

    def test_pt_command_over_decoder(self):
        from repro.hw.decoder import CommandDecoder
        from repro.hw.injector import FifoInjector

        class _Target:
            def injector(self, direction):
                return FifoInjector(direction)

            def device_reset(self):
                pass

            def monitor_summary(self, direction):
                return ""

        responses = []
        decoder = CommandDecoder(_Target(), responses.append)
        for char in "PT\n":
            decoder.on_char(ord(char))
        assert responses[-1].startswith("OK ram=pass")


class _Endpoint:
    def __init__(self):
        self.frames = []
        self._current = []
        self.tx = None

    def on_burst(self, burst, channel):
        for symbol in burst:
            if symbol.is_data:
                self._current.append(symbol.value)
            elif symbol == GAP and self._current:
                self.frames.append(bytes(self._current))
                self._current = []

    def send_packet(self, packet, with_gap=True):
        burst = data_symbols(packet.to_bytes())
        if with_gap:
            burst.append(GAP)
        self.tx.send(burst)


def build_switch(sim, ports=4, **kwargs):
    switch = MyrinetSwitch(sim, num_ports=8, **kwargs)
    endpoints = []
    for port in range(ports):
        endpoint = _Endpoint()
        link = Link(sim, f"l{port}", char_period_ps=CHAR, propagation_ps=0)
        endpoint.tx = link.attach_a(endpoint)
        switch.attach_link(port, link, "b", flow_transport="symbols")
        endpoints.append(endpoint)
    return switch, endpoints


class TestSwitchInternals:
    def test_waiters_are_served_in_fifo_order(self, sim):
        """Three inputs racing for one output: grant order follows
        arrival order (head-of-line fairness)."""
        switch, eps = build_switch(sim)
        # A long packet from input 0 claims output 3; while it drains,
        # two more inputs queue up in arrival order.  (Chunk transport
        # delivers a burst at its end of serialization, so competitors
        # are sent only after the holder has fully arrived.)
        eps[0].send_packet(MyrinetPacket.for_route(
            [3], PACKET_TYPE_DATA, b"\x00" * 400))
        sim.run_until(sim.now + 450 * CHAR)   # holder delivered, draining
        eps[1].send_packet(MyrinetPacket.for_route(
            [3], PACKET_TYPE_DATA, b"from-one"))
        sim.run_until(sim.now + 20 * CHAR)
        eps[2].send_packet(MyrinetPacket.for_route(
            [3], PACKET_TYPE_DATA, b"from-two"))
        sim.run()
        payloads = [MyrinetPacket.from_bytes(f).payload
                    for f in eps[3].frames]
        assert payloads[0] == b"\x00" * 400
        assert payloads[1] == b"from-one"
        assert payloads[2] == b"from-two"

    def test_claim_released_only_after_drain(self, sim):
        """The wormhole invariant: the next frame for an output never
        interleaves with the previous frame's still-draining tail."""
        switch, eps = build_switch(sim)
        # Stay inside the slack bounds: the raw test endpoints ignore
        # STOP symbols, so a compliant-load level is used.
        for index in range(4):
            eps[0].send_packet(MyrinetPacket.for_route(
                [1], PACKET_TYPE_DATA, bytes([index]) * 200))
            eps[2].send_packet(MyrinetPacket.for_route(
                [1], PACKET_TYPE_DATA, bytes([0x80 + index]) * 200))
        sim.run()
        frames = eps[1].frames
        assert len(frames) == 8
        for frame in frames:
            assert crc8(frame) == 0
            payload = MyrinetPacket.from_bytes(frame).payload
            assert len(set(payload)) == 1  # never interleaved

    def test_drop_counters_attribute_causes(self, sim):
        switch, eps = build_switch(sim)
        # A headless frame (no GAP) followed by silence: long timeout on
        # a scaled-down switch would tear it down; with the default the
        # symbols just sit in the claim.  Use a bad route to exercise
        # the discard counter instead.
        eps[0].send_packet(MyrinetPacket.for_route(
            [7], PACKET_TYPE_DATA, b"doomed"))
        sim.run()
        stats = switch.port_stats(0)
        assert stats["routing_errors"] == 1
        assert stats["discard_drops"] > 0
        assert stats["outbox_drops"] == 0
        assert stats["waitbuf_drops"] == 0

    def test_idle_gaps_between_packets_are_free(self, sim):
        switch, eps = build_switch(sim)
        eps[0].tx.send([GAP, GAP, GAP])
        eps[0].send_packet(MyrinetPacket.for_route(
            [1], PACKET_TYPE_DATA, b"after idle gaps"))
        sim.run()
        assert len(eps[1].frames) == 1
        assert switch.stats["symbols_dropped"] == 0
