"""CLI wiring for the lint and sanitize subcommands."""

import re
import textwrap

from repro.cli import main


def test_cli_lint_clean_tree_exits_zero(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr()
    assert out.out.strip() == ""  # no findings on stdout
    assert "0 findings" in out.err


def test_cli_lint_lists_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SIM001", "SIM002", "SIM003", "SIM004",
                    "FSM001", "REG001", "ERR001"):
        assert rule_id in out


def test_cli_lint_exits_nonzero_with_parseable_lines(tmp_path, capsys):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(textwrap.dedent("""\
        import time

        def stamp():
            return time.time()
        """), encoding="utf-8")
    assert main(["lint", str(tmp_path / "repro")]) == 1
    out = capsys.readouterr()
    lines = out.out.strip().splitlines()
    assert len(lines) == 1
    # file:line:col RULE message — single-line, CI-annotation friendly.
    assert re.match(r"^\S+\.py:\d+:\d+ [A-Z]+\d{3} .+$", lines[0])
    assert "SIM001" in lines[0]
    assert "1 finding" in out.err


def test_cli_sanitize_passes_on_deterministic_campaign(capsys):
    assert main(["sanitize", "--duration-ms", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "digest=" in out
