"""Tests for FC class 3 sequences and their behaviour under injection."""

import pytest

from repro.core import FaultInjectorDevice
from repro.core.faults import replace_bytes
from repro.errors import ConfigurationError
from repro.fc import FcInjectorTap, FcPort
from repro.fc.node import connect_fc
from repro.fc.sequence import (
    DEFAULT_FRAME_PAYLOAD,
    SequenceReassembler,
    SequenceSender,
)
from repro.hw.registers import MatchMode
from repro.sim.timebase import MS


def build(sim, tap=None, frame_payload=64, timeout_ps=5 * MS):
    a = FcPort(sim, "a", 0x010101, bb_credit=8)
    b = FcPort(sim, "b", 0x020202, bb_credit=8)
    connect_fc(sim, a, b, tap=tap)
    sender = SequenceSender(a, s_id=0x010101, frame_payload=frame_payload)
    received = []
    reassembler = SequenceReassembler(
        sim, b, lambda s_id, payload: received.append((s_id, payload)),
        timeout_ps=timeout_ps,
    )
    return sender, reassembler, received


def test_single_frame_sequence(sim):
    sender, reassembler, received = build(sim)
    sender.send(0x020202, b"short")
    sim.run_for(2 * MS)
    assert received == [(0x010101, b"short")]
    assert sender.frames_sent == 1
    assert reassembler.sequences_completed == 1


def test_multi_frame_sequence_reassembles(sim):
    sender, reassembler, received = build(sim, frame_payload=64)
    payload = bytes(range(256)) * 2  # 512 bytes -> 8 frames
    sender.send(0x020202, payload)
    sim.run_for(5 * MS)
    assert received == [(0x010101, payload)]
    assert sender.frames_sent == 8


def test_interleaved_sequences(sim):
    """Two sequences in flight reassemble independently by OX_ID."""
    sender, reassembler, received = build(sim, frame_payload=32)
    first = b"A" * 100
    second = b"B" * 100
    sender.send(0x020202, first)
    sender.send(0x020202, second)
    sim.run_for(5 * MS)
    payloads = sorted(p for _s, p in received)
    assert payloads == [first, second]


def test_empty_payload_sequence(sim):
    sender, _reassembler, received = build(sim)
    sender.send(0x020202, b"")
    sim.run_for(2 * MS)
    assert received == [(0x010101, b"")]


def test_corrupted_middle_frame_kills_whole_sequence(sim):
    """Class 3 has no recovery: one injector hit on a middle frame and
    the entire multi-frame payload is lost (then aged out)."""
    device = FaultInjectorDevice(sim, medium="fibre-channel")
    tap = FcInjectorTap(sim, device)
    sender, reassembler, received = build(sim, tap=tap, frame_payload=64,
                                          timeout_ps=3 * MS)
    # Corrupt a pattern that only occurs in the third frame's payload.
    device.configure("R", replace_bytes(b"MARK", b"XXXX",
                                        match_mode=MatchMode.ONCE))
    payload = b"a" * 128 + b"MARK" + b"b" * 124 + b"c" * 64
    sender.send(0x020202, payload)
    sim.run_for(1 * MS)
    assert received == []                      # incomplete, waiting
    assert reassembler.open_sequences == 1
    sim.run_for(10 * MS)                       # reaper ages it out
    assert reassembler.sequences_timed_out == 1
    assert reassembler.open_sequences == 0
    assert received == []


def test_corruption_with_fixup_delivers_corrupted_sequence(sim):
    device = FaultInjectorDevice(sim, medium="fibre-channel")
    tap = FcInjectorTap(sim, device)
    sender, _reassembler, received = build(sim, tap=tap, frame_payload=64)
    device.configure("R", replace_bytes(b"MARK", b"XXXX",
                                        match_mode=MatchMode.ONCE,
                                        crc_fixup=True))
    payload = b"a" * 60 + b"MARK" + b"b" * 64
    sender.send(0x020202, payload)
    sim.run_for(5 * MS)
    assert len(received) == 1
    assert received[0][1] == payload.replace(b"MARK", b"XXXX")


def test_frame_payload_validation(sim):
    port = FcPort(sim, "p", 1)
    with pytest.raises(ConfigurationError):
        SequenceSender(port, s_id=1, frame_payload=0)


def test_sender_counters_and_ox_rollover(sim):
    sender, _reassembler, received = build(sim, frame_payload=1000)
    ox_ids = {sender.send(0x020202, b"x") for _index in range(5)}
    sim.run_for(3 * MS)
    assert len(ox_ids) == 5
    assert sender.sequences_sent == 5
    assert len(received) == 5
